//! Landmark planning (paper future-work W1): how the number and placement
//! of landmarks change discovery quality — a compact interactive version of
//! the `landmark_policies` experiment.
//!
//! Run with: `cargo run --example landmark_planning -- [--peers N] [--seed S]`

use nearpeer::core::landmarks::place_landmarks;
use nearpeer::core::landmarks::PlacementPolicy;
use nearpeer::core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::{bfs_distances, RouteOracle};
use nearpeer::topology::generators::{mapper, MapperConfig};
use std::collections::HashMap;

fn main() {
    let mut peers = 150usize;
    let mut seed = 42u64;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--peers" => peers = iter.next().and_then(|v| v.parse().ok()).unwrap_or(150),
            "--seed" => seed = iter.next().and_then(|v| v.parse().ok()).unwrap_or(42),
            other => {
                eprintln!("unknown flag {other} (usage: --peers N --seed S)");
                std::process::exit(2);
            }
        }
    }

    let topo = mapper(&MapperConfig::with_access(250, peers * 2), seed).expect("valid");
    let oracle = RouteOracle::new(&topo);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let access = topo.access_routers();
    let k = 5usize;

    println!(
        "map: {} routers / {} links; {} peers; k = {k}\n",
        topo.n_routers(),
        topo.n_links(),
        peers
    );
    println!(
        "{:<16} {:>10} {:>14} {:>14}",
        "placement", "landmarks", "D/Dclosest", "mean probes"
    );

    for policy in PlacementPolicy::all() {
        for n_landmarks in [2usize, 4, 8] {
            let landmarks = place_landmarks(&topo, n_landmarks, policy, seed);
            let mut server = ManagementServer::bootstrap(
                &topo,
                landmarks.clone(),
                ServerConfig {
                    neighbor_count: k,
                    ..ServerConfig::default()
                },
            );
            let mut attach: HashMap<PeerId, _> = HashMap::new();
            let mut probe_total = 0u64;
            for i in 0..peers {
                let router = access[(i * 7) % access.len()];
                let lm = landmarks
                    .iter()
                    .filter_map(|&lm| oracle.rtt_us(router, lm).map(|rtt| (rtt, lm)))
                    .min()
                    .map(|(_, lm)| lm)
                    .expect("connected");
                let trace = tracer
                    .trace(router, lm, seed ^ i as u64)
                    .expect("connected");
                probe_total += trace.probes_sent as u64;
                let path = PeerPath::new(trace.router_path()).expect("clean");
                server.register(PeerId(i as u64), path).expect("fresh");
                attach.insert(PeerId(i as u64), router);
            }

            // Quality: D / Dclosest summed over all peers.
            let mut sum_d = 0u64;
            let mut sum_best = 0u64;
            for i in 0..peers {
                let peer = PeerId(i as u64);
                let dist = bfs_distances(&topo, attach[&peer]);
                let neigh = server.neighbors_of(peer, k).expect("registered");
                sum_d += neigh
                    .iter()
                    .map(|n| dist[attach[&n.peer].index()] as u64)
                    .sum::<u64>();
                let mut all: Vec<u64> = attach
                    .iter()
                    .filter(|&(&p, _)| p != peer)
                    .map(|(_, &r)| dist[r.index()] as u64)
                    .collect();
                all.sort_unstable();
                sum_best += all.iter().take(k).sum::<u64>();
            }
            println!(
                "{:<16} {:>10} {:>14.3} {:>14.1}",
                policy.name(),
                n_landmarks,
                sum_d as f64 / sum_best.max(1) as f64,
                probe_total as f64 / peers as f64
            );
        }
    }
    println!(
        "\nLower D/Dclosest is better; the paper's choice (degree-medium) should \
         compete with betweenness placement at a fraction of its cost."
    );
}
