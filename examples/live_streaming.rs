//! Live streaming with proximity neighbors — the paper's motivating
//! application, with smoltcp-style fault-injection knobs.
//!
//! Builds a swarm on a synthetic Internet, wires a mesh overlay from the
//! management server's neighbor lists, streams chunks through the
//! discrete-event simulator and prints per-peer setup delays.
//!
//! Run with:
//! `cargo run --example live_streaming -- [--drop-chance PCT] [--jitter-ms MS] [--peers N]`

use nearpeer::core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer::core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer::overlay::{OverlayMsg, SourceActor, StreamPeer, StreamStats};
use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::RouteOracle;
use nearpeer::sim::links::{Faulty, TopologyLinks};
use nearpeer::sim::{NodeId, SimTime, Simulator};
use nearpeer::topology::generators::{mapper, MapperConfig};
use std::cell::RefCell;
use std::rc::Rc;

struct Args {
    drop_chance: f64,
    jitter_us: u64,
    peers: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        drop_chance: 0.0,
        jitter_us: 0,
        peers: 30,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut next = |what: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value ({what})");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--drop-chance" => {
                args.drop_chance = next("percent").parse::<f64>().unwrap_or(0.0) / 100.0
            }
            "--jitter-ms" => args.jitter_us = next("ms").parse::<u64>().unwrap_or(0) * 1_000,
            "--peers" => args.peers = next("count").parse().unwrap_or(30),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: --drop-chance PCT --jitter-ms MS --peers N");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    const CHUNK_INTERVAL_US: u64 = 20_000; // 50 chunks/s
    const CHUNKS: u64 = 100;
    const K: usize = 4;

    // Substrate + discovery.
    let topo = mapper(&MapperConfig::with_access(150, args.peers * 2), 7).expect("valid");
    let landmarks = place_landmarks(&topo, 3, PlacementPolicy::DegreeMedium, 7);
    let oracle = RouteOracle::new(&topo);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let mut server = ManagementServer::bootstrap(
        &topo,
        landmarks.clone(),
        ServerConfig {
            neighbor_count: K,
            ..ServerConfig::default()
        },
    );
    let access = topo.access_routers();
    let mut attach = Vec::new();
    for i in 0..args.peers {
        let router = access[(i * 13) % access.len()];
        let lm = landmarks
            .iter()
            .filter_map(|&lm| oracle.rtt_us(router, lm).map(|rtt| (rtt, lm)))
            .min()
            .map(|(_, lm)| lm)
            .expect("connected");
        let trace = tracer.trace(router, lm, i as u64).expect("connected");
        let path = PeerPath::new(trace.router_path()).expect("clean");
        server.register(PeerId(i as u64), path).expect("fresh id");
        attach.push(router);
    }

    // Mesh from the server's proximity answers (symmetrised) + a random
    // long link per peer for connectivity.
    let mut mesh: Vec<Vec<usize>> = vec![Vec::new(); args.peers];
    for i in 0..args.peers {
        for n in server
            .neighbors_of(PeerId(i as u64), K)
            .expect("registered")
        {
            let j = n.peer.0 as usize;
            if !mesh[i].contains(&j) {
                mesh[i].push(j);
            }
            if !mesh[j].contains(&i) {
                mesh[j].push(i);
            }
        }
        let j = (i * 17 + 5) % args.peers;
        if j != i && !mesh[i].contains(&j) {
            mesh[i].push(j);
            mesh[j].push(i);
        }
    }

    // Streaming session over topology latencies with fault injection.
    let mut links = TopologyLinks::new(&topo);
    links.attach(NodeId(0), landmarks[0]); // the source sits at a landmark
    for (i, &router) in attach.iter().enumerate() {
        links.attach(NodeId(i as u32 + 1), router);
    }
    let faulty = Faulty::new(links, args.drop_chance, args.jitter_us);
    let mut sim: Simulator<OverlayMsg, _> = Simulator::new(faulty, 7);

    let feed: Vec<NodeId> = (1..=K.min(args.peers)).map(|i| NodeId(i as u32)).collect();
    sim.add_actor(Box::new(SourceActor::new(feed, CHUNK_INTERVAL_US, CHUNKS)));
    let mut handles: Vec<Rc<RefCell<StreamStats>>> = Vec::new();
    for list in mesh.iter() {
        let stats = Rc::new(RefCell::new(StreamStats::default()));
        let mut neighbors: Vec<NodeId> = list.iter().map(|&j| NodeId(j as u32 + 1)).collect();
        if handles.len() < K {
            neighbors.push(NodeId(0));
        }
        sim.add_actor(Box::new(StreamPeer::new(
            neighbors,
            64,
            CHUNK_INTERVAL_US,
            3,
            CHUNKS,
            stats.clone(),
        )));
        handles.push(stats);
    }

    sim.run_until(SimTime(CHUNKS * CHUNK_INTERVAL_US * 4));

    println!(
        "streamed {CHUNKS} chunks to {} peers (drop {:.0}%, jitter {} ms)",
        args.peers,
        args.drop_chance * 100.0,
        args.jitter_us / 1_000
    );
    println!("sim: {:?}\n", sim.stats());
    let mut started = 0;
    let mut delay_sum = 0.0;
    let mut continuity_sum = 0.0;
    for (i, h) in handles.iter().enumerate() {
        let s = h.borrow();
        match s.setup_delay_us() {
            Some(d) => {
                started += 1;
                delay_sum += d as f64 / 1000.0;
                continuity_sum += s.continuity();
                if i < 5 {
                    println!(
                        "peer{i}: setup {:.1} ms, {} chunks, continuity {:.2}",
                        d as f64 / 1000.0,
                        s.chunks_received,
                        s.continuity()
                    );
                }
            }
            None => println!("peer{i}: never started playback"),
        }
    }
    if started > 0 {
        println!(
            "\n{}/{} peers playing; mean setup delay {:.1} ms, mean continuity {:.2}",
            started,
            args.peers,
            delay_sum / started as f64,
            continuity_sum / started as f64
        );
    }
}
