//! Churn and mobility (paper future-work W3): faulty peers leave stale
//! records behind; handover re-registration restores locality after a move.
//!
//! Run with: `cargo run --example churn_and_handover`

use nearpeer::core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer::core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::{hop_distance, RouteOracle};
use nearpeer::topology::generators::{mapper, MapperConfig};
use nearpeer::workloads::{ArrivalProcess, ChurnConfig, ChurnEventKind, ChurnTrace};
use std::collections::{HashMap, HashSet};

fn main() {
    let seed = 11u64;
    let topo = mapper(&MapperConfig::with_access(150, 400), seed).expect("valid");
    let landmarks = place_landmarks(&topo, 3, PlacementPolicy::DegreeMedium, seed);
    let oracle = RouteOracle::new(&topo);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let access = topo.access_routers();

    let trace_path = |attach, salt: u64| -> PeerPath {
        let lm = landmarks
            .iter()
            .filter_map(|&lm| oracle.rtt_us(attach, lm).map(|rtt| (rtt, lm)))
            .min()
            .map(|(_, lm)| lm)
            .expect("connected");
        let t = tracer.trace(attach, lm, salt).expect("connected");
        PeerPath::new(t.router_path()).expect("clean")
    };

    // --- Part 1: churn with silent failures. ---
    println!("=== churn: graceful leaves vs silent failures ===");
    let churn = ChurnTrace::generate(
        &ChurnConfig {
            peers: 150,
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 20.0 },
            mean_lifetime_secs: Some(15.0),
            failure_fraction: 0.5,
        },
        seed,
    );
    let mut server = ManagementServer::bootstrap(&topo, landmarks.clone(), ServerConfig::default());
    let mut dead: HashSet<PeerId> = HashSet::new();
    let mut stale_answers = 0usize;
    let mut joins_with_neighbors = 0usize;
    for ev in &churn.events {
        let peer = PeerId(ev.peer as u64);
        match ev.kind {
            ChurnEventKind::Join => {
                let attach = access[(ev.peer * 11) % access.len()];
                let out = server
                    .register(peer, trace_path(attach, ev.peer as u64))
                    .expect("unique id per trace");
                if !out.neighbors.is_empty() {
                    joins_with_neighbors += 1;
                    if out.neighbors.iter().any(|n| dead.contains(&n.peer)) {
                        stale_answers += 1;
                    }
                }
            }
            ChurnEventKind::Leave => {
                let _ = server.deregister(peer);
            }
            ChurnEventKind::Fail => {
                dead.insert(peer); // the server never hears about this
            }
        }
    }
    println!(
        "{} join answers; {} contained at least one silently-dead neighbor \
         ({:.0}%)",
        joins_with_neighbors,
        stale_answers,
        stale_answers as f64 / joins_with_neighbors.max(1) as f64 * 100.0
    );
    println!(
        "peak population {}; server still holds {} records (stale entries from \
         {} failures)\n",
        churn.peak_population(),
        server.peer_count(),
        dead.len()
    );

    // --- Part 2: mobility handover. ---
    println!("=== mobility: handover restores locality ===");
    let mut server = ManagementServer::bootstrap(&topo, landmarks.clone(), ServerConfig::default());
    let mut attach: HashMap<PeerId, _> = HashMap::new();
    for i in 0..100u64 {
        let router = access[(i as usize * 3) % access.len()];
        server
            .register(PeerId(i), trace_path(router, i))
            .expect("fresh");
        attach.insert(PeerId(i), router);
    }
    // Peer 0 moves across the network.
    let mover = PeerId(0);
    let new_home = access[access.len() - 1];
    let old_neighbors = server.neighbors_of(mover, 5).expect("registered");
    let old_cost: u32 = old_neighbors
        .iter()
        .map(|n| hop_distance(&topo, new_home, attach[&n.peer]).unwrap())
        .sum();
    let out = server
        .handover(mover, trace_path(new_home, 999))
        .expect("registered");
    attach.insert(mover, new_home);
    let new_cost: u32 = out
        .neighbors
        .iter()
        .map(|n| hop_distance(&topo, new_home, attach[&n.peer]).unwrap())
        .sum();
    println!("peer0 moved to router {new_home}");
    println!("old neighbor set, seen from the new location: {old_cost} total hops");
    println!("fresh neighbor set after handover:            {new_cost} total hops");
    println!("server stats: {:?}", server.stats());
}
