//! Quickstart: the two-round discovery protocol on a synthetic Internet.
//!
//! Builds a nem-like router map, places landmarks, joins a handful of
//! peers through traceroute + management server, and shows that the
//! inferred neighbors really are the nearby ones.
//!
//! Run with: `cargo run --example quickstart`

use nearpeer::core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer::core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::{hop_distance, RouteOracle};
use nearpeer::topology::generators::{mapper, MapperConfig};

fn main() {
    // 1. A router-level Internet: heavy-tailed core + degree-1 access
    //    routers (where peers live).
    let topo = mapper(&MapperConfig::with_access(150, 200), 2007).expect("valid config");
    println!(
        "topology: {} routers, {} links, {} access routers",
        topo.n_routers(),
        topo.n_links(),
        topo.access_routers().len()
    );

    // 2. A few landmarks at medium-degree routers + the management server.
    let landmarks = place_landmarks(&topo, 3, PlacementPolicy::DegreeMedium, 2007);
    println!("landmarks at routers: {landmarks:?}");
    let mut server = ManagementServer::bootstrap(&topo, landmarks.clone(), ServerConfig::default());

    // 3. Twenty peers join: each traceroutes to its closest landmark and
    //    registers the discovered path.
    let oracle = RouteOracle::new(&topo);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let access = topo.access_routers();
    let mut attachments = Vec::new();
    for i in 0..20u64 {
        let attach = access[(i as usize * 7) % access.len()];
        let closest = landmarks
            .iter()
            .filter_map(|&lm| oracle.rtt_us(attach, lm).map(|rtt| (rtt, lm)))
            .min()
            .map(|(_, lm)| lm)
            .expect("connected map");
        let trace = tracer.trace(attach, closest, i).expect("connected map");
        let path = PeerPath::new(trace.router_path()).expect("clean trace");
        let outcome = server.register(PeerId(i), path).expect("fresh id");
        if i >= 17 {
            println!(
                "\npeer{i} joined via {} probes ({:.1} ms of probing):",
                trace.probes_sent,
                trace.elapsed_us as f64 / 1000.0
            );
            for n in &outcome.neighbors {
                let d_true = hop_distance(&topo, attach, attachments[n.peer.0 as usize]).unwrap();
                println!(
                    "  neighbor {}: inferred dtree = {} hops, true distance = {d_true} hops",
                    n.peer, n.dtree
                );
            }
        }
        attachments.push(attach);
    }

    println!(
        "\nserver state: {} peers registered, stats: {:?}",
        server.peer_count(),
        server.stats()
    );
}
