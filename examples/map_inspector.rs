//! Map inspector: generate (or load) a router-level topology, print the
//! structural statistics the paper's argument rests on, and export it.
//!
//! Run with:
//! `cargo run --example map_inspector -- [--family mapper|ba|glp|waxman|transit-stub]
//!  [--size N] [--seed S] [--load FILE.json] [--export-dot FILE.dot] [--export-json FILE.json]`

use nearpeer::topology::analysis::{
    betweenness_centrality_sampled, double_sweep_diameter_lower_bound,
    global_clustering_coefficient, is_connected, k_core_members, max_core_number, DegreeStats,
};
use nearpeer::topology::generators::{
    BaConfig, GlpConfig, MapperConfig, TopologySpec, TransitStubConfig, WaxmanConfig,
};
use nearpeer::topology::{io, RouterId, Topology};

struct Args {
    family: String,
    size: usize,
    seed: u64,
    load: Option<String>,
    export_dot: Option<String>,
    export_json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        family: "mapper".into(),
        size: 1_000,
        seed: 42,
        load: None,
        export_dot: None,
        export_json: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut next = |what: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value ({what})");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--family" => args.family = next("family"),
            "--size" => args.size = next("router count").parse().unwrap_or(1_000),
            "--seed" => args.seed = next("seed").parse().unwrap_or(42),
            "--load" => args.load = Some(next("path")),
            "--export-dot" => args.export_dot = Some(next("path")),
            "--export-json" => args.export_json = Some(next("path")),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn build(args: &Args) -> Topology {
    if let Some(path) = &args.load {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        return io::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        });
    }
    let n = args.size;
    let spec = match args.family.as_str() {
        "mapper" => TopologySpec::Mapper(MapperConfig::with_access(n / 3, n / 2)),
        "ba" => TopologySpec::Ba(BaConfig { n, m: 2 }),
        "glp" => TopologySpec::Glp(GlpConfig::default_with_n(n)),
        "waxman" => TopologySpec::Waxman(WaxmanConfig {
            n,
            alpha: 0.1,
            beta: 0.15,
        }),
        "transit-stub" => TopologySpec::TransitStub(TransitStubConfig {
            transit_domains: 4,
            transit_size: 8,
            stubs_per_transit_router: 2,
            stub_size: (n / 150).max(2),
            extra_edge_prob: 0.25,
            access_per_stub: 2,
        }),
        other => {
            eprintln!("unknown family {other}");
            std::process::exit(2);
        }
    };
    spec.generate(args.seed).unwrap_or_else(|e| {
        eprintln!("generation failed: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args = parse_args();
    let topo = build(&args);
    let stats = DegreeStats::of(&topo);

    println!("family: {} (seed {})", args.family, args.seed);
    println!("routers:        {}", topo.n_routers());
    println!("links:          {}", topo.n_links());
    println!("connected:      {}", is_connected(&topo));
    println!(
        "access routers: {} (degree-1 peer attachment points)",
        stats.n_access
    );
    println!("mean degree:    {:.2}", stats.mean);
    println!("max degree:     {}", stats.max);
    match stats.power_law_alpha {
        Some(a) => println!("power-law fit:  alpha = {a:.2}"),
        None => println!("power-law fit:  n/a (too few tail samples)"),
    }
    let kmax = max_core_number(&topo);
    println!(
        "network core:   {}-core with {} routers",
        kmax,
        k_core_members(&topo, kmax).len()
    );
    println!(
        "clustering:     {:.3}",
        global_clustering_coefficient(&topo)
    );
    println!(
        "diameter:       >= {} hops (double sweep)",
        double_sweep_diameter_lower_bound(&topo, RouterId(0))
    );

    // The betweenness concentration the paper's §2 leans on: how much of
    // the total centrality mass the top 1% of routers carries.
    let scores = betweenness_centrality_sampled(&topo, 32);
    let total: f64 = scores.iter().sum();
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let top1 = sorted.len().div_ceil(100);
    let mass: f64 = sorted[..top1].iter().sum();
    if total > 0.0 {
        println!(
            "centrality:     top 1% of routers carry {:.0}% of shortest-path mass",
            mass / total * 100.0
        );
    }

    if let Some(path) = &args.export_dot {
        std::fs::write(path, io::to_dot(&topo)).expect("write dot");
        println!("wrote {path}");
    }
    if let Some(path) = &args.export_json {
        std::fs::write(path, io::to_json(&topo)).expect("write json");
        println!("wrote {path}");
    }
}
