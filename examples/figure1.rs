//! Figure 1 — the paper's drawing, reproduced executable.
//!
//! Builds the exact topology of the paper's example (landmark `lmk`, core
//! triangle `ra–rb–rc`, small routers `r1..r8`, peers `p1..p4`), runs the
//! two-round protocol and shows the situation the paper describes:
//! `dtree(p1,p2)` (6 hops through `rc`) is *not* the shortest path
//! (4 hops through `r8`), yet the server still identifies `p2` as `p1`'s
//! closest peer — most pairs verify `d = dtree`.
//!
//! Run with: `cargo run --example figure1`

use nearpeer::core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::{hop_distance, RouteOracle};
use nearpeer::topology::presets::figure1;

fn main() {
    let fig = figure1();
    let topo = &fig.topology;
    println!(
        "Figure 1 topology: {} routers, {} links",
        topo.n_routers(),
        topo.n_links()
    );
    println!("landmark: {}", topo.label(fig.landmark).unwrap());

    let oracle = RouteOracle::new(topo);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let mut server = ManagementServer::bootstrap(topo, vec![fig.landmark], ServerConfig::default());

    // Round 1 + 2 for each peer of the drawing.
    for (i, &peer_router) in fig.peers.iter().enumerate() {
        let trace = tracer
            .trace(peer_router, fig.landmark, i as u64)
            .expect("figure is connected");
        let named: Vec<&str> = trace
            .router_path()
            .iter()
            .map(|r| topo.label(*r).unwrap_or("?"))
            .collect();
        println!("\np{} traceroute to lmk: {}", i + 1, named.join(" -> "));
        let path = PeerPath::new(trace.router_path()).expect("clean trace");
        let outcome = server
            .register(PeerId(i as u64 + 1), path)
            .expect("fresh peer id");
        for n in &outcome.neighbors {
            println!("  server says: p{} at dtree {}", n.peer.0, n.dtree);
        }
    }

    // The discrepancy the figure is about.
    let [p1, p2, p3, _p4] = fig.peers;
    let d_true = hop_distance(topo, p1, p2).unwrap();
    let dtree = server.index().dtree(PeerId(1), PeerId(2)).unwrap();
    println!("\np1-p2: true shortest path d = {d_true} hops (via the r8 shortcut)");
    println!("p1-p2: inferred dtree = {dtree} hops (via the branch point rc)");
    assert!(dtree > d_true, "the figure's discrepancy must appear");

    // And the common case where the inference is exact.
    let d13 = hop_distance(topo, p1, p3).unwrap();
    let t13 = server.index().dtree(PeerId(1), PeerId(3)).unwrap();
    println!("p1-p3: true d = {d13} hops, dtree = {t13} hops (exact)");

    // Despite the stretch on (p1, p2), ranking survives: p2 is still p1's
    // closest peer.
    let srv = server;
    let best = srv.neighbors_of(PeerId(1), 1).unwrap();
    println!(
        "\nserver's closest peer for p1: p{} (expected p2)",
        best[0].peer.0
    );
    assert_eq!(best[0].peer, PeerId(2));
    println!("figure reproduced: inference imperfect on one pair, ranking correct.");
}
