//! Integration test: the paper's Figure 1, end to end across crates
//! (topology preset → route oracle → traceroute → management server).

use nearpeer::core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::{hop_distance, RouteOracle};
use nearpeer::topology::presets::figure1;

fn joined_server() -> (nearpeer::topology::presets::Figure1, ManagementServer) {
    let fig = figure1();
    let oracle = RouteOracle::new(&fig.topology);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let mut server =
        ManagementServer::bootstrap(&fig.topology, vec![fig.landmark], ServerConfig::default());
    for (i, &router) in fig.peers.iter().enumerate() {
        let trace = tracer
            .trace(router, fig.landmark, i as u64)
            .expect("figure is connected");
        assert!(trace.destination_reached);
        let path = PeerPath::new(trace.router_path()).expect("clean trace");
        server
            .register(PeerId(i as u64 + 1), path)
            .expect("unique peer ids");
    }
    (fig, server)
}

#[test]
fn traceroutes_recover_the_drawn_routes() {
    let fig = figure1();
    let oracle = RouteOracle::new(&fig.topology);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let trace = tracer.trace(fig.peers[0], fig.landmark, 0).unwrap();
    let labels: Vec<&str> = trace
        .router_path()
        .iter()
        .map(|r| fig.topology.label(*r).unwrap())
        .collect();
    assert_eq!(labels, vec!["p1", "r2", "r1", "rc", "ra", "lmk"]);
}

#[test]
fn dtree_discrepancy_matches_the_paper() {
    let (fig, server) = joined_server();
    // dtree(p1,p2) = 6 through the branch point rc...
    assert_eq!(server.index().dtree(PeerId(1), PeerId(2)), Some(6));
    // ...but the true shortest path uses the r8 shortcut: 4 hops.
    assert_eq!(
        hop_distance(&fig.topology, fig.peers[0], fig.peers[1]),
        Some(4)
    );
    // Most other pairs verify d = dtree (the paper's expectation).
    let pairs = [
        (1u64, 3u64, 2usize),
        (1, 4, 3),
        (2, 3, 2),
        (2, 4, 3),
        (3, 4, 2),
    ];
    let mut exact = 0;
    for &(a, b, _) in &pairs {
        let dtree = server.index().dtree(PeerId(a), PeerId(b)).unwrap();
        let d = hop_distance(
            &fig.topology,
            fig.peers[a as usize - 1],
            fig.peers[b as usize - 1],
        )
        .unwrap();
        if dtree == d {
            exact += 1;
        }
    }
    assert!(
        exact >= 4,
        "only {exact}/5 remaining pairs verify d = dtree"
    );
}

#[test]
fn server_ranks_p2_closest_to_p1_despite_the_stretch() {
    let (_fig, server) = joined_server();
    let best = server.neighbors_of(PeerId(1), 3).unwrap();
    assert_eq!(best[0].peer, PeerId(2), "p2 must rank first for p1");
    // And p1 first for p2, symmetrically.
    let best2 = server.neighbors_of(PeerId(2), 3).unwrap();
    assert_eq!(best2[0].peer, PeerId(1));
}

#[test]
fn landmark_tree_structure_matches_the_figure() {
    let (fig, server) = joined_server();
    let tree = server.tree(nearpeer::core::LandmarkId(0)).unwrap();
    assert_eq!(tree.root(), fig.landmark);
    assert_eq!(tree.n_peers(), 4);
    // The branch point of p1 and p2 is rc.
    let (meet, hops) = tree.branch_point(PeerId(1), PeerId(2)).unwrap();
    assert_eq!(fig.topology.label(meet), Some("rc"));
    assert_eq!(hops, 6);
    // ra carries every peer (it is the landmark's gateway).
    let ra = fig.core[0];
    assert_eq!(tree.subtree_population(ra), Some(4));
}
