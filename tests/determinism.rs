//! Seed determinism: the experiment pipeline's randomness must be a pure
//! function of the seed, or no figure in the evaluation is reproducible.
//! Two independent runs with the same seed must produce bit-identical
//! topologies and traceroutes; a different seed must diverge. Thread count
//! must never matter: parallel round-1 tracing has to reproduce the
//! sequential build bit for bit.

use nearpeer::core::PeerId;
use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::RouteOracle;
use nearpeer::topology::generators::{mapper, MapperConfig};
use nearpeer::topology::{io, RouterId, Topology};
use nearpeer_bench::experiments::churn::{run_soak_with_server, ChurnReplayMode, ChurnSoakConfig};
use nearpeer_bench::experiments::federation::{
    run_federation_soak_with_state, FederationSoakConfig,
};
use nearpeer_bench::{trace_round1, Swarm, SwarmConfig};

fn generate(seed: u64) -> Topology {
    mapper(&MapperConfig::tiny(), seed).expect("tiny mapper config is valid")
}

#[test]
fn same_seed_same_mapper_topology() {
    let a = generate(42);
    let b = generate(42);
    assert_eq!(a, b, "same seed must reproduce the topology exactly");
    // And not merely structurally: the serialised form is identical too,
    // so maps exported by one run can be trusted by another.
    assert_eq!(io::to_json(&a), io::to_json(&b));
}

#[test]
fn different_seed_different_mapper_topology() {
    let a = generate(42);
    let b = generate(43);
    assert_ne!(a, b, "different seeds must explore different maps");
}

#[test]
fn same_seed_same_traceroute() {
    let run = |seed: u64| {
        let topo = generate(seed);
        let oracle = RouteOracle::new(&topo);
        let tracer = Tracer::new(&oracle, TraceConfig::default());
        let access = topo.access_routers();
        let target = topo
            .routers()
            .max_by_key(|&r| topo.degree(r))
            .expect("non-empty topology");
        // Trace from several access routers; capture the full hop record.
        access
            .iter()
            .take(5)
            .enumerate()
            .map(|(i, &src)| {
                tracer
                    .trace(src, target, i as u64)
                    .map(|t| (t.router_path(), t.elapsed_us))
            })
            .collect::<Vec<_>>()
    };
    let first = run(7);
    let second = run(7);
    assert_eq!(first, second, "same seed must reproduce every traceroute");
    assert!(
        first.iter().any(|t| t.is_some()),
        "at least one trace must succeed for the comparison to mean anything"
    );
}

/// Round 1 may run on any number of threads, including more workers than
/// this host has cores: the traced hop records, probe counts and elapsed
/// costs must be bit-identical to the sequential order, because every peer
/// derives its own RNG stream from `seed ^ i·0x9E37_79B9` and the shared
/// oracle's trees are a pure function of the topology. The default
/// (one-destination-tree) trace path is pinned across thread counts
/// {1,2,4,8} **and across independent reruns** for 2 seeds × 2 topologies.
#[test]
fn parallel_round1_is_bit_identical_to_sequential() {
    let topologies = [
        mapper(&MapperConfig::tiny(), 3).expect("tiny map"),
        mapper(&MapperConfig::with_access(40, 120), 8).expect("wide map"),
    ];
    // Loss and anonymous hops exercise every RNG draw in the tracer.
    let faulty = TraceConfig {
        loss_probability: 0.2,
        anonymous_probability: 0.1,
        ..TraceConfig::default()
    };
    for (t_idx, topo) in topologies.iter().enumerate() {
        for seed in [5u64, 99] {
            for cfg in [TraceConfig::default(), faulty] {
                let oracle = RouteOracle::new(topo);
                let tracer = Tracer::new(&oracle, cfg);
                let target = topo
                    .routers()
                    .max_by_key(|&r| topo.degree(r))
                    .expect("non-empty topology");
                let jobs: Vec<(RouterId, RouterId)> = topo
                    .access_routers()
                    .into_iter()
                    .map(|src| (src, target))
                    .collect();
                let sequential = trace_round1(&tracer, &jobs, seed, 1);
                for threads in [2, 4, 8] {
                    let parallel = trace_round1(&tracer, &jobs, seed, threads);
                    assert_eq!(
                        parallel, sequential,
                        "topology {t_idx}, seed {seed}, threads {threads}"
                    );
                }
                // An independent rerun — fresh oracle, fresh tree cache,
                // fresh scratches — reproduces the whole round bit for bit.
                let rerun_oracle = RouteOracle::new(topo);
                let rerun_tracer = Tracer::new(&rerun_oracle, cfg);
                let rerun = trace_round1(&rerun_tracer, &jobs, seed, 4);
                assert_eq!(rerun, sequential, "topology {t_idx}, seed {seed}, rerun");
                assert!(sequential.iter().all(|t| t.is_some()));
            }
        }
    }
}

/// The default (destination-tree prefix) and `exact_hop_rtts`
/// (per-hop-tree) pricing modes must be **structurally identical** on
/// every topology: same router sequence, same reachability, same probe
/// accounting. Only per-hop `rtt_us`/`elapsed_us` may differ, and only
/// under shortest-path ties. 2 seeds × 2 topologies, across thread counts.
#[test]
fn default_and_exact_trace_modes_are_structurally_identical() {
    let topologies = [
        mapper(&MapperConfig::tiny(), 3).expect("tiny map"),
        mapper(&MapperConfig::with_access(40, 120), 8).expect("wide map"),
    ];
    for (t_idx, topo) in topologies.iter().enumerate() {
        for seed in [5u64, 99] {
            let oracle = RouteOracle::new(topo);
            let default_tracer = Tracer::new(&oracle, TraceConfig::default());
            let exact_tracer = Tracer::new(
                &oracle,
                TraceConfig {
                    exact_hop_rtts: true,
                    ..TraceConfig::default()
                },
            );
            let target = topo
                .routers()
                .max_by_key(|&r| topo.degree(r))
                .expect("non-empty topology");
            let jobs: Vec<(RouterId, RouterId)> = topo
                .access_routers()
                .into_iter()
                .map(|src| (src, target))
                .collect();
            for threads in [1usize, 4] {
                let default_run = trace_round1(&default_tracer, &jobs, seed, threads);
                let exact_run = trace_round1(&exact_tracer, &jobs, seed, threads);
                for (i, (d, e)) in default_run.iter().zip(&exact_run).enumerate() {
                    let label =
                        format!("topology {t_idx}, seed {seed}, threads {threads}, job {i}");
                    let (d, e) = (
                        d.as_ref().expect("connected"),
                        e.as_ref().expect("connected"),
                    );
                    assert_eq!(d.router_path(), e.router_path(), "{label}");
                    assert_eq!(d.destination_reached, e.destination_reached, "{label}");
                    assert_eq!(d.probes_sent, e.probes_sent, "{label}");
                    assert_eq!(d.hops.len(), e.hops.len(), "{label}");
                    for (dh, eh) in d.hops.iter().zip(&e.hops) {
                        assert_eq!((dh.ttl, dh.router), (eh.ttl, eh.router), "{label}");
                    }
                }
            }
        }
    }
}

/// Churn replay must be a pure function of the trace seed, not of the
/// batching strategy: feeding the same `ChurnTrace` through the
/// sequential path (one facade call per event), the batched path
/// (per-epoch `register_batch_renewing`/`leave_batch`/
/// `expire_stale_batch`) and the shard-parallel path (per-landmark scoped
/// threads over `shards_mut`, at several forced worker counts) must leave
/// **identical directory state** — peers, paths, leases, per-landmark
/// trees, join/leave stats — and identical `BENCH_churn`-style counters.
#[test]
fn churn_replay_modes_produce_identical_directories() {
    for seed in [5u64, 21] {
        let base = ChurnSoakConfig {
            peers: 300,
            cycles: 2,
            mean_lifetime_secs: 30.0,
            arrival_rate: 40.0,
            failure_fraction: 0.4,
            n_landmarks: 3,
            epochs_per_cycle: 20,
            expire_every: 3,
            max_age: 5,
            heartbeat_every: 2,
            mode: ChurnReplayMode::Sequential,
            threads: None,
            adaptive: None,
        };
        let (seq_result, seq_server) = run_soak_with_server(&base, seed);
        let runs = [
            (ChurnReplayMode::Batched, None),
            (ChurnReplayMode::ShardParallel, Some(2)),
            (ChurnReplayMode::ShardParallel, Some(5)),
        ];
        for (mode, threads) in runs {
            let cfg = ChurnSoakConfig {
                mode,
                threads,
                ..base.clone()
            };
            let (result, server) = run_soak_with_server(&cfg, seed);
            let label = format!("seed {seed}, {mode:?} threads {threads:?}");
            assert_eq!(result.counters, seq_result.counters, "{label}");
            assert_eq!(
                result.peak_population, seq_result.peak_population,
                "{label}"
            );
            assert_eq!(
                result.final_population, seq_result.final_population,
                "{label}"
            );
            // Full directory-state equality, not just counters.
            let (s, o) = (seq_server.report(), server.report());
            assert_eq!(o.peers, s.peers, "{label}");
            assert_eq!(o.indexed_routers, s.indexed_routers, "{label}");
            assert_eq!(o.per_landmark, s.per_landmark, "{label}");
            assert_eq!(o.stats.joins, s.stats.joins, "{label}");
            assert_eq!(o.stats.leaves, s.stats.leaves, "{label}");
            assert_eq!(o.epoch, s.epoch, "{label}");
            for p in 0..base.peers as u64 {
                let peer = PeerId(p);
                assert_eq!(server.path_of(peer), seq_server.path_of(peer), "{label}");
                assert_eq!(
                    server.shards().iter().find_map(|sh| sh.last_seen(peer)),
                    seq_server.shards().iter().find_map(|sh| sh.last_seen(peer)),
                    "{label}: lease of peer {p}"
                );
            }
        }
    }
}

/// Federated replays must be pure functions of `(seed, region count)`:
/// replaying the same region-biased churn/mobility trace through a fresh
/// federation twice must leave identical counters **and identical
/// directory state** — per-region populations, peer locations, stored
/// paths, lease epochs — for every region count; different seeds must
/// diverge. (Cross-region handovers, forwarding tombstones and
/// federation-aware expiry are all on this path.)
#[test]
fn federated_replays_are_deterministic_across_seeds_and_region_counts() {
    let mut fingerprints = Vec::new();
    for seed in [5u64, 21] {
        for regions in [1usize, 2, 4] {
            let cfg = FederationSoakConfig {
                peers: 250,
                regions,
                n_landmarks: 4,
                cycles: 2,
                epochs_per_cycle: 20,
                ..FederationSoakConfig::quick()
            };
            let (first, fed_a) = run_federation_soak_with_state(&cfg, seed);
            let (second, fed_b) = run_federation_soak_with_state(&cfg, seed);
            let label = format!("seed {seed}, {regions} regions");
            assert_eq!(first.counters, second.counters, "{label}");
            assert_eq!(first.final_per_region, second.final_per_region, "{label}");
            assert_eq!(first.peak_population, second.peak_population, "{label}");
            assert_eq!(fed_a.peer_count(), fed_b.peer_count(), "{label}");
            assert_eq!(fed_a.tombstone_count(), 0, "{label}: drained");
            for p in 0..cfg.peers as u64 {
                let peer = PeerId(p);
                assert_eq!(
                    fed_a.locate(peer).map(|(r, path)| (r, path.clone())),
                    fed_b.locate(peer).map(|(r, path)| (r, path.clone())),
                    "{label}: location of peer {p}"
                );
            }
            for (ra, rb) in fed_a.regions().iter().zip(fed_b.regions()) {
                let (a, b) = (ra.server().report(), rb.server().report());
                assert_eq!(a.peers, b.peers, "{label}");
                assert_eq!(a.per_landmark, b.per_landmark, "{label}");
                assert_eq!(a.epoch, b.epoch, "{label}");
            }
            fingerprints.push((seed, regions, first.counters));
        }
    }
    // Different seeds must explore different schedules.
    for regions in [1usize, 2, 4] {
        let a = fingerprints
            .iter()
            .find(|(s, r, _)| *s == 5 && *r == regions)
            .unwrap();
        let b = fingerprints
            .iter()
            .find(|(s, r, _)| *s == 21 && *r == regions)
            .unwrap();
        assert_ne!(a.2, b.2, "{regions} regions: seeds 5 and 21 agree?!");
    }
}

/// End to end: a swarm built with forced-parallel tracing matches a swarm
/// built with forced-sequential tracing in every observable — join costs,
/// attachments, and the populated directory's answers.
#[test]
fn parallel_swarm_build_matches_sequential_directory_state() {
    for (topo_seed, swarm_seed) in [(3u64, 5u64), (8, 21)] {
        let topo = mapper(&MapperConfig::tiny(), topo_seed).expect("tiny map");
        let build = |threads: usize| {
            let cfg = SwarmConfig {
                n_peers: 50,
                n_landmarks: 3,
                trace_threads: Some(threads),
                ..Default::default()
            };
            Swarm::build(&topo, &cfg, swarm_seed).expect("swarm builds")
        };
        let seq = build(1);
        let par = build(4);
        assert_eq!(par.landmarks, seq.landmarks);
        assert_eq!(par.attachment, seq.attachment);
        assert_eq!(par.join_cost, seq.join_cost, "probe costs must not drift");
        let (s, p) = (seq.server.report(), par.server.report());
        assert_eq!(p.peers, s.peers);
        assert_eq!(p.indexed_routers, s.indexed_routers);
        assert_eq!(p.per_landmark, s.per_landmark);
        for &peer in &seq.peers {
            assert_eq!(
                par.server.neighbors_of(peer, 5).expect("registered"),
                seq.server.neighbors_of(peer, 5).expect("registered"),
                "{peer} (topo seed {topo_seed}, swarm seed {swarm_seed})"
            );
        }
    }
}
