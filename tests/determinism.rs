//! Seed determinism: the experiment pipeline's randomness must be a pure
//! function of the seed, or no figure in the evaluation is reproducible.
//! Two independent runs with the same seed must produce bit-identical
//! topologies and traceroutes; a different seed must diverge.

use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::RouteOracle;
use nearpeer::topology::generators::{mapper, MapperConfig};
use nearpeer::topology::{io, Topology};

fn generate(seed: u64) -> Topology {
    mapper(&MapperConfig::tiny(), seed).expect("tiny mapper config is valid")
}

#[test]
fn same_seed_same_mapper_topology() {
    let a = generate(42);
    let b = generate(42);
    assert_eq!(a, b, "same seed must reproduce the topology exactly");
    // And not merely structurally: the serialised form is identical too,
    // so maps exported by one run can be trusted by another.
    assert_eq!(io::to_json(&a), io::to_json(&b));
}

#[test]
fn different_seed_different_mapper_topology() {
    let a = generate(42);
    let b = generate(43);
    assert_ne!(a, b, "different seeds must explore different maps");
}

#[test]
fn same_seed_same_traceroute() {
    let run = |seed: u64| {
        let topo = generate(seed);
        let oracle = RouteOracle::new(&topo);
        let tracer = Tracer::new(&oracle, TraceConfig::default());
        let access = topo.access_routers();
        let target = topo
            .routers()
            .max_by_key(|&r| topo.degree(r))
            .expect("non-empty topology");
        // Trace from several access routers; capture the full hop record.
        access
            .iter()
            .take(5)
            .enumerate()
            .map(|(i, &src)| {
                tracer
                    .trace(src, target, i as u64)
                    .map(|t| (t.router_path(), t.elapsed_us))
            })
            .collect::<Vec<_>>()
    };
    let first = run(7);
    let second = run(7);
    assert_eq!(first, second, "same seed must reproduce every traceroute");
    assert!(
        first.iter().any(|t| t.is_some()),
        "at least one trace must succeed for the comparison to mean anything"
    );
}
