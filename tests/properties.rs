//! Property-based tests across crates: the RouterIndex agrees with brute
//! force on arbitrary tree-consistent path populations, the wire codec
//! round-trips arbitrary messages, and topology construction invariants
//! hold for arbitrary edge sets.

use nearpeer::core::codec::{decode, encode, CodecError};
use nearpeer::core::protocol::{Message, WireNeighbor};
use nearpeer::core::{PeerId, PeerPath, RouterIndex};
use nearpeer::topology::{RouterId, TopologyBuilder};
use proptest::prelude::*;
use std::collections::HashSet;

// ---------- generators ----------

/// A tree-consistent path population: each peer's path is a leaf-to-root
/// walk in a random 4-ary tree of depth `depth` (same construction as real
/// landmark routes: shared prefixes share the suffix).
fn tree_paths(max_peers: usize, depth: u32) -> impl Strategy<Value = Vec<PeerPath>> {
    prop::collection::vec(0u64..1_000_000, 2..max_peers).prop_map(move |leaves| {
        leaves
            .into_iter()
            .enumerate()
            .map(|(i, leaf)| {
                let mut routers = vec![RouterId(u32::MAX - i as u32)];
                for level in (0..depth).rev() {
                    let prefix = leaf % 4u64.pow(level);
                    routers.push(RouterId((level << 22) | (prefix as u32 & 0x3F_FFFF)));
                }
                PeerPath::new(routers).expect("construction is loop-free")
            })
            .collect()
    })
}

fn arb_path() -> impl Strategy<Value = PeerPath> {
    prop::collection::hash_set(0u32..100_000, 1..24).prop_map(|set| {
        let routers: Vec<RouterId> = set.into_iter().map(RouterId).collect();
        PeerPath::new(routers).expect("distinct ids are loop-free")
    })
}

fn arb_neighbor() -> impl Strategy<Value = WireNeighbor> {
    (any::<u64>(), any::<u32>()).prop_map(|(p, d)| WireNeighbor {
        peer: PeerId(p),
        dtree: d,
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        any::<u64>().prop_map(|nonce| Message::ProbePing { nonce }),
        any::<u64>().prop_map(|nonce| Message::ProbePong { nonce }),
        (any::<u64>(), arb_path()).prop_map(|(p, path)| Message::JoinRequest {
            peer: PeerId(p),
            path
        }),
        (
            any::<u64>(),
            prop::collection::vec(arb_neighbor(), 0..16),
            prop::option::of(any::<u64>().prop_map(PeerId))
        )
            .prop_map(|(p, neighbors, delegate)| Message::JoinReply {
                peer: PeerId(p),
                neighbors,
                delegate,
            }),
        (any::<u64>(), ".{0,64}").prop_map(|(p, reason)| Message::JoinError {
            peer: PeerId(p),
            reason,
        }),
        any::<u64>().prop_map(|p| Message::Leave { peer: PeerId(p) }),
        (any::<u64>(), arb_path()).prop_map(|(p, path)| Message::HandoverRequest {
            peer: PeerId(p),
            path
        }),
        any::<u64>().prop_map(|p| Message::Heartbeat { peer: PeerId(p) }),
        (
            any::<u64>(),
            arb_path(),
            any::<u16>(),
            prop::option::of(any::<u64>().prop_map(PeerId))
        )
            .prop_map(|(nonce, path, k, exclude)| Message::QueryRequest {
                nonce,
                path,
                k,
                exclude,
            }),
        (any::<u64>(), prop::collection::vec(arb_neighbor(), 0..16))
            .prop_map(|(nonce, neighbors)| Message::QueryReply { nonce, neighbors }),
        (any::<u64>(), any::<u32>(), any::<u16>()).prop_map(|(nonce, r, limit)| {
            Message::FillRequest {
                nonce,
                router: RouterId(r),
                limit,
            }
        }),
        (any::<u64>(), prop::collection::vec(arb_neighbor(), 0..16))
            .prop_map(|(nonce, items)| Message::FillReply { nonce, items }),
        any::<u64>().prop_map(|nonce| Message::Shutdown { nonce }),
    ]
}

// ---------- RouterIndex vs brute force ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_nearest_matches_brute_force(paths in tree_paths(24, 6), k in 1usize..8) {
        let mut index = RouterIndex::new();
        for (i, path) in paths.iter().enumerate() {
            index.insert(PeerId(i as u64), path.clone()).expect("unique ids");
        }
        // Query with the first peer's path, excluding itself.
        let query = &paths[0];
        let exclude: HashSet<PeerId> = [PeerId(0)].into_iter().collect();
        let fast = index.query_nearest(query, k, &exclude);

        let mut brute: Vec<(u32, PeerId)> = paths
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(i, p)| query.dtree(p).map(|(_, d)| (d, PeerId(i as u64))))
            .collect();
        brute.sort();
        brute.truncate(k);

        let fast_pairs: Vec<(u32, PeerId)> =
            fast.iter().map(|n| (n.dtree, n.peer)).collect();
        prop_assert_eq!(fast_pairs, brute);
    }

    #[test]
    fn insert_remove_is_identity(paths in tree_paths(16, 5)) {
        let mut index = RouterIndex::new();
        for (i, path) in paths.iter().enumerate() {
            index.insert(PeerId(i as u64), path.clone()).expect("unique ids");
        }
        // Remove the odd peers; the index must behave as if they never joined.
        for i in (1..paths.len()).step_by(2) {
            prop_assert!(index.remove(PeerId(i as u64)).is_some());
        }
        let mut reference = RouterIndex::new();
        for (i, path) in paths.iter().enumerate().step_by(2) {
            reference.insert(PeerId(i as u64), path.clone()).expect("unique ids");
        }
        let query = &paths[0];
        let none = HashSet::new();
        let a = index.query_nearest(query, 8, &none);
        let b = reference.query_nearest(query, 8, &none);
        prop_assert_eq!(a, b);
        prop_assert_eq!(index.len(), reference.len());
        prop_assert_eq!(index.n_routers(), reference.n_routers());
    }

    #[test]
    fn dtree_is_symmetric_and_nonnegative(paths in tree_paths(12, 5)) {
        for a in &paths {
            for b in &paths {
                let ab = a.dtree(b);
                let ba = b.dtree(a);
                match (ab, ba) {
                    (Some((_, d1)), Some((_, d2))) => prop_assert_eq!(d1, d2),
                    (None, None) => {}
                    other => prop_assert!(false, "asymmetric dtree: {:?}", other),
                }
            }
        }
    }
}

// ---------- codec ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_round_trips(msg in arb_message()) {
        let mut buf = bytes::BytesMut::new();
        encode(&msg, &mut buf);
        let back = decode(&mut buf).expect("own encoding must decode");
        prop_assert_eq!(back, msg);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn codec_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        // Decoding may error or succeed, but must never panic, and must not
        // consume anything on Incomplete.
        let before = buf.len();
        if let Err(CodecError::Incomplete) = decode(&mut buf) { prop_assert_eq!(buf.len(), before) }
    }

    /// The transport guarantee `nearpeerd` relies on: any frame stream cut
    /// into arbitrary chunks reassembles to exactly the encoded messages,
    /// no matter where the cuts land (mid-length-prefix, mid-payload, on a
    /// boundary).
    #[test]
    fn codec_reassembles_random_chunking(
        msgs in prop::collection::vec(arb_message(), 1..6),
        chunks in prop::collection::vec(1usize..9, 1..64),
    ) {
        let mut stream = bytes::BytesMut::new();
        for m in &msgs {
            encode(m, &mut stream);
        }
        let stream: Vec<u8> = stream[..].to_vec();
        let mut buf = bytes::BytesMut::new();
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        let mut next_chunk = 0usize;
        while pos < stream.len() {
            let n = chunks[next_chunk % chunks.len()].min(stream.len() - pos);
            next_chunk += 1;
            buf.extend_from_slice(&stream[pos..pos + n]);
            pos += n;
            loop {
                match decode(&mut buf) {
                    Ok(m) => decoded.push(m),
                    Err(CodecError::Incomplete) => break,
                    Err(e) => prop_assert!(false, "well-formed stream decoded to {e}"),
                }
            }
        }
        prop_assert_eq!(decoded, msgs);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn codec_survives_truncation(msg in arb_message(), cut_ratio in 0.0f64..1.0) {
        let mut full = bytes::BytesMut::new();
        encode(&msg, &mut full);
        let cut = ((full.len() as f64) * cut_ratio) as usize;
        let mut partial = bytes::BytesMut::from(&full[..cut]);
        if cut < full.len() {
            prop_assert!(matches!(decode(&mut partial), Err(CodecError::Incomplete)));
        }
    }
}

// ---------- topology invariants ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_invariants_hold(
        n in 2usize..40,
        edges in prop::collection::vec((0u32..40, 0u32..40, 1u32..100_000), 0..120)
    ) {
        let mut b = TopologyBuilder::with_routers(n);
        let mut accepted = 0usize;
        for (x, y, lat) in edges {
            let (a, c) = (RouterId(x % n as u32), RouterId(y % n as u32));
            if a != c {
                b.link(a, c, lat).expect("ids in range");
                accepted += 1;
            }
        }
        let topo = b.build();
        // No self-loops, no duplicates, symmetric latencies.
        let mut seen = HashSet::new();
        for (a, c, lat) in topo.links() {
            prop_assert_ne!(a, c);
            prop_assert!(seen.insert((a, c)));
            prop_assert_eq!(topo.link_latency_us(c, a), Some(lat));
        }
        prop_assert!(topo.n_links() <= accepted);
        // Degree sum = 2 * links.
        let degree_sum: usize = topo.routers().map(|r| topo.degree(r)).sum();
        prop_assert_eq!(degree_sum, 2 * topo.n_links());
    }
}
