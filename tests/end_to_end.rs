//! Integration test: a full swarm on a synthetic Internet, exercising the
//! public API across every crate — discovery quality, the wire protocol
//! through the simulator, and churn operations.

use nearpeer::core::actors::{JoinRecord, LandmarkActor, PeerActor, ServerActor};
use nearpeer::core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer::core::protocol::Message;
use nearpeer::core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::{bfs_distances, RouteOracle};
use nearpeer::sim::links::TopologyLinks;
use nearpeer::sim::{NodeId, Simulator};
use nearpeer::topology::generators::{mapper, MapperConfig};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

const SEED: u64 = 20_07;

#[test]
fn path_tree_selection_beats_random_on_an_internet_like_map() {
    let topo = mapper(&MapperConfig::with_access(200, 300), SEED).unwrap();
    let landmarks = place_landmarks(&topo, 4, PlacementPolicy::DegreeMedium, SEED);
    let oracle = RouteOracle::new(&topo);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let mut server = ManagementServer::bootstrap(&topo, landmarks.clone(), ServerConfig::default());

    let access = topo.access_routers();
    let n = 150usize;
    let k = 5usize;
    let mut attach = HashMap::new();
    for i in 0..n {
        let router = access[(i * 7) % access.len()];
        let lm = landmarks
            .iter()
            .filter_map(|&lm| oracle.rtt_us(router, lm).map(|rtt| (rtt, lm)))
            .min()
            .map(|(_, lm)| lm)
            .unwrap();
        let trace = tracer.trace(router, lm, i as u64).unwrap();
        let path = PeerPath::new(trace.router_path()).unwrap();
        server.register(PeerId(i as u64), path).unwrap();
        attach.insert(PeerId(i as u64), router);
    }

    // Aggregate D over all peers for path-tree and random selection.
    let mut sum_d = 0u64;
    let mut sum_rand = 0u64;
    let mut sum_best = 0u64;
    for i in 0..n {
        let peer = PeerId(i as u64);
        let dist = bfs_distances(&topo, attach[&peer]);
        let cost = |p: PeerId| dist[attach[&p].index()] as u64;

        let neigh = server.neighbors_of(peer, k).unwrap();
        assert_eq!(neigh.len(), k, "{peer} got a short list");
        sum_d += neigh.iter().map(|nb| cost(nb.peer)).sum::<u64>();

        // Deterministic pseudo-random baseline.
        sum_rand += (0..k)
            .map(|j| cost(PeerId(((i * 31 + j * 17 + 1) % n) as u64)))
            .sum::<u64>();

        let mut all: Vec<u64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| cost(PeerId(j as u64)))
            .collect();
        all.sort_unstable();
        sum_best += all.iter().take(k).sum::<u64>();
    }
    let d_ratio = sum_d as f64 / sum_best as f64;
    let rand_ratio = sum_rand as f64 / sum_best as f64;
    assert!(d_ratio >= 1.0);
    assert!(
        d_ratio < rand_ratio * 0.85,
        "path-tree ({d_ratio:.3}) must clearly beat random ({rand_ratio:.3})"
    );
}

#[test]
fn wire_protocol_joins_through_the_simulator() {
    let topo = mapper(&MapperConfig::tiny(), SEED).unwrap();
    let landmarks = place_landmarks(&topo, 2, PlacementPolicy::DegreeMedium, SEED);
    let oracle = RouteOracle::new(&topo);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let server = Rc::new(RefCell::new(ManagementServer::bootstrap(
        &topo,
        landmarks.clone(),
        ServerConfig::default(),
    )));

    // Server and landmarks attach to real routers; peers behind access
    // routers. Messages travel with topology latencies.
    let mut links = TopologyLinks::new(&topo);
    let access = topo.access_routers();
    links.attach(NodeId(0), landmarks[0]);
    links.attach(NodeId(1), landmarks[0]);
    links.attach(NodeId(2), landmarks[1]);
    let mut sim: Simulator<Message, _> = {
        for (i, &router) in access.iter().take(10).enumerate() {
            links.attach(NodeId(3 + i as u32), router);
        }
        Simulator::new(links, SEED)
    };
    let srv = sim.add_actor(Box::new(ServerActor::new(server.clone())));
    let lm_nodes = vec![
        sim.add_actor(Box::new(LandmarkActor)),
        sim.add_actor(Box::new(LandmarkActor)),
    ];

    let mut records = Vec::new();
    for (i, &router) in access.iter().take(10).enumerate() {
        let traces: Vec<Option<(PeerPath, u64)>> = landmarks
            .iter()
            .map(|&lm| {
                tracer
                    .trace(router, lm, i as u64)
                    .map(|t| (PeerPath::new(t.router_path()).unwrap(), t.elapsed_us))
            })
            .collect();
        let record = Rc::new(RefCell::new(JoinRecord::default()));
        sim.add_actor(Box::new(PeerActor::new(
            PeerId(i as u64),
            srv,
            lm_nodes.clone(),
            traces,
            200_000,
            record.clone(),
        )));
        records.push(record);
    }
    sim.run_to_completion();

    assert_eq!(server.borrow().peer_count(), 10);
    for (i, rec) in records.iter().enumerate() {
        let rec = rec.borrow();
        assert!(!rec.refused, "peer {i} refused");
        assert!(rec.joined_at.is_some(), "peer {i} never joined");
        assert!(rec.setup_delay_us().unwrap() > 0);
    }
    // Joins race through the simulator, so registration order follows
    // simulated latencies, not peer index: assert on join *time* instead.
    // Whoever joined last must see a well-populated system, and most peers
    // must have found someone.
    let last = records
        .iter()
        .max_by_key(|r| r.borrow().joined_at)
        .expect("ten records");
    assert!(
        last.borrow().neighbors.len() >= 3,
        "last joiner saw only {:?}",
        last.borrow().neighbors
    );
    let with_neighbors = records
        .iter()
        .filter(|r| !r.borrow().neighbors.is_empty())
        .count();
    assert!(
        with_neighbors >= 7,
        "only {with_neighbors}/10 got neighbors"
    );
}

#[test]
fn churn_deregistration_keeps_answers_clean() {
    let topo = mapper(&MapperConfig::tiny(), SEED).unwrap();
    let landmarks = place_landmarks(&topo, 2, PlacementPolicy::DegreeMedium, SEED);
    let oracle = RouteOracle::new(&topo);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let mut server = ManagementServer::bootstrap(&topo, landmarks.clone(), ServerConfig::default());
    let access = topo.access_routers();

    let mk_path = |router, salt: u64| {
        let lm = landmarks
            .iter()
            .filter_map(|&lm| oracle.rtt_us(router, lm).map(|rtt| (rtt, lm)))
            .min()
            .map(|(_, lm)| lm)
            .unwrap();
        PeerPath::new(tracer.trace(router, lm, salt).unwrap().router_path()).unwrap()
    };

    for i in 0..30u64 {
        let router = access[(i as usize * 3) % access.len()];
        server.register(PeerId(i), mk_path(router, i)).unwrap();
    }
    // Half the peers leave gracefully.
    for i in (0..30u64).filter(|i| i % 2 == 0) {
        server.deregister(PeerId(i)).unwrap();
    }
    assert_eq!(server.peer_count(), 15);
    // Every answer only contains live peers.
    for i in (1..30u64).filter(|i| i % 2 == 1) {
        for nb in server.neighbors_of(PeerId(i), 5).unwrap() {
            assert!(nb.peer.0 % 2 == 1, "dead peer {} served", nb.peer);
        }
    }
}
