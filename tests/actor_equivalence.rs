//! Answer equivalence between the actorized serving plane and the
//! synchronous data plane it fronts.
//!
//! The actorization claim is not "roughly the same answers" — it is
//! **bit-identical behaviour over any op interleaving**: an
//! [`ActorServer`] fed a sequence of register / leave / heartbeat /
//! handover / epoch / expiry / query operations must produce exactly the
//! outcomes of a [`ManagementServer`] fed the same sequence, and an
//! [`ActorFederation`] must match a [`Federation`] the same way at 1, 2
//! and 4 regions (home-first fan-out, bridge fills and cross-region
//! handovers included). The sequential interleaving pins the semantics;
//! the concurrency of the mailbox runtime is exercised by the crate's
//! unit tests and the wire smoke test.

use nearpeer::core::{
    ActorFederation, ActorServer, CoreError, FederatedJoin, Federation, FederationConfig,
    JoinOutcome, LandmarkId, Neighbor, PeerId, ServerConfig,
};
use nearpeer_bench::wire::synthetic_landmarks;
use nearpeer_bench::SyntheticJoins;
use proptest::prelude::*;

const LANDMARKS: usize = 4;
const PEER_SPACE: u64 = 16;

/// One serving-plane operation. Peer ids are drawn from a small space so
/// sequences exercise duplicates, unknown peers, re-registration after
/// expiry and repeated moves.
#[derive(Debug, Clone)]
enum Op {
    Register(u64),
    Leave(u64),
    Handover(u64, u32),
    Heartbeat(u64),
    Advance,
    Expire(u64),
    Query(u64, usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u64..PEER_SPACE).prop_map(Op::Register),
        (0u64..PEER_SPACE).prop_map(Op::Leave),
        (0u64..PEER_SPACE, 0u32..LANDMARKS as u32).prop_map(|(p, l)| Op::Handover(p, l)),
        (0u64..PEER_SPACE).prop_map(Op::Heartbeat),
        Just(Op::Advance),
        (0u64..4).prop_map(Op::Expire),
        (0u64..PEER_SPACE, 1usize..6).prop_map(|(p, k)| Op::Query(p, k)),
    ];
    prop::collection::vec(op, 1..60)
}

fn config() -> ServerConfig {
    ServerConfig {
        neighbor_count: 3,
        ..ServerConfig::default()
    }
}

/// Flattens an answer to comparable tuples.
fn key(neighbors: &[Neighbor]) -> Vec<(u64, u32)> {
    neighbors.iter().map(|n| (n.peer.0, n.dtree)).collect()
}

/// `(landmark, answer, delegate)` — a join outcome flattened for comparison.
type JoinKey = Result<(u32, Vec<(u64, u32)>, Option<u64>), String>;

/// `(region, landmark, answer)` — a federated join flattened for comparison.
type FedKey = Result<(u32, u32, Vec<(u64, u32)>), String>;

fn join_key(r: Result<JoinOutcome, CoreError>) -> JoinKey {
    r.map(|o| (o.landmark.0, key(&o.neighbors), o.delegate.map(|d| d.0)))
        .map_err(|e| e.to_string())
}

fn fed_key(r: Result<FederatedJoin, CoreError>) -> FedKey {
    r.map(|o| (o.region.0, o.landmark.0, key(&o.neighbors)))
        .map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// [`ActorServer`] ≡ [`ManagementServer`] over arbitrary op sequences.
    #[test]
    fn actor_server_matches_sync_server(ops in arb_ops()) {
        let joins = SyntheticJoins::new(LANDMARKS);
        let mut sync = joins.server(config());
        let (routers, dist) = synthetic_landmarks(LANDMARKS);
        let actor = ActorServer::new(routers, dist, config()).expect("builds");
        for op in ops {
            match op {
                Op::Register(p) => {
                    let a = join_key(sync.register(PeerId(p), joins.path(p)));
                    let b = join_key(actor.register(PeerId(p), joins.path(p)));
                    prop_assert_eq!(a, b);
                }
                Op::Leave(p) => {
                    let a = sync.deregister(PeerId(p)).map_err(|e| e.to_string());
                    let b = actor.deregister(PeerId(p)).map_err(|e| e.to_string());
                    prop_assert_eq!(a, b);
                }
                Op::Handover(p, l) => {
                    let path = joins.path_to(p, LandmarkId(l));
                    let a = join_key(sync.handover(PeerId(p), path.clone()));
                    let b = join_key(actor.handover(PeerId(p), path));
                    prop_assert_eq!(a, b);
                }
                Op::Heartbeat(p) => {
                    let a = sync.heartbeat(PeerId(p)).map_err(|e| e.to_string());
                    let b = actor.heartbeat(PeerId(p)).map_err(|e| e.to_string());
                    prop_assert_eq!(a, b);
                }
                Op::Advance => {
                    prop_assert_eq!(sync.advance_epoch(), actor.advance_epoch());
                }
                Op::Expire(age) => {
                    prop_assert_eq!(sync.expire_stale(age), actor.expire_stale(age));
                }
                Op::Query(p, k) => {
                    let path = joins.path(p);
                    let a = key(&sync.closest_to_path(&path, k, Some(PeerId(p))));
                    let b = key(&actor.closest_to_path(&path, k, Some(PeerId(p))));
                    prop_assert_eq!(a, b);
                }
            }
        }
        prop_assert_eq!(sync.peer_count(), actor.peer_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// [`ActorFederation`] ≡ [`Federation`] at 1, 2 and 4 regions: the
    /// RPC-frame fan-out and prefix-cursor bridge fills reproduce the
    /// nested-call query exactly.
    #[test]
    fn actor_federation_matches_sync_federation(
        ops in arb_ops(),
        regions in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let joins = SyntheticJoins::new(LANDMARKS);
        let fed_config = FederationConfig {
            fanout: None,
            server: config(),
        };
        let (routers, dist) = synthetic_landmarks(LANDMARKS);
        let mut sync =
            Federation::new(routers.clone(), dist.clone(), regions, fed_config)
                .expect("builds");
        let actor =
            ActorFederation::new(routers, dist, regions, fed_config).expect("builds");
        for op in ops {
            match op {
                Op::Register(p) => {
                    let a = fed_key(sync.register(PeerId(p), joins.path(p)));
                    let b = fed_key(actor.register(PeerId(p), joins.path(p)));
                    prop_assert_eq!(a, b);
                }
                Op::Leave(p) => {
                    prop_assert_eq!(
                        sync.leave_batch(&[PeerId(p)]),
                        actor.leave_batch(&[PeerId(p)])
                    );
                }
                Op::Handover(p, l) => {
                    let path = joins.path_to(p, LandmarkId(l));
                    let a = fed_key(sync.handover(PeerId(p), path.clone()));
                    let b = fed_key(actor.handover(PeerId(p), path));
                    prop_assert_eq!(a, b);
                }
                Op::Heartbeat(p) => {
                    prop_assert_eq!(
                        sync.renew_batch(&[PeerId(p)]),
                        actor.renew_batch(&[PeerId(p)])
                    );
                }
                Op::Advance => {
                    prop_assert_eq!(sync.advance_epoch(), actor.advance_epoch());
                }
                Op::Expire(age) => {
                    let a = sync.expire_stale(age);
                    let b = actor.expire_stale(age);
                    let flat = |s: nearpeer::core::FederationSweep| {
                        (
                            s.expired
                                .iter()
                                .map(|(r, p)| (r.0, p.0))
                                .collect::<Vec<_>>(),
                            s.moved_swept
                                .iter()
                                .map(|(r, p)| (r.0, p.0))
                                .collect::<Vec<_>>(),
                        )
                    };
                    prop_assert_eq!(flat(a), flat(b));
                }
                Op::Query(p, k) => {
                    let path = joins.path(p);
                    let a = key(&sync.closest_to_path(&path, k, Some(PeerId(p))));
                    let b = key(&actor.closest_to_path(&path, k, Some(PeerId(p))));
                    prop_assert_eq!(a, b);
                }
            }
        }
        prop_assert_eq!(sync.peer_count(), actor.peer_count());
        prop_assert_eq!(sync.tombstone_count(), actor.tombstone_count());
    }
}
