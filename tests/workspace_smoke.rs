//! Workspace smoke test: every facade module's re-exports resolve and a
//! minimal value from each crate behaves. This is the cheap early-warning
//! for broken `pub use` wiring between the `nearpeer` facade and the
//! member crates — if a re-export goes missing, this file stops compiling
//! before any deeper test gets a chance to.

use nearpeer::coord::Coord;
use nearpeer::core::{PeerId, PeerPath};
use nearpeer::metrics::OnlineStats;
use nearpeer::overlay::BufferMap;
use nearpeer::probe::ProbePlan;
use nearpeer::routing::bfs_distances;
use nearpeer::sim::SimTime;
use nearpeer::topology::{RouterId, TopologyBuilder};
use nearpeer::workloads::{ArrivalProcess, Sweep};

#[test]
fn every_facade_module_resolves() {
    // topology: a two-router link.
    let mut builder = TopologyBuilder::with_routers(2);
    builder.link(RouterId(0), RouterId(1), 1_000).unwrap();
    let topo = builder.build();
    assert_eq!(topo.n_routers(), 2);
    assert_eq!(topo.n_links(), 1);

    // routing: BFS over it.
    let dist = bfs_distances(&topo, RouterId(0));
    assert_eq!(dist[1], 1);

    // core: a peer path and its identity dtree.
    let path = PeerPath::new(vec![RouterId(0), RouterId(1)]).unwrap();
    assert_eq!(path.routers().len(), 2);
    let _peer = PeerId(7);

    // probe: the full-traceroute plan probes every TTL.
    assert_eq!(ProbePlan::Full.ttls(5), vec![1, 2, 3, 4, 5]);

    // coord: the origin is distance zero from itself.
    let origin = Coord::origin(2);
    assert_eq!(origin.dim(), 2);
    assert!(origin.distance(&Coord::origin(2)).abs() < 1e-12);

    // sim: virtual time arithmetic.
    assert_eq!(SimTime::from_millis(2), SimTime(2_000));

    // overlay: an empty buffer map misses every chunk.
    let buffer = BufferMap::new(8);
    assert_eq!(buffer.missing_in(0, 8).len(), 8);

    // metrics: online stats over three samples.
    let mut stats = OnlineStats::new();
    for x in [1.0, 2.0, 3.0] {
        stats.push(x);
    }
    assert_eq!(stats.count(), 3);
    assert!((stats.mean() - 2.0).abs() < 1e-12);

    // workloads: a batch arrival process and a parameter sweep.
    let times = ArrivalProcess::Batch.times(3, 1);
    assert_eq!(times, vec![0, 0, 0]);
    let sweep = Sweep::new(vec![1usize, 2], vec!["a", "b"], 2);
    assert_eq!(sweep.points().count(), 8);
}
