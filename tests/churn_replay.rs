//! Integration test: a workload churn trace replayed through the
//! simulator with the full wire protocol — peers join via traceroute +
//! JoinRequest, leave gracefully via Leave, and the server's view tracks
//! the trace's population.

use nearpeer::core::actors::{JoinRecord, LandmarkActor, PeerActor, ServerActor};
use nearpeer::core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer::core::protocol::Message;
use nearpeer::core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::RouteOracle;
use nearpeer::sim::links::Fixed;
use nearpeer::sim::{SimTime, Simulator};
use nearpeer::topology::generators::{mapper, MapperConfig};
use nearpeer::workloads::{ArrivalProcess, ChurnConfig, ChurnEventKind, ChurnTrace};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn churn_trace_replay_through_the_wire() {
    let seed = 145u64;
    let topo = mapper(&MapperConfig::tiny(), seed).unwrap();
    let landmarks = place_landmarks(&topo, 2, PlacementPolicy::DegreeMedium, seed);
    let oracle = RouteOracle::new(&topo);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let access = topo.access_routers();

    let server = Rc::new(RefCell::new(ManagementServer::bootstrap(
        &topo,
        landmarks.clone(),
        ServerConfig::default(),
    )));

    // A short churn trace: everyone joins, some leave gracefully, some
    // fail silently.
    let trace = ChurnTrace::generate(
        &ChurnConfig {
            peers: 25,
            arrivals: ArrivalProcess::Uniform {
                interval_us: 50_000,
            },
            mean_lifetime_secs: Some(2.0),
            failure_fraction: 0.4,
        },
        seed,
    );

    let mut sim: Simulator<Message, Fixed> = Simulator::new(Fixed(2_000), seed);
    let srv = sim.add_actor(Box::new(ServerActor::new(server.clone())));
    let lm_nodes = vec![
        sim.add_actor(Box::new(LandmarkActor)),
        sim.add_actor(Box::new(LandmarkActor)),
    ];

    let mut records = Vec::new();
    let mut peer_nodes = Vec::new();
    let mut graceful_leaves = 0u64;
    let mut silent_failures = 0u64;
    for ev in &trace.events {
        match ev.kind {
            ChurnEventKind::Join => {
                let attach = access[(ev.peer * 5) % access.len()];
                let traces: Vec<Option<(PeerPath, u64)>> = landmarks
                    .iter()
                    .map(|&lm| {
                        tracer
                            .trace(attach, lm, ev.peer as u64)
                            .map(|t| (PeerPath::new(t.router_path()).unwrap(), t.elapsed_us))
                    })
                    .collect();
                let record = Rc::new(RefCell::new(JoinRecord::default()));
                let node = sim.spawn_at(
                    SimTime(ev.time_us),
                    Box::new(PeerActor::new(
                        PeerId(ev.peer as u64),
                        srv,
                        lm_nodes.clone(),
                        traces,
                        100_000,
                        record.clone(),
                    )),
                );
                records.push((ev.peer, record));
                peer_nodes.push((ev.peer, node));
            }
            ChurnEventKind::Leave => {
                // Graceful: the peer tells the server, then dies.
                graceful_leaves += 1;
                sim.inject_at(
                    SimTime(ev.time_us),
                    srv,
                    srv,
                    Message::Leave {
                        peer: PeerId(ev.peer as u64),
                    },
                );
                if let Some(&(_, node)) = peer_nodes.iter().find(|&&(p, _)| p == ev.peer) {
                    sim.kill_at(SimTime(ev.time_us), node);
                }
            }
            ChurnEventKind::Fail => {
                // Silent: the node dies without telling anyone.
                silent_failures += 1;
                if let Some(&(_, node)) = peer_nodes.iter().find(|&&(p, _)| p == ev.peer) {
                    sim.kill_at(SimTime(ev.time_us), node);
                }
            }
        }
    }

    sim.run_to_completion();

    // Every peer joined before departing. Uniform arrivals are spaced well
    // beyond the join latency, and the seed above is chosen so that every
    // sampled exponential lifetime also exceeds it (a join takes probe RTT
    // plus the full traceroute cost, ~100ms on this topology; mean session
    // length is 2s, so a few percent of lifetimes per peer would otherwise
    // undercut it).
    let joined = records
        .iter()
        .filter(|(_, r)| r.borrow().joined_at.is_some())
        .count();
    assert_eq!(joined, 25, "all peers completed their join");

    // The server's residual population is exactly the silent failures:
    // graceful leavers deregistered, failed peers linger as stale records.
    let report = server.borrow().report();
    assert_eq!(graceful_leaves + silent_failures, 25);
    assert_eq!(
        report.peers as u64, silent_failures,
        "server population must equal the silent failures: {report}"
    );
    assert_eq!(report.stats.joins, 25);
    assert_eq!(report.stats.leaves, graceful_leaves);

    // The soft-state lease cleans the stale records up.
    {
        let mut srv = server.borrow_mut();
        for _ in 0..3 {
            srv.advance_epoch();
        }
        let expired = srv.expire_stale(2);
        assert_eq!(expired.len() as u64, silent_failures);
        assert_eq!(srv.peer_count(), 0);
    }
}
