//! Integration test: a workload churn trace replayed through the
//! simulator with the full wire protocol — peers join via traceroute +
//! JoinRequest, leave gracefully via Leave, and the server's view tracks
//! the trace's population.

use nearpeer::core::actors::{JoinRecord, LandmarkActor, PeerActor, ServerActor};
use nearpeer::core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer::core::protocol::Message;
use nearpeer::core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer::probe::{TraceConfig, Tracer};
use nearpeer::routing::RouteOracle;
use nearpeer::sim::links::Fixed;
use nearpeer::sim::{SimTime, Simulator};
use nearpeer::topology::generators::{mapper, MapperConfig};
use nearpeer::workloads::{ArrivalProcess, ChurnConfig, ChurnEventKind, ChurnTrace};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn churn_trace_replay_through_the_wire() {
    let seed = 145u64;
    let topo = mapper(&MapperConfig::tiny(), seed).unwrap();
    let landmarks = place_landmarks(&topo, 2, PlacementPolicy::DegreeMedium, seed);
    let oracle = RouteOracle::new(&topo);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let access = topo.access_routers();

    let server = Rc::new(RefCell::new(ManagementServer::bootstrap(
        &topo,
        landmarks.clone(),
        ServerConfig::default(),
    )));

    // A short churn trace: everyone joins, some leave gracefully, some
    // fail silently.
    let trace = ChurnTrace::generate(
        &ChurnConfig {
            peers: 25,
            arrivals: ArrivalProcess::Uniform {
                interval_us: 50_000,
            },
            mean_lifetime_secs: Some(2.0),
            failure_fraction: 0.4,
        },
        seed,
    );

    let mut sim: Simulator<Message, Fixed> = Simulator::new(Fixed(2_000), seed);
    let srv = sim.add_actor(Box::new(ServerActor::new(server.clone())));
    let lm_nodes = vec![
        sim.add_actor(Box::new(LandmarkActor)),
        sim.add_actor(Box::new(LandmarkActor)),
    ];

    let mut records = Vec::new();
    let mut peer_nodes = Vec::new();
    let mut graceful_leaves = 0u64;
    let mut silent_failures = 0u64;
    for ev in &trace.events {
        match ev.kind {
            ChurnEventKind::Join => {
                let attach = access[(ev.peer * 5) % access.len()];
                let traces: Vec<Option<(PeerPath, u64)>> = landmarks
                    .iter()
                    .map(|&lm| {
                        tracer
                            .trace(attach, lm, ev.peer as u64)
                            .map(|t| (PeerPath::new(t.router_path()).unwrap(), t.elapsed_us))
                    })
                    .collect();
                let record = Rc::new(RefCell::new(JoinRecord::default()));
                let node = sim.spawn_at(
                    SimTime(ev.time_us),
                    Box::new(PeerActor::new(
                        PeerId(ev.peer as u64),
                        srv,
                        lm_nodes.clone(),
                        traces,
                        100_000,
                        record.clone(),
                    )),
                );
                records.push((ev.peer, record));
                peer_nodes.push((ev.peer, node));
            }
            ChurnEventKind::Leave => {
                // Graceful: the peer tells the server, then dies.
                graceful_leaves += 1;
                sim.inject_at(
                    SimTime(ev.time_us),
                    srv,
                    srv,
                    Message::Leave {
                        peer: PeerId(ev.peer as u64),
                    },
                );
                if let Some(&(_, node)) = peer_nodes.iter().find(|&&(p, _)| p == ev.peer) {
                    sim.kill_at(SimTime(ev.time_us), node);
                }
            }
            ChurnEventKind::Fail => {
                // Silent: the node dies without telling anyone.
                silent_failures += 1;
                if let Some(&(_, node)) = peer_nodes.iter().find(|&&(p, _)| p == ev.peer) {
                    sim.kill_at(SimTime(ev.time_us), node);
                }
            }
        }
    }

    sim.run_to_completion();

    // Every peer joined before departing. Uniform arrivals are spaced well
    // beyond the join latency, and the seed above is chosen so that every
    // sampled exponential lifetime also exceeds it (a join takes probe RTT
    // plus the full traceroute cost, ~100ms on this topology; mean session
    // length is 2s, so a few percent of lifetimes per peer would otherwise
    // undercut it).
    let joined = records
        .iter()
        .filter(|(_, r)| r.borrow().joined_at.is_some())
        .count();
    assert_eq!(joined, 25, "all peers completed their join");

    // The server's residual population is exactly the silent failures:
    // graceful leavers deregistered, failed peers linger as stale records.
    let report = server.borrow().report();
    assert_eq!(graceful_leaves + silent_failures, 25);
    assert_eq!(
        report.peers as u64, silent_failures,
        "server population must equal the silent failures: {report}"
    );
    assert_eq!(report.stats.joins, 25);
    assert_eq!(report.stats.leaves, graceful_leaves);

    // The soft-state lease cleans the stale records up.
    {
        let mut srv = server.borrow_mut();
        for _ in 0..3 {
            srv.advance_epoch();
        }
        let expired = srv.expire_stale(2);
        assert_eq!(expired.len() as u64, silent_failures);
        assert_eq!(srv.peer_count(), 0);
    }
}

// --- Lease-expiry edge regressions (the `last_seen` bucketing off-by-one
// family): epoch 0 must be a universal no-op, and a lease renewed in the
// same epoch it was opened must live exactly as long as an unrenewed one —
// the duplicate heartbeat must neither expire it early nor double-report
// it. Pinned on both the legacy `expire_stale` entry point and the
// epoch-bucketed `expire_stale_batch` sweep behind it.

use nearpeer::core::LandmarkId;
use nearpeer::topology::RouterId;

fn lease_server() -> ManagementServer {
    ManagementServer::new(
        vec![RouterId(0), RouterId(100)],
        vec![vec![0, 5], vec![5, 0]],
        ServerConfig::default(),
    )
}

fn lease_path(ids: &[u32]) -> PeerPath {
    PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
}

#[test]
fn expiry_at_epoch_zero_is_a_noop_for_any_max_age() {
    let mut srv = lease_server();
    srv.register(PeerId(1), lease_path(&[4, 2, 1, 0])).unwrap();
    srv.register(PeerId(2), lease_path(&[110, 105, 100]))
        .unwrap();
    assert_eq!(srv.epoch(), 0);
    for max_age in [0u64, 1, 2, u64::MAX] {
        assert!(
            srv.expire_stale(max_age).is_empty(),
            "epoch 0 expiry with max_age {max_age} must expire nobody"
        );
        assert!(srv.expire_stale_batch(max_age).is_empty());
    }
    assert_eq!(srv.peer_count(), 2);
}

#[test]
fn lease_renewed_in_its_opening_epoch_expires_on_schedule() {
    let mut srv = lease_server();
    srv.register(PeerId(1), lease_path(&[4, 2, 1, 0])).unwrap();
    srv.register(PeerId(2), lease_path(&[5, 2, 1, 0])).unwrap();
    // Peer 1 heartbeats in the very epoch its lease was opened — the
    // same-epoch renewal must be a no-op, not a second bucket entry that
    // an early sweep trips over or a later sweep reports twice.
    srv.heartbeat(PeerId(1)).unwrap();
    srv.heartbeat(PeerId(1)).unwrap();
    let max_age = 3u64;
    // Ages 1..=max_age: both leases are inside the window.
    for _ in 0..max_age {
        srv.advance_epoch();
        assert!(
            srv.expire_stale(max_age).is_empty(),
            "epoch {}: lease age <= max_age must survive",
            srv.epoch()
        );
    }
    // One epoch past the window both expire together — the renewed lease
    // neither earlier nor later than the untouched one, and exactly once.
    srv.advance_epoch();
    assert_eq!(srv.expire_stale(max_age), vec![PeerId(1), PeerId(2)]);
    assert!(srv.expire_stale(max_age).is_empty(), "no double expiry");
    assert_eq!(srv.peer_count(), 0);
}

#[test]
fn renewal_in_the_expiry_epoch_survives_the_sweep() {
    let mut srv = lease_server();
    srv.register(PeerId(1), lease_path(&[4, 2, 1, 0])).unwrap();
    for _ in 0..4 {
        srv.advance_epoch();
    }
    // The heartbeat lands in the same epoch the sweep runs: the renewed
    // lease must survive even though its *original* bucket note sits
    // below the cutoff.
    srv.heartbeat(PeerId(1)).unwrap();
    assert!(srv.expire_stale_batch(2).is_empty());
    assert_eq!(srv.peer_count(), 1);
    // And it still expires once the renewed epoch itself lapses.
    for _ in 0..3 {
        srv.advance_epoch();
    }
    assert_eq!(srv.expire_stale_batch(2), vec![PeerId(1)]);
}

#[test]
fn expired_slot_reuse_does_not_resurrect_the_departed_peer() {
    let mut srv = lease_server();
    srv.register(PeerId(7), lease_path(&[4, 2, 1, 0])).unwrap();
    for _ in 0..5 {
        srv.advance_epoch();
    }
    assert_eq!(srv.expire_stale(2), vec![PeerId(7)]);
    // A different peer reuses the freed lease slot; the departed id must
    // stay gone and the newcomer must be fully queryable.
    srv.register(PeerId(8), lease_path(&[4, 2, 1, 0])).unwrap();
    assert_eq!(srv.landmark_of(PeerId(7)), None);
    assert!(srv.path_of(PeerId(7)).is_none());
    assert_eq!(srv.landmark_of(PeerId(8)), Some(LandmarkId(0)));
    // The returning peer 7 is a fresh join, not a renewal of the dead
    // lease: its lease starts at the *current* epoch.
    srv.register(PeerId(7), lease_path(&[5, 2, 1, 0])).unwrap();
    let shard = &srv.shards()[0];
    assert_eq!(shard.last_seen(PeerId(7)), Some(srv.epoch()));
}
