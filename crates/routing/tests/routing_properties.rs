//! Property tests for the routing layer: shortest-path trees must produce
//! valid, truly shortest routes on arbitrary connected topologies.

use nearpeer_routing::{
    bfs_distances, hop_distance, multi_source_bfs, shortest_path_tree, RouteOracle, SptMetric,
};
use nearpeer_topology::generators::{mapper, waxman, MapperConfig, WaxmanConfig};
use nearpeer_topology::{RouterId, Topology};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (5usize..60, 0u64..500, prop::bool::ANY).prop_map(|(n, seed, geometric)| {
        if geometric {
            waxman(
                &WaxmanConfig {
                    n,
                    alpha: 0.3,
                    beta: 0.3,
                },
                seed,
            )
            .unwrap()
        } else {
            mapper(&MapperConfig::with_access(n.max(5), n), seed).unwrap()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn routes_are_valid_shortest_paths(topo in arb_topology(), pick in any::<u64>()) {
        let n = topo.n_routers() as u64;
        let src = RouterId((pick % n) as u32);
        let dst = RouterId(((pick / n) % n) as u32);
        let oracle = RouteOracle::new(&topo);
        let route = oracle.route(src, dst).expect("generators are connected");
        // Endpoints correct.
        prop_assert_eq!(route[0], src);
        prop_assert_eq!(*route.last().unwrap(), dst);
        // Consecutive routers are linked; no router repeats.
        for w in route.windows(2) {
            prop_assert!(topo.has_link(w[0], w[1]));
        }
        let mut dedup = route.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), route.len(), "route loops");
        // Length equals the true hop distance.
        let d = hop_distance(&topo, src, dst).unwrap();
        prop_assert_eq!(route.len() as u32 - 1, d);
    }

    #[test]
    fn bfs_and_dijkstra_agree_on_reachability(topo in arb_topology(), pick in any::<u32>()) {
        let src = RouterId(pick % topo.n_routers() as u32);
        let hops_tree = shortest_path_tree(&topo, src, SptMetric::Hops);
        let lat_tree = shortest_path_tree(&topo, src, SptMetric::Latency);
        for r in topo.routers() {
            prop_assert_eq!(hops_tree.reaches(r), lat_tree.reaches(r));
            if hops_tree.reaches(r) {
                // Latency-optimal paths are never faster than the latency
                // accumulated along them and never beat the direct metric.
                let bfs_lat = hops_tree.latency_to_root_us(r).unwrap();
                let dij_lat = lat_tree.latency_to_root_us(r).unwrap();
                prop_assert!(dij_lat <= bfs_lat, "{}: dijkstra {} > bfs {}", r, dij_lat, bfs_lat);
                // And hop-optimal paths are never longer than latency-optimal ones.
                let bfs_hops = hops_tree.hops_to_root(r).unwrap();
                let dij_hops = lat_tree.hops_to_root(r).unwrap();
                prop_assert!(bfs_hops <= dij_hops);
            }
        }
    }

    #[test]
    fn triangle_inequality_of_hop_metric(topo in arb_topology(), pick in any::<u64>()) {
        let n = topo.n_routers() as u64;
        let a = RouterId((pick % n) as u32);
        let b = RouterId(((pick / n) % n) as u32);
        let c = RouterId(((pick / (n * n)) % n) as u32);
        let dab = hop_distance(&topo, a, b).unwrap();
        let dbc = hop_distance(&topo, b, c).unwrap();
        let dac = hop_distance(&topo, a, c).unwrap();
        prop_assert!(dac <= dab + dbc);
        // Symmetry.
        prop_assert_eq!(hop_distance(&topo, b, a).unwrap(), dab);
    }

    #[test]
    fn multi_source_matches_min_of_single_sources(topo in arb_topology(), s in any::<u32>()) {
        let n = topo.n_routers() as u32;
        let s1 = RouterId(s % n);
        let s2 = RouterId((s / 2) % n);
        let merged = multi_source_bfs(&topo, &[s1, s2]);
        let d1 = bfs_distances(&topo, s1);
        let d2 = bfs_distances(&topo, s2);
        for r in topo.routers() {
            let want = d1[r.index()].min(d2[r.index()]);
            prop_assert_eq!(merged[r.index()].0, want);
        }
    }

    #[test]
    fn branch_point_lies_on_both_routes(topo in arb_topology(), pick in any::<u64>()) {
        let n = topo.n_routers() as u64;
        let a = RouterId((pick % n) as u32);
        let b = RouterId(((pick / n) % n) as u32);
        let dst = RouterId(((pick / (n * n)) % n) as u32);
        let oracle = RouteOracle::new(&topo);
        let meet = oracle.branch_point(a, b, dst).unwrap();
        let ra = oracle.route(a, dst).unwrap();
        let rb = oracle.route(b, dst).unwrap();
        prop_assert!(ra.contains(&meet));
        prop_assert!(rb.contains(&meet));
        // Beyond the branch point, the two routes coincide (destination
        // trees share suffixes).
        let ia = ra.iter().position(|&r| r == meet).unwrap();
        let ib = rb.iter().position(|&r| r == meet).unwrap();
        prop_assert_eq!(&ra[ia..], &rb[ib..]);
    }
}
