//! Property tests for the routing layer: shortest-path trees must produce
//! valid, truly shortest routes on arbitrary connected topologies.

use nearpeer_routing::{
    bfs_distances, hop_distance, multi_source_bfs, shortest_path_tree,
    shortest_path_tree_with_scratch, RouteOracle, SptMetric, SptScratch,
};
use nearpeer_topology::generators::{mapper, waxman, MapperConfig, WaxmanConfig};
use nearpeer_topology::{RouterId, Topology, TopologyBuilder};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (5usize..60, 0u64..500, prop::bool::ANY).prop_map(|(n, seed, geometric)| {
        if geometric {
            waxman(
                &WaxmanConfig {
                    n,
                    alpha: 0.3,
                    beta: 0.3,
                },
                seed,
            )
            .unwrap()
        } else {
            mapper(&MapperConfig::with_access(n.max(5), n), seed).unwrap()
        }
    })
}

/// A uniformly random tree with distinct link latencies. Tree paths are
/// *unique*, so there are no shortest-path ties: the hop-shortest route is
/// the only route, and per-hop-tree RTTs must coincide exactly with the
/// destination tree's latency prefixes.
fn arb_tree_topology() -> impl Strategy<Value = Topology> {
    (4usize..50, 0u64..500).prop_map(|(n, seed)| {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = TopologyBuilder::with_routers(n);
        for i in 1..n {
            let parent = (next() % i as u64) as u32;
            // Distinct latencies (units of 10 + unique offset) keep even
            // latency-metric trees tie-free.
            let latency = 10_000 + 977 * i as u32 + (next() % 997) as u32;
            b.link(RouterId(i as u32), RouterId(parent), latency)
                .expect("parent < i: no self-loops or duplicates");
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn routes_are_valid_shortest_paths(topo in arb_topology(), pick in any::<u64>()) {
        let n = topo.n_routers() as u64;
        let src = RouterId((pick % n) as u32);
        let dst = RouterId(((pick / n) % n) as u32);
        let oracle = RouteOracle::new(&topo);
        let route = oracle.route(src, dst).expect("generators are connected");
        // Endpoints correct.
        prop_assert_eq!(route[0], src);
        prop_assert_eq!(*route.last().unwrap(), dst);
        // Consecutive routers are linked; no router repeats.
        for w in route.windows(2) {
            prop_assert!(topo.has_link(w[0], w[1]));
        }
        let mut dedup = route.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), route.len(), "route loops");
        // Length equals the true hop distance.
        let d = hop_distance(&topo, src, dst).unwrap();
        prop_assert_eq!(route.len() as u32 - 1, d);
    }

    #[test]
    fn bfs_and_dijkstra_agree_on_reachability(topo in arb_topology(), pick in any::<u32>()) {
        let src = RouterId(pick % topo.n_routers() as u32);
        let hops_tree = shortest_path_tree(&topo, src, SptMetric::Hops);
        let lat_tree = shortest_path_tree(&topo, src, SptMetric::Latency);
        for r in topo.routers() {
            prop_assert_eq!(hops_tree.reaches(r), lat_tree.reaches(r));
            if hops_tree.reaches(r) {
                // Latency-optimal paths are never faster than the latency
                // accumulated along them and never beat the direct metric.
                let bfs_lat = hops_tree.latency_to_root_us(r).unwrap();
                let dij_lat = lat_tree.latency_to_root_us(r).unwrap();
                prop_assert!(dij_lat <= bfs_lat, "{}: dijkstra {} > bfs {}", r, dij_lat, bfs_lat);
                // And hop-optimal paths are never longer than latency-optimal ones.
                let bfs_hops = hops_tree.hops_to_root(r).unwrap();
                let dij_hops = lat_tree.hops_to_root(r).unwrap();
                prop_assert!(bfs_hops <= dij_hops);
            }
        }
    }

    #[test]
    fn triangle_inequality_of_hop_metric(topo in arb_topology(), pick in any::<u64>()) {
        let n = topo.n_routers() as u64;
        let a = RouterId((pick % n) as u32);
        let b = RouterId(((pick / n) % n) as u32);
        let c = RouterId(((pick / (n * n)) % n) as u32);
        let dab = hop_distance(&topo, a, b).unwrap();
        let dbc = hop_distance(&topo, b, c).unwrap();
        let dac = hop_distance(&topo, a, c).unwrap();
        prop_assert!(dac <= dab + dbc);
        // Symmetry.
        prop_assert_eq!(hop_distance(&topo, b, a).unwrap(), dab);
    }

    #[test]
    fn multi_source_matches_min_of_single_sources(topo in arb_topology(), s in any::<u32>()) {
        let n = topo.n_routers() as u32;
        let s1 = RouterId(s % n);
        let s2 = RouterId((s / 2) % n);
        let merged = multi_source_bfs(&topo, &[s1, s2]);
        let d1 = bfs_distances(&topo, s1);
        let d2 = bfs_distances(&topo, s2);
        for r in topo.routers() {
            let want = d1[r.index()].min(d2[r.index()]);
            prop_assert_eq!(merged[r.index()].0, want);
        }
    }

    #[test]
    fn annotated_prefixes_are_monotone_and_anchor_to_rtt(
        topo in arb_topology(),
        pick in any::<u64>(),
    ) {
        let n = topo.n_routers() as u64;
        let src = RouterId((pick % n) as u32);
        let dst = RouterId(((pick / n) % n) as u32);
        let oracle = RouteOracle::new(&topo);
        let annotated = oracle.route_annotated(src, dst).expect("generators are connected");
        let plain = oracle.route(src, dst).unwrap();
        // Same routers, hop for hop, with the hop index as depth.
        prop_assert_eq!(annotated.len(), plain.len());
        for (i, (hop, &router)) in annotated.iter().zip(&plain).enumerate() {
            prop_assert_eq!(hop.router, router);
            prop_assert_eq!(hop.depth as usize, i);
        }
        // Prefixes start at zero and never decrease along the route.
        prop_assert_eq!(annotated[0].prefix_latency_us, 0);
        for w in annotated.windows(2) {
            prop_assert!(
                w[0].prefix_latency_us <= w[1].prefix_latency_us,
                "prefix decreased: {:?} -> {:?}", w[0], w[1]
            );
            // Each step adds exactly the traversed link's latency.
            let link = topo.link_latency_us(w[0].router, w[1].router).unwrap() as u64;
            prop_assert_eq!(w[1].prefix_latency_us - w[0].prefix_latency_us, link);
        }
        // At the destination the doubled prefix IS the oracle RTT.
        prop_assert_eq!(
            annotated.last().unwrap().prefix_latency_us * 2,
            oracle.rtt_us(src, dst).unwrap()
        );
    }

    #[test]
    fn annotated_prefixes_match_per_hop_trees_when_tie_free(
        topo in arb_tree_topology(),
        pick in any::<u64>(),
    ) {
        let n = topo.n_routers() as u64;
        let src = RouterId((pick % n) as u32);
        let dst = RouterId(((pick / n) % n) as u32);
        let oracle = RouteOracle::new(&topo);
        let annotated = oracle.route_annotated(src, dst).expect("trees are connected");
        // On a tree every path is unique, so the per-hop-tree RTT (what
        // `TraceConfig::exact_hop_rtts` prices from) must equal the doubled
        // destination-tree prefix at EVERY hop — the two trace modes agree
        // hop for hop exactly when shortest paths are tie-free.
        for hop in &annotated {
            prop_assert_eq!(
                hop.prefix_latency_us * 2,
                oracle.rtt_us(src, hop.router).unwrap(),
                "hop {} at depth {}", hop.router, hop.depth
            );
        }
    }

    #[test]
    fn scratch_and_fresh_builds_are_bit_identical(
        topo in arb_topology(),
        picks in any::<u32>(),
    ) {
        // One scratch reused across roots and metrics must reproduce the
        // fresh-scratch trees bit for bit.
        let n = topo.n_routers() as u32;
        let mut scratch = SptScratch::new();
        for k in 0..4u32 {
            let root = RouterId((picks.wrapping_mul(k + 1)) % n);
            for metric in [SptMetric::Hops, SptMetric::Latency] {
                let fresh = shortest_path_tree(&topo, root, metric);
                let reused = shortest_path_tree_with_scratch(&topo, root, metric, &mut scratch);
                prop_assert_eq!(&fresh, &reused, "root {} metric {:?}", root, metric);
            }
        }
    }

    #[test]
    fn branch_point_lies_on_both_routes(topo in arb_topology(), pick in any::<u64>()) {
        let n = topo.n_routers() as u64;
        let a = RouterId((pick % n) as u32);
        let b = RouterId(((pick / n) % n) as u32);
        let dst = RouterId(((pick / (n * n)) % n) as u32);
        let oracle = RouteOracle::new(&topo);
        let meet = oracle.branch_point(a, b, dst).unwrap();
        let ra = oracle.route(a, dst).unwrap();
        let rb = oracle.route(b, dst).unwrap();
        prop_assert!(ra.contains(&meet));
        prop_assert!(rb.contains(&meet));
        // Beyond the branch point, the two routes coincide (destination
        // trees share suffixes).
        let ia = ra.iter().position(|&r| r == meet).unwrap();
        let ib = rb.iter().position(|&r| r == meet).unwrap();
        prop_assert_eq!(&ra[ia..], &rb[ib..]);
    }
}
