//! Unweighted breadth-first searches.

use nearpeer_topology::{RouterId, Topology};
use std::collections::VecDeque;

/// Hop distances from `source` to every router; `u32::MAX` marks unreachable
/// routers.
pub fn bfs_distances(topo: &Topology, source: RouterId) -> Vec<u32> {
    bfs_distances_bounded(topo, source, u32::MAX)
}

/// Hop distances from `source`, exploring at most `max_hops` hops outward
/// (routers farther than that stay at `u32::MAX`). Used by the brute-force
/// `Dclosest` baseline to stop early.
pub fn bfs_distances_bounded(topo: &Topology, source: RouterId, max_hops: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; topo.n_routers()];
    dist[source.index()] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        if dv >= max_hops {
            continue;
        }
        for e in topo.neighbors(v) {
            if dist[e.to.index()] == u32::MAX {
                dist[e.to.index()] = dv + 1;
                queue.push_back(e.to);
            }
        }
    }
    dist
}

/// Hop distance between two routers; `None` if disconnected.
pub fn hop_distance(topo: &Topology, a: RouterId, b: RouterId) -> Option<u32> {
    // Early exit BFS from a.
    if a == b {
        return Some(0);
    }
    let mut dist = vec![u32::MAX; topo.n_routers()];
    dist[a.index()] = 0;
    let mut queue = VecDeque::from([a]);
    while let Some(v) = queue.pop_front() {
        for e in topo.neighbors(v) {
            if dist[e.to.index()] == u32::MAX {
                dist[e.to.index()] = dist[v.index()] + 1;
                if e.to == b {
                    return Some(dist[e.to.index()]);
                }
                queue.push_back(e.to);
            }
        }
    }
    None
}

/// Multi-source BFS: for every router, the hop distance to the *nearest*
/// source and that source's index in `sources`. Used to find each peer's
/// closest landmark. Unreachable routers get `(u32::MAX, usize::MAX)`.
///
/// Ties between sources resolve to the source appearing earliest in
/// `sources` (deterministic).
pub fn multi_source_bfs(topo: &Topology, sources: &[RouterId]) -> Vec<(u32, usize)> {
    let mut dist = vec![(u32::MAX, usize::MAX); topo.n_routers()];
    let mut queue = VecDeque::new();
    for (i, &s) in sources.iter().enumerate() {
        if dist[s.index()].0 == u32::MAX {
            dist[s.index()] = (0, i);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let (dv, sv) = dist[v.index()];
        for e in topo.neighbors(v) {
            if dist[e.to.index()].0 == u32::MAX {
                dist[e.to.index()] = (dv + 1, sv);
                queue.push_back(e.to);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::generators::regular;

    #[test]
    fn distances_on_a_line() {
        let t = regular::line(5);
        let d = bfs_distances(&t, RouterId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_stops_early() {
        let t = regular::line(6);
        let d = bfs_distances_bounded(&t, RouterId(0), 2);
        assert_eq!(d, vec![0, 1, 2, u32::MAX, u32::MAX, u32::MAX]);
    }

    #[test]
    fn hop_distance_basics() {
        let t = regular::ring(6);
        assert_eq!(hop_distance(&t, RouterId(0), RouterId(0)), Some(0));
        assert_eq!(hop_distance(&t, RouterId(0), RouterId(3)), Some(3));
        assert_eq!(hop_distance(&t, RouterId(0), RouterId(5)), Some(1));
    }

    #[test]
    fn hop_distance_disconnected() {
        let t = nearpeer_topology::TopologyBuilder::with_routers(3).build();
        assert_eq!(hop_distance(&t, RouterId(0), RouterId(2)), None);
    }

    #[test]
    fn multi_source_nearest_and_tiebreak() {
        let t = regular::line(7);
        let near = multi_source_bfs(&t, &[RouterId(0), RouterId(6)]);
        assert_eq!(near[1], (1, 0));
        assert_eq!(near[5], (1, 1));
        // Router 3 is equidistant (3 hops) from both; the earlier source
        // index wins.
        assert_eq!(near[3], (3, 0));
    }

    #[test]
    fn multi_source_empty_sources() {
        let t = regular::line(3);
        let near = multi_source_bfs(&t, &[]);
        assert!(near.iter().all(|&(d, _)| d == u32::MAX));
    }
}
