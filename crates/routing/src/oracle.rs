//! The route oracle: stable router-level routes and RTTs.

use crate::spt::{CsrGraph, RouteHop, ShortestPathTree, SptMetric, SptScratch};
use nearpeer_topology::{RouterId, Topology};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Number of stripes in the lazy tree cache. Concurrent tracers mostly miss
/// on *different* intermediate routers, so a handful of stripes is enough to
/// keep them off each other's write locks.
const LAZY_STRIPES: usize = 16;

/// Scratches kept warm for lazy/ad-hoc tree builds. Parallel eager builds
/// park their per-worker scratches here too, capped so a wide build does
/// not pin `threads` × three n-entry arrays forever.
const SCRATCH_POOL_CAP: usize = 8;

/// Tuning for a [`RouteOracle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleConfig {
    /// Hard cap on lazily memoised destination trees (the eager arena is
    /// exempt — its destinations were asked for by name). At the cap a
    /// second-chance (clock) sweep evicts a tree not consulted since the
    /// hand last passed, so hot destinations survive while one-off lookups
    /// recycle among themselves. Trees are pure functions of the topology:
    /// eviction can change rebuild *work*, never an answer. `0` means
    /// unbounded (the pre-cap behaviour).
    ///
    /// Sizing: each tree holds three n-router arrays (~16 bytes per
    /// router), so the default of 1024 caps the cache near 400 MB on a
    /// 24k-router map — roomy for ad-hoc `route()` callers, an order of
    /// magnitude below what an uncapped `exact_hop_rtts` trace run used to
    /// pin.
    pub max_lazy_trees: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            max_lazy_trees: 1024,
        }
    }
}

/// A point-in-time snapshot of one oracle's tree accounting
/// ([`RouteOracle::stats`]): how many shortest-path trees were built
/// (eager vs lazy), how often queries were answered from memory, and how
/// often builds reused a warm [`SptScratch`]. This is how "round 1 builds
/// O(landmarks) trees" stays a measured, CI-gated fact — `scale_smoke`
/// asserts `lazy_trees_built == 0` on the default trace path.
///
/// Counters are monotone over the oracle's lifetime. Tree/answer counters
/// are thread-count-independent for a fixed workload **shape** (what was
/// asked), except that concurrent first queries to the same destination
/// may each build the tree (first insert wins), and `scratch_reuses`
/// depends on how builds distribute over workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Trees built up front into the arena (one per requested destination).
    pub eager_trees_built: u64,
    /// Trees built on demand for destinations outside the arena.
    pub lazy_trees_built: u64,
    /// Queries answered by an arena tree (lock-free reads).
    pub arena_hits: u64,
    /// Queries answered by an already-cached lazy tree.
    pub lazy_hits: u64,
    /// Tree builds that reused a warm scratch instead of allocating fresh
    /// build buffers.
    pub scratch_reuses: u64,
    /// Lazy trees evicted by the [`OracleConfig::max_lazy_trees`] clock.
    pub lazy_evictions: u64,
}

#[derive(Debug, Default)]
struct StatCounters {
    eager_trees_built: AtomicU64,
    lazy_trees_built: AtomicU64,
    arena_hits: AtomicU64,
    lazy_hits: AtomicU64,
    scratch_reuses: AtomicU64,
    lazy_evictions: AtomicU64,
}

impl StatCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> OracleStats {
        OracleStats {
            eager_trees_built: self.eager_trees_built.load(Ordering::Relaxed),
            lazy_trees_built: self.lazy_trees_built.load(Ordering::Relaxed),
            arena_hits: self.arena_hits.load(Ordering::Relaxed),
            lazy_hits: self.lazy_hits.load(Ordering::Relaxed),
            scratch_reuses: self.scratch_reuses.load(Ordering::Relaxed),
            lazy_evictions: self.lazy_evictions.load(Ordering::Relaxed),
        }
    }
}

/// One cached lazy tree plus its clock reference bit (set on every hit
/// through a read lock, cleared as the eviction hand passes).
#[derive(Debug)]
struct LazyCell {
    dst: RouterId,
    tree: Arc<ShortestPathTree>,
    referenced: AtomicBool,
}

/// One stripe of the lazy cache: cells indexed by destination, plus the
/// second-chance hand. The same clock shape as the directory's adaptive
/// lease table — cells are born cold so one-off destinations are the next
/// eviction candidates while anything re-consulted survives a lap.
#[derive(Debug, Default)]
struct LazyStripe {
    index: HashMap<RouterId, usize>,
    cells: Vec<LazyCell>,
    hand: usize,
}

impl LazyStripe {
    fn get(&self, dst: RouterId) -> Option<Arc<ShortestPathTree>> {
        let &i = self.index.get(&dst)?;
        let cell = &self.cells[i];
        cell.referenced.store(true, Ordering::Relaxed);
        Some(Arc::clone(&cell.tree))
    }

    /// First insert wins: if `dst` raced in while the caller was building,
    /// the incumbent is returned and the fresh tree dropped. At `cap`
    /// cells the clock evicts; returns whether an eviction happened.
    fn insert_or_get(
        &mut self,
        dst: RouterId,
        tree: Arc<ShortestPathTree>,
        cap: usize,
    ) -> (Arc<ShortestPathTree>, bool) {
        if let Some(&i) = self.index.get(&dst) {
            let cell = &self.cells[i];
            cell.referenced.store(true, Ordering::Relaxed);
            return (Arc::clone(&cell.tree), false);
        }
        if cap == 0 || self.cells.len() < cap {
            self.index.insert(dst, self.cells.len());
            self.cells.push(LazyCell {
                dst,
                tree: Arc::clone(&tree),
                referenced: AtomicBool::new(false),
            });
            return (tree, false);
        }
        // At the cap: clear reference bits until a cold cell turns up,
        // replace it in place. Terminates within two laps.
        loop {
            let cell = &mut self.cells[self.hand];
            if cell.referenced.swap(false, Ordering::Relaxed) {
                self.hand = (self.hand + 1) % self.cells.len();
            } else {
                self.index.remove(&cell.dst);
                cell.dst = dst;
                cell.tree = Arc::clone(&tree);
                self.index.insert(dst, self.hand);
                self.hand = (self.hand + 1) % self.cells.len();
                return (tree, true);
            }
        }
    }

    fn clear(&mut self) {
        self.index.clear();
        self.cells.clear();
        self.hand = 0;
    }
}

/// Provides the route and RTT between any two routers of a topology,
/// memoising one shortest-path tree per *destination* (destination-based
/// routing, like the Internet's).
///
/// The oracle is the ground truth that the simulated traceroute walks hop by
/// hop, and the RTT source for the coordinate baselines. Routes are
/// deterministic: same topology, same routes, every run — regardless of how
/// many threads query it.
///
/// # Sharing
///
/// The oracle is `Send + Sync` and designed to be queried from many threads
/// at once (the swarm builder traces all of round 1 concurrently through
/// one oracle):
///
/// * an eager **arena** of trees for the destinations known up front — the
///   landmarks, of which there are only a few per swarm — built in parallel
///   by [`RouteOracle::with_destinations`] and read lock-free afterwards;
/// * a lock-striped lazy cache for every other destination, where trees are
///   computed outside the stripe lock and the first insert wins. Trees are
///   deterministic, so a lost race wastes a little work but can never
///   change an answer. The cache is hard-capped
///   ([`OracleConfig::max_lazy_trees`]) with second-chance eviction.
///
/// All trees are `Arc<ShortestPathTree>`, built through a CSR-packed
/// adjacency view with pooled [`SptScratch`] buffers, and accounted in
/// [`OracleStats`].
///
/// # One tree per trace
///
/// [`RouteOracle::route_annotated`] returns the route with a latency
/// prefix per hop, all read off the **destination** tree — the traceroute
/// simulation prices every TTL of a trace from that one tree instead of
/// resolving each hop's RTT through a tree rooted at the hop. On the swarm
/// build path the destinations are landmarks, so round 1 runs entirely out
/// of the arena: `lazy_trees_built` stays 0.
///
/// ```
/// use nearpeer_routing::RouteOracle;
/// use nearpeer_topology::{generators::regular, RouterId};
/// let topo = regular::line(4);
/// let oracle = RouteOracle::new(&topo);
/// let route = oracle.route(RouterId(0), RouterId(3)).unwrap();
/// assert_eq!(route, vec![RouterId(0), RouterId(1), RouterId(2), RouterId(3)]);
/// let annotated = oracle.route_annotated(RouterId(0), RouterId(3)).unwrap();
/// assert_eq!(annotated.len(), 4);
/// assert_eq!(annotated[2].depth, 2);
/// assert_eq!(annotated[2].prefix_latency_us * 2, oracle.rtt_us(RouterId(0), RouterId(2)).unwrap());
/// ```
pub struct RouteOracle<'t> {
    topo: &'t Topology,
    /// Flat adjacency packing, built once; every tree build sweeps this.
    csr: CsrGraph,
    config: OracleConfig,
    /// Immutable after construction; read without locking.
    arena: HashMap<RouterId, Arc<ShortestPathTree>>,
    /// Stripe `dst.0 % LAZY_STRIPES` owns destination `dst`.
    lazy: Vec<RwLock<LazyStripe>>,
    /// Warm build buffers, recycled across lazy builds.
    scratch_pool: Mutex<Vec<SptScratch>>,
    stats: StatCounters,
}

impl<'t> RouteOracle<'t> {
    /// Creates an oracle over a topology with an empty arena; every tree is
    /// built lazily on first use.
    pub fn new(topo: &'t Topology) -> Self {
        Self::with_destinations(topo, &[])
    }

    /// Creates an oracle and eagerly builds the trees for the given
    /// destinations — the swarm builders pass the landmark routers, so every
    /// route/RTT query towards a landmark is a lock-free arena read.
    ///
    /// The trees are independent of each other, so they are built on
    /// `available_parallelism` scoped threads when there is more than one
    /// core (and more than one destination); the arena itself is assembled
    /// deterministically afterwards. Use
    /// [`RouteOracle::with_destinations_threads`] to force a worker count.
    pub fn with_destinations(topo: &'t Topology, destinations: &[RouterId]) -> Self {
        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::with_destinations_threads(topo, destinations, auto)
    }

    /// [`RouteOracle::with_destinations`] with an explicit worker count for
    /// the arena precompute — so a caller that forces sequential tracing
    /// (e.g. a benchmark baseline) gets a genuinely sequential build too.
    pub fn with_destinations_threads(
        topo: &'t Topology,
        destinations: &[RouterId],
        threads: usize,
    ) -> Self {
        Self::with_config_threads(topo, destinations, OracleConfig::default(), threads)
    }

    /// [`RouteOracle::with_destinations`] with an explicit
    /// [`OracleConfig`].
    pub fn with_config(
        topo: &'t Topology,
        destinations: &[RouterId],
        config: OracleConfig,
    ) -> Self {
        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::with_config_threads(topo, destinations, config, auto)
    }

    /// The fully explicit constructor: destinations, config and worker
    /// count.
    pub fn with_config_threads(
        topo: &'t Topology,
        destinations: &[RouterId],
        config: OracleConfig,
        threads: usize,
    ) -> Self {
        let csr = CsrGraph::new(topo);
        let stats = StatCounters::default();
        let mut dsts = destinations.to_vec();
        dsts.sort_unstable();
        dsts.dedup();
        let threads = threads.clamp(1, dsts.len().max(1));
        let mut arena = HashMap::with_capacity(dsts.len());
        let mut scratches: Vec<SptScratch> = Vec::new();
        if threads <= 1 {
            let mut scratch = SptScratch::new();
            for &dst in &dsts {
                arena.insert(
                    dst,
                    Arc::new(csr.shortest_path_tree(dst, SptMetric::Hops, &mut scratch)),
                );
            }
            scratches.push(scratch);
        } else {
            type BuiltChunk = (Vec<(RouterId, Arc<ShortestPathTree>)>, SptScratch);
            let chunk = dsts.len().div_ceil(threads);
            let built: Vec<BuiltChunk> = {
                let csr = &csr;
                std::thread::scope(|s| {
                    let handles: Vec<_> = dsts
                        .chunks(chunk)
                        .map(|chunk| {
                            s.spawn(move || {
                                let mut scratch = SptScratch::new();
                                let trees = chunk
                                    .iter()
                                    .map(|&dst| {
                                        (
                                            dst,
                                            Arc::new(csr.shortest_path_tree(
                                                dst,
                                                SptMetric::Hops,
                                                &mut scratch,
                                            )),
                                        )
                                    })
                                    .collect();
                                (trees, scratch)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("SPT builders never panic"))
                        .collect()
                })
            };
            for (pairs, scratch) in built {
                arena.extend(pairs);
                scratches.push(scratch);
            }
        }
        stats
            .eager_trees_built
            .fetch_add(dsts.len() as u64, Ordering::Relaxed);
        // Every build after a worker's first rode that worker's warm
        // buffers.
        let reuses: u64 = scratches.iter().map(|s| s.builds().saturating_sub(1)).sum();
        stats.scratch_reuses.fetch_add(reuses, Ordering::Relaxed);
        scratches.truncate(SCRATCH_POOL_CAP);
        Self {
            topo,
            csr,
            config,
            arena,
            lazy: (0..LAZY_STRIPES)
                .map(|_| RwLock::new(LazyStripe::default()))
                .collect(),
            scratch_pool: Mutex::new(scratches),
            stats,
        }
    }

    /// The topology this oracle answers for.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The active configuration.
    pub fn config(&self) -> OracleConfig {
        self.config
    }

    /// A snapshot of the oracle's tree-accounting counters.
    pub fn stats(&self) -> OracleStats {
        self.stats.snapshot()
    }

    /// Builds one tree through the CSR view on a pooled scratch.
    fn build_tree(&self, dst: RouterId) -> ShortestPathTree {
        let scratch = self
            .scratch_pool
            .lock()
            .expect("scratch pool poisoned")
            .pop();
        let mut scratch = match scratch {
            Some(s) => {
                StatCounters::bump(&self.stats.scratch_reuses);
                s
            }
            None => SptScratch::new(),
        };
        let tree = self
            .csr
            .shortest_path_tree(dst, SptMetric::Hops, &mut scratch);
        let mut pool = self.scratch_pool.lock().expect("scratch pool poisoned");
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
        tree
    }

    /// The (cached) hop-metric tree rooted at `dst`.
    pub fn tree_to(&self, dst: RouterId) -> Arc<ShortestPathTree> {
        if let Some(tree) = self.arena.get(&dst) {
            StatCounters::bump(&self.stats.arena_hits);
            return Arc::clone(tree);
        }
        let stripe = &self.lazy[dst.0 as usize % LAZY_STRIPES];
        let cached = stripe.read().expect("oracle stripe poisoned").get(dst);
        if let Some(tree) = cached {
            StatCounters::bump(&self.stats.lazy_hits);
            return tree;
        }
        // Build outside the lock: trees are deterministic, so if another
        // thread races us here the first insert wins and both threads hand
        // out identical trees.
        let tree = Arc::new(self.build_tree(dst));
        StatCounters::bump(&self.stats.lazy_trees_built);
        let cap = self.per_stripe_cap();
        let (tree, evicted) = stripe
            .write()
            .expect("oracle stripe poisoned")
            .insert_or_get(dst, tree, cap);
        if evicted {
            StatCounters::bump(&self.stats.lazy_evictions);
        }
        tree
    }

    /// Lazy-cache cells each stripe may hold (`0` = unbounded).
    fn per_stripe_cap(&self) -> usize {
        if self.config.max_lazy_trees == 0 {
            0
        } else {
            self.config.max_lazy_trees.div_ceil(LAZY_STRIPES).max(1)
        }
    }

    /// Number of destination trees currently memoised (eager + lazy).
    pub fn cached_trees(&self) -> usize {
        self.arena.len()
            + self
                .lazy
                .iter()
                .map(|s| s.read().expect("oracle stripe poisoned").cells.len())
                .sum::<usize>()
    }

    /// Number of trees precomputed into the arena at construction.
    pub fn precomputed_trees(&self) -> usize {
        self.arena.len()
    }

    /// Drops every lazily memoised tree, keeping only the eager arena.
    ///
    /// The lazy cache is already capped ([`OracleConfig::max_lazy_trees`]),
    /// but callers that retain the oracle after a bulk workload (the swarm
    /// builder does) call this to shed even that; the trees are rebuilt on
    /// demand if asked again.
    pub fn discard_lazy_trees(&mut self) {
        for stripe in &self.lazy {
            stripe.write().expect("oracle stripe poisoned").clear();
        }
    }

    /// The full router route `src, ..., dst`; `None` if disconnected.
    pub fn route(&self, src: RouterId, dst: RouterId) -> Option<Vec<RouterId>> {
        self.tree_to(dst).path_to_root(src)
    }

    /// The route `src, ..., dst` with each hop carrying its one-way
    /// latency prefix from `src` and its hop index — everything a
    /// traceroute simulation needs to price all TTLs of a trace, read off
    /// the **destination tree alone**. `None` if disconnected.
    ///
    /// A hop's round-trip time under the route model is
    /// `2 × prefix_latency_us`. Where shortest paths are unique this
    /// equals [`RouteOracle::rtt_us`]`(src, hop)`; under equal-hop-count
    /// ties the per-hop tree rooted at the intermediate router may pick a
    /// different (equally shortest) path with a different latency — see
    /// `TraceConfig::exact_hop_rtts` in `nearpeer-probe` for the mode that
    /// preserves the per-hop-tree semantics.
    pub fn route_annotated(&self, src: RouterId, dst: RouterId) -> Option<Vec<RouteHop>> {
        self.tree_to(dst).annotated_path_to_root(src)
    }

    /// [`RouteOracle::route_annotated`] into a caller-owned buffer
    /// (cleared first); returns whether the two are connected. The
    /// allocation-free form for trace hot loops.
    pub fn route_annotated_into(
        &self,
        src: RouterId,
        dst: RouterId,
        out: &mut Vec<RouteHop>,
    ) -> bool {
        self.tree_to(dst).annotated_path_to_root_into(src, out)
    }

    /// Hop count of the route; `None` if disconnected.
    pub fn hops(&self, src: RouterId, dst: RouterId) -> Option<u32> {
        self.tree_to(dst).hops_to_root(src)
    }

    /// Round-trip time in microseconds along the (hop-shortest) route, i.e.
    /// twice the accumulated one-way link latency. `None` if disconnected.
    ///
    /// Note this is deliberately *not* the latency-optimal path: real
    /// Internet routes are not latency-shortest either, which is exactly the
    /// effect the coordinate baselines have to cope with.
    pub fn rtt_us(&self, src: RouterId, dst: RouterId) -> Option<u64> {
        self.tree_to(dst).latency_to_root_us(src).map(|l| l * 2)
    }

    /// The router where the routes `a → dst` and `b → dst` first meet — the
    /// branch point that the management server uses as the inferred
    /// rendezvous (`rc` in the paper's Figure 1). `None` if either route is
    /// missing.
    ///
    /// This is the lowest common ancestor of `a` and `b` in the destination
    /// tree, found by walking the two parent chains without allocating:
    /// step the deeper endpoint up until both sit at the same hop depth,
    /// then advance both in lockstep until they coincide.
    pub fn branch_point(&self, a: RouterId, b: RouterId, dst: RouterId) -> Option<RouterId> {
        let tree = self.tree_to(dst);
        let mut depth_a = tree.hops_to_root(a)?;
        let mut depth_b = tree.hops_to_root(b)?;
        let (mut a, mut b) = (a, b);
        while depth_a > depth_b {
            a = tree.parent(a)?;
            depth_a -= 1;
        }
        while depth_b > depth_a {
            b = tree.parent(b)?;
            depth_b -= 1;
        }
        while a != b {
            a = tree.parent(a)?;
            b = tree.parent(b)?;
        }
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::generators::{mapper, regular, MapperConfig};
    use nearpeer_topology::presets::figure1;

    #[test]
    fn oracle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RouteOracle<'static>>();
    }

    #[test]
    fn route_endpoints_and_caching() {
        let t = regular::grid(3, 3);
        let oracle = RouteOracle::new(&t);
        let route = oracle.route(RouterId(8), RouterId(0)).unwrap();
        assert_eq!(route.first(), Some(&RouterId(8)));
        assert_eq!(route.last(), Some(&RouterId(0)));
        assert_eq!(oracle.cached_trees(), 1);
        let _ = oracle.route(RouterId(7), RouterId(0));
        assert_eq!(oracle.cached_trees(), 1, "same destination reuses the tree");
        let _ = oracle.route(RouterId(7), RouterId(1));
        assert_eq!(oracle.cached_trees(), 2);
        let stats = oracle.stats();
        assert_eq!(stats.lazy_trees_built, 2);
        assert_eq!(stats.lazy_hits, 1);
        assert_eq!(stats.eager_trees_built, 0);
    }

    #[test]
    fn arena_answers_match_lazy_answers() {
        let t = mapper(&MapperConfig::tiny(), 9).unwrap();
        let dsts: Vec<RouterId> = t.routers().take(5).collect();
        let eager = RouteOracle::with_destinations(&t, &dsts);
        assert_eq!(eager.precomputed_trees(), 5);
        assert_eq!(eager.cached_trees(), 5);
        assert_eq!(eager.stats().eager_trees_built, 5);
        let lazy = RouteOracle::new(&t);
        assert_eq!(lazy.precomputed_trees(), 0);
        for &dst in &dsts {
            for src in t.routers() {
                assert_eq!(eager.route(src, dst), lazy.route(src, dst));
                assert_eq!(eager.rtt_us(src, dst), lazy.rtt_us(src, dst));
            }
        }
        // The arena absorbed every query; nothing leaked into the stripes.
        assert_eq!(eager.cached_trees(), 5);
        assert_eq!(eager.stats().lazy_trees_built, 0);
        assert!(eager.stats().arena_hits > 0);
    }

    #[test]
    fn with_destinations_dedups() {
        let t = regular::line(4);
        let oracle = RouteOracle::with_destinations(&t, &[RouterId(1), RouterId(1), RouterId(3)]);
        assert_eq!(oracle.precomputed_trees(), 2);
        assert_eq!(oracle.stats().eager_trees_built, 2);
    }

    #[test]
    fn forced_thread_counts_build_identical_arenas() {
        let t = mapper(&MapperConfig::tiny(), 7).unwrap();
        let dsts: Vec<RouterId> = t.routers().take(6).collect();
        let one = RouteOracle::with_destinations_threads(&t, &dsts, 1);
        assert_eq!(one.stats().scratch_reuses, 5, "one worker, six builds");
        for threads in [2, 4, 100] {
            let many = RouteOracle::with_destinations_threads(&t, &dsts, threads);
            assert_eq!(many.precomputed_trees(), one.precomputed_trees());
            for &dst in &dsts {
                assert_eq!(*many.tree_to(dst), *one.tree_to(dst), "{threads} threads");
            }
        }
    }

    #[test]
    fn discard_lazy_trees_keeps_arena_and_answers() {
        let t = regular::grid(3, 3);
        let mut oracle = RouteOracle::with_destinations(&t, &[RouterId(0)]);
        let lazy_route = oracle.route(RouterId(0), RouterId(8)).unwrap();
        assert_eq!(oracle.cached_trees(), 2);
        oracle.discard_lazy_trees();
        assert_eq!(oracle.cached_trees(), 1, "arena survives");
        assert_eq!(oracle.precomputed_trees(), 1);
        // Discarded trees rebuild on demand with identical answers.
        assert_eq!(oracle.route(RouterId(0), RouterId(8)).unwrap(), lazy_route);
        assert_eq!(oracle.stats().lazy_trees_built, 2, "rebuild counted");
    }

    #[test]
    fn concurrent_queries_agree_with_sequential() {
        let t = mapper(&MapperConfig::tiny(), 3).unwrap();
        let reference = RouteOracle::new(&t);
        let shared = RouteOracle::new(&t);
        let routers: Vec<RouterId> = t.routers().collect();
        std::thread::scope(|s| {
            for worker in 0..4usize {
                let shared = &shared;
                let routers = &routers;
                s.spawn(move || {
                    for (i, &dst) in routers.iter().enumerate() {
                        // Workers collide on every destination on purpose.
                        let src = routers[(i + worker) % routers.len()];
                        let _ = shared.route(src, dst);
                        let _ = shared.rtt_us(src, dst);
                    }
                });
            }
        });
        for &dst in routers.iter() {
            for &src in routers.iter() {
                assert_eq!(shared.route(src, dst), reference.route(src, dst));
            }
        }
        assert_eq!(shared.cached_trees(), reference.cached_trees());
    }

    #[test]
    fn rtt_doubles_one_way() {
        let t = regular::line(3); // links of 1000 us
        let oracle = RouteOracle::new(&t);
        assert_eq!(oracle.rtt_us(RouterId(0), RouterId(2)), Some(4_000));
        assert_eq!(oracle.rtt_us(RouterId(0), RouterId(0)), Some(0));
    }

    #[test]
    fn route_annotated_matches_route_and_rtt() {
        let t = mapper(&MapperConfig::tiny(), 4).unwrap();
        let oracle = RouteOracle::new(&t);
        let dst = RouterId(0);
        for src in t.routers().take(20) {
            let annotated = oracle.route_annotated(src, dst).unwrap();
            let plain = oracle.route(src, dst).unwrap();
            let routers: Vec<RouterId> = annotated.iter().map(|h| h.router).collect();
            assert_eq!(routers, plain, "{src}");
            for (i, hop) in annotated.iter().enumerate() {
                assert_eq!(hop.depth as usize, i);
            }
            // The final prefix doubles into exactly the end-to-end RTT.
            assert_eq!(
                annotated.last().unwrap().prefix_latency_us * 2,
                oracle.rtt_us(src, dst).unwrap()
            );
        }
    }

    #[test]
    fn route_annotated_disconnected_is_none() {
        let t = nearpeer_topology::TopologyBuilder::with_routers(2).build();
        let oracle = RouteOracle::new(&t);
        assert_eq!(oracle.route_annotated(RouterId(0), RouterId(1)), None);
        let mut buf = Vec::new();
        assert!(!oracle.route_annotated_into(RouterId(0), RouterId(1), &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn lazy_cache_respects_the_cap() {
        let t = regular::grid(5, 5); // 25 routers
        let cfg = OracleConfig { max_lazy_trees: 16 };
        let oracle = RouteOracle::with_config(&t, &[], cfg);
        for dst in t.routers() {
            let _ = oracle.route(RouterId(0), dst);
        }
        assert!(
            oracle.cached_trees() <= 16 + LAZY_STRIPES, // per-stripe rounding slack
            "cache grew to {}",
            oracle.cached_trees()
        );
        let stats = oracle.stats();
        assert_eq!(stats.lazy_trees_built, 25);
        assert!(stats.lazy_evictions > 0, "cap must have evicted");
        // Evicted destinations still answer — by rebuilding.
        let before = oracle.stats().lazy_trees_built;
        for dst in t.routers() {
            assert!(oracle.route(RouterId(0), dst).is_some());
        }
        assert!(oracle.stats().lazy_trees_built >= before);
    }

    #[test]
    fn second_chance_keeps_hot_destinations() {
        let t = regular::line(40);
        // One stripe cell at a time forces every insert to consider
        // eviction.
        let cfg = OracleConfig { max_lazy_trees: 32 };
        let oracle = RouteOracle::with_config(&t, &[], cfg);
        let hot = RouterId(0);
        let _ = oracle.route(RouterId(1), hot);
        let built_hot = oracle.stats().lazy_trees_built;
        assert_eq!(built_hot, 1);
        // Interleave one-off destinations with re-touches of the hot one.
        // Re-touching marks the cell referenced, so the clock passes over
        // it while the one-offs (born cold, never consulted again)
        // recycle among themselves.
        for dst in t.routers().skip(1) {
            let _ = oracle.route(RouterId(0), dst);
            let _ = oracle.route(RouterId(1), hot);
        }
        let stats = oracle.stats();
        // The hot destination was never rebuilt: every query after the
        // first was a cache hit.
        assert_eq!(
            stats.lazy_trees_built, 40,
            "one build per distinct destination, none for the hot re-touches"
        );
        assert!(stats.lazy_hits >= 39);
    }

    #[test]
    fn zero_cap_is_unbounded() {
        let t = regular::grid(5, 5);
        let cfg = OracleConfig { max_lazy_trees: 0 };
        let oracle = RouteOracle::with_config(&t, &[], cfg);
        for dst in t.routers() {
            let _ = oracle.route(RouterId(0), dst);
        }
        assert_eq!(oracle.cached_trees(), 25);
        assert_eq!(oracle.stats().lazy_evictions, 0);
    }

    #[test]
    fn branch_point_matches_figure1() {
        let fig = figure1();
        let oracle = RouteOracle::new(&fig.topology);
        let [p1, p2, p3, _] = fig.peers;
        let rc = fig.core[2];
        let rb = fig.core[1];
        let ra = fig.core[0];
        // p1 and p2 join at rc on the way to the landmark.
        assert_eq!(oracle.branch_point(p1, p2, fig.landmark), Some(rc));
        // p1 and p3 join in the core (ra): p1 goes rc→ra, p3 goes rb→ra.
        let bp13 = oracle.branch_point(p1, p3, fig.landmark).unwrap();
        assert!(bp13 == ra || bp13 == rb, "unexpected branch point {bp13}");
    }

    #[test]
    fn branch_point_of_same_router_is_itself() {
        let t = regular::line(4);
        let oracle = RouteOracle::new(&t);
        assert_eq!(
            oracle.branch_point(RouterId(0), RouterId(0), RouterId(3)),
            Some(RouterId(0))
        );
    }

    /// Reference implementation of the branch point: materialise both
    /// paths, mark one, scan the other (what `branch_point` did before the
    /// allocation-free lockstep walk).
    fn branch_point_reference(
        oracle: &RouteOracle<'_>,
        a: RouterId,
        b: RouterId,
        dst: RouterId,
    ) -> Option<RouterId> {
        let tree = oracle.tree_to(dst);
        let on_a: std::collections::HashSet<RouterId> = tree.path_to_root(a)?.into_iter().collect();
        tree.path_to_root(b)?.into_iter().find(|r| on_a.contains(r))
    }

    #[test]
    fn branch_point_matches_reference_everywhere() {
        for (name, t, stride) in [
            ("grid", regular::grid(4, 4), 1),
            ("mapper", mapper(&MapperConfig::tiny(), 11).unwrap(), 7),
        ] {
            let oracle = RouteOracle::new(&t);
            let routers: Vec<RouterId> = t.routers().step_by(stride).collect();
            let dsts: Vec<RouterId> = routers.iter().copied().step_by(3).collect();
            for &dst in &dsts {
                for &a in &routers {
                    for &b in &routers {
                        assert_eq!(
                            oracle.branch_point(a, b, dst),
                            branch_point_reference(&oracle, a, b, dst),
                            "{name}: branch_point({a}, {b}, {dst})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn disconnected_routes_are_none() {
        let t = nearpeer_topology::TopologyBuilder::with_routers(2).build();
        let oracle = RouteOracle::new(&t);
        assert_eq!(oracle.route(RouterId(0), RouterId(1)), None);
        assert_eq!(oracle.hops(RouterId(0), RouterId(1)), None);
        assert_eq!(oracle.rtt_us(RouterId(0), RouterId(1)), None);
        assert_eq!(
            oracle.branch_point(RouterId(0), RouterId(1), RouterId(1)),
            None
        );
    }

    #[test]
    fn routes_agree_with_hop_distance() {
        let t = regular::grid(4, 3);
        let oracle = RouteOracle::new(&t);
        for a in t.routers() {
            for b in t.routers() {
                let via_route = oracle.hops(a, b).unwrap();
                let direct = crate::hop_distance(&t, a, b).unwrap();
                assert_eq!(via_route, direct, "{a}->{b}");
            }
        }
    }
}
