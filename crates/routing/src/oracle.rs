//! The route oracle: stable router-level routes and RTTs.

use crate::spt::{shortest_path_tree, ShortestPathTree, SptMetric};
use nearpeer_topology::{RouterId, Topology};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Provides the route and RTT between any two routers of a topology,
/// memoising one shortest-path tree per *destination* (destination-based
/// routing, like the Internet's).
///
/// The oracle is the ground truth that the simulated traceroute walks hop by
/// hop, and the RTT source for the coordinate baselines. Routes are
/// deterministic: same topology, same routes, every run.
///
/// ```
/// use nearpeer_routing::RouteOracle;
/// use nearpeer_topology::{generators::regular, RouterId};
/// let topo = regular::line(4);
/// let oracle = RouteOracle::new(&topo);
/// let route = oracle.route(RouterId(0), RouterId(3)).unwrap();
/// assert_eq!(route, vec![RouterId(0), RouterId(1), RouterId(2), RouterId(3)]);
/// ```
pub struct RouteOracle<'t> {
    topo: &'t Topology,
    trees: RefCell<HashMap<RouterId, Rc<ShortestPathTree>>>,
}

impl<'t> RouteOracle<'t> {
    /// Creates an oracle over a topology.
    pub fn new(topo: &'t Topology) -> Self {
        Self {
            topo,
            trees: RefCell::new(HashMap::new()),
        }
    }

    /// The topology this oracle answers for.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The (cached) hop-metric tree rooted at `dst`.
    pub fn tree_to(&self, dst: RouterId) -> Rc<ShortestPathTree> {
        let mut trees = self.trees.borrow_mut();
        trees
            .entry(dst)
            .or_insert_with(|| Rc::new(shortest_path_tree(self.topo, dst, SptMetric::Hops)))
            .clone()
    }

    /// Number of destination trees currently memoised.
    pub fn cached_trees(&self) -> usize {
        self.trees.borrow().len()
    }

    /// The full router route `src, ..., dst`; `None` if disconnected.
    pub fn route(&self, src: RouterId, dst: RouterId) -> Option<Vec<RouterId>> {
        self.tree_to(dst).path_to_root(src)
    }

    /// Hop count of the route; `None` if disconnected.
    pub fn hops(&self, src: RouterId, dst: RouterId) -> Option<u32> {
        self.tree_to(dst).hops_to_root(src)
    }

    /// Round-trip time in microseconds along the (hop-shortest) route, i.e.
    /// twice the accumulated one-way link latency. `None` if disconnected.
    ///
    /// Note this is deliberately *not* the latency-optimal path: real
    /// Internet routes are not latency-shortest either, which is exactly the
    /// effect the coordinate baselines have to cope with.
    pub fn rtt_us(&self, src: RouterId, dst: RouterId) -> Option<u64> {
        self.tree_to(dst).latency_to_root_us(src).map(|l| l * 2)
    }

    /// The router where the routes `a → dst` and `b → dst` first meet — the
    /// branch point that the management server uses as the inferred
    /// rendezvous (`rc` in the paper's Figure 1). `None` if either route is
    /// missing.
    pub fn branch_point(&self, a: RouterId, b: RouterId, dst: RouterId) -> Option<RouterId> {
        let tree = self.tree_to(dst);
        if !tree.reaches(a) || !tree.reaches(b) {
            return None;
        }
        // Walk both paths from the leaves; mark a's path then walk b's.
        let path_a = tree.path_to_root(a)?;
        let on_a: std::collections::HashSet<RouterId> = path_a.into_iter().collect();
        let path_b = tree.path_to_root(b)?;
        path_b.into_iter().find(|r| on_a.contains(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::generators::regular;
    use nearpeer_topology::presets::figure1;

    #[test]
    fn route_endpoints_and_caching() {
        let t = regular::grid(3, 3);
        let oracle = RouteOracle::new(&t);
        let route = oracle.route(RouterId(8), RouterId(0)).unwrap();
        assert_eq!(route.first(), Some(&RouterId(8)));
        assert_eq!(route.last(), Some(&RouterId(0)));
        assert_eq!(oracle.cached_trees(), 1);
        let _ = oracle.route(RouterId(7), RouterId(0));
        assert_eq!(oracle.cached_trees(), 1, "same destination reuses the tree");
        let _ = oracle.route(RouterId(7), RouterId(1));
        assert_eq!(oracle.cached_trees(), 2);
    }

    #[test]
    fn rtt_doubles_one_way() {
        let t = regular::line(3); // links of 1000 us
        let oracle = RouteOracle::new(&t);
        assert_eq!(oracle.rtt_us(RouterId(0), RouterId(2)), Some(4_000));
        assert_eq!(oracle.rtt_us(RouterId(0), RouterId(0)), Some(0));
    }

    #[test]
    fn branch_point_matches_figure1() {
        let fig = figure1();
        let oracle = RouteOracle::new(&fig.topology);
        let [p1, p2, p3, _] = fig.peers;
        let rc = fig.core[2];
        let rb = fig.core[1];
        let ra = fig.core[0];
        // p1 and p2 join at rc on the way to the landmark.
        assert_eq!(oracle.branch_point(p1, p2, fig.landmark), Some(rc));
        // p1 and p3 join in the core (ra): p1 goes rc→ra, p3 goes rb→ra.
        let bp13 = oracle.branch_point(p1, p3, fig.landmark).unwrap();
        assert!(bp13 == ra || bp13 == rb, "unexpected branch point {bp13}");
    }

    #[test]
    fn branch_point_of_same_router_is_itself() {
        let t = regular::line(4);
        let oracle = RouteOracle::new(&t);
        assert_eq!(
            oracle.branch_point(RouterId(0), RouterId(0), RouterId(3)),
            Some(RouterId(0))
        );
    }

    #[test]
    fn disconnected_routes_are_none() {
        let t = nearpeer_topology::TopologyBuilder::with_routers(2).build();
        let oracle = RouteOracle::new(&t);
        assert_eq!(oracle.route(RouterId(0), RouterId(1)), None);
        assert_eq!(oracle.hops(RouterId(0), RouterId(1)), None);
        assert_eq!(oracle.rtt_us(RouterId(0), RouterId(1)), None);
        assert_eq!(
            oracle.branch_point(RouterId(0), RouterId(1), RouterId(1)),
            None
        );
    }

    #[test]
    fn routes_agree_with_hop_distance() {
        let t = regular::grid(4, 3);
        let oracle = RouteOracle::new(&t);
        for a in t.routers() {
            for b in t.routers() {
                let via_route = oracle.hops(a, b).unwrap();
                let direct = crate::hop_distance(&t, a, b).unwrap();
                assert_eq!(via_route, direct, "{a}->{b}");
            }
        }
    }
}
