//! The route oracle: stable router-level routes and RTTs.

use crate::spt::{shortest_path_tree, ShortestPathTree, SptMetric};
use nearpeer_topology::{RouterId, Topology};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Number of stripes in the lazy tree cache. Concurrent tracers mostly miss
/// on *different* intermediate routers, so a handful of stripes is enough to
/// keep them off each other's write locks.
const LAZY_STRIPES: usize = 16;

/// Provides the route and RTT between any two routers of a topology,
/// memoising one shortest-path tree per *destination* (destination-based
/// routing, like the Internet's).
///
/// The oracle is the ground truth that the simulated traceroute walks hop by
/// hop, and the RTT source for the coordinate baselines. Routes are
/// deterministic: same topology, same routes, every run — regardless of how
/// many threads query it.
///
/// # Sharing
///
/// The oracle is `Send + Sync` and designed to be queried from many threads
/// at once (the swarm builder traces all of round 1 concurrently through
/// one oracle):
///
/// * an eager **arena** of trees for the destinations known up front — the
///   landmarks, of which there are only a few per swarm — built in parallel
///   by [`RouteOracle::with_destinations`] and read lock-free afterwards;
/// * a lock-striped lazy cache for every other destination (the
///   intermediate routers whose RTTs the traceroute simulation asks for),
///   where trees are computed outside the stripe lock and the first insert
///   wins. Trees are deterministic, so a lost race wastes a little work but
///   can never change an answer.
///
/// All trees are shared as `Arc<ShortestPathTree>`.
///
/// ```
/// use nearpeer_routing::RouteOracle;
/// use nearpeer_topology::{generators::regular, RouterId};
/// let topo = regular::line(4);
/// let oracle = RouteOracle::new(&topo);
/// let route = oracle.route(RouterId(0), RouterId(3)).unwrap();
/// assert_eq!(route, vec![RouterId(0), RouterId(1), RouterId(2), RouterId(3)]);
/// ```
pub struct RouteOracle<'t> {
    topo: &'t Topology,
    /// Immutable after construction; read without locking.
    arena: HashMap<RouterId, Arc<ShortestPathTree>>,
    /// Stripe `dst.0 % LAZY_STRIPES` owns destination `dst`.
    lazy: Vec<RwLock<HashMap<RouterId, Arc<ShortestPathTree>>>>,
}

impl<'t> RouteOracle<'t> {
    /// Creates an oracle over a topology with an empty arena; every tree is
    /// built lazily on first use.
    pub fn new(topo: &'t Topology) -> Self {
        Self::with_destinations(topo, &[])
    }

    /// Creates an oracle and eagerly builds the trees for the given
    /// destinations — the swarm builders pass the landmark routers, so every
    /// route/RTT query towards a landmark is a lock-free arena read.
    ///
    /// The trees are independent of each other, so they are built on
    /// `available_parallelism` scoped threads when there is more than one
    /// core (and more than one destination); the arena itself is assembled
    /// deterministically afterwards. Use
    /// [`RouteOracle::with_destinations_threads`] to force a worker count.
    pub fn with_destinations(topo: &'t Topology, destinations: &[RouterId]) -> Self {
        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::with_destinations_threads(topo, destinations, auto)
    }

    /// [`RouteOracle::with_destinations`] with an explicit worker count for
    /// the arena precompute — so a caller that forces sequential tracing
    /// (e.g. a benchmark baseline) gets a genuinely sequential build too.
    pub fn with_destinations_threads(
        topo: &'t Topology,
        destinations: &[RouterId],
        threads: usize,
    ) -> Self {
        let mut dsts = destinations.to_vec();
        dsts.sort_unstable();
        dsts.dedup();
        let threads = threads.clamp(1, dsts.len().max(1));
        let mut arena = HashMap::with_capacity(dsts.len());
        if threads <= 1 {
            for &dst in &dsts {
                arena.insert(
                    dst,
                    Arc::new(shortest_path_tree(topo, dst, SptMetric::Hops)),
                );
            }
        } else {
            let chunk = dsts.len().div_ceil(threads);
            let built: Vec<Vec<(RouterId, Arc<ShortestPathTree>)>> = std::thread::scope(|s| {
                let handles: Vec<_> = dsts
                    .chunks(chunk)
                    .map(|chunk| {
                        s.spawn(move || {
                            chunk
                                .iter()
                                .map(|&dst| {
                                    (
                                        dst,
                                        Arc::new(shortest_path_tree(topo, dst, SptMetric::Hops)),
                                    )
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("SPT builders never panic"))
                    .collect()
            });
            for pairs in built {
                arena.extend(pairs);
            }
        }
        Self {
            topo,
            arena,
            lazy: (0..LAZY_STRIPES)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    /// The topology this oracle answers for.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The (cached) hop-metric tree rooted at `dst`.
    pub fn tree_to(&self, dst: RouterId) -> Arc<ShortestPathTree> {
        if let Some(tree) = self.arena.get(&dst) {
            return Arc::clone(tree);
        }
        let stripe = &self.lazy[dst.0 as usize % LAZY_STRIPES];
        if let Some(tree) = stripe.read().expect("oracle stripe poisoned").get(&dst) {
            return Arc::clone(tree);
        }
        // Build outside the lock: trees are deterministic, so if another
        // thread races us here the first insert wins and both threads hand
        // out identical trees.
        let tree = Arc::new(shortest_path_tree(self.topo, dst, SptMetric::Hops));
        Arc::clone(
            stripe
                .write()
                .expect("oracle stripe poisoned")
                .entry(dst)
                .or_insert(tree),
        )
    }

    /// Number of destination trees currently memoised (eager + lazy).
    pub fn cached_trees(&self) -> usize {
        self.arena.len()
            + self
                .lazy
                .iter()
                .map(|s| s.read().expect("oracle stripe poisoned").len())
                .sum::<usize>()
    }

    /// Number of trees precomputed into the arena at construction.
    pub fn precomputed_trees(&self) -> usize {
        self.arena.len()
    }

    /// Drops every lazily memoised tree, keeping only the eager arena.
    ///
    /// A 10k-peer trace run memoises one tree per distinct intermediate
    /// router — far more memory than the handful of landmark trees a
    /// long-lived oracle is usually kept around for. Callers that retain
    /// the oracle after a bulk workload (the swarm builder does) call this
    /// to shed that cache; the trees are rebuilt on demand if asked again.
    pub fn discard_lazy_trees(&mut self) {
        for stripe in &self.lazy {
            stripe.write().expect("oracle stripe poisoned").clear();
        }
    }

    /// The full router route `src, ..., dst`; `None` if disconnected.
    pub fn route(&self, src: RouterId, dst: RouterId) -> Option<Vec<RouterId>> {
        self.tree_to(dst).path_to_root(src)
    }

    /// Hop count of the route; `None` if disconnected.
    pub fn hops(&self, src: RouterId, dst: RouterId) -> Option<u32> {
        self.tree_to(dst).hops_to_root(src)
    }

    /// Round-trip time in microseconds along the (hop-shortest) route, i.e.
    /// twice the accumulated one-way link latency. `None` if disconnected.
    ///
    /// Note this is deliberately *not* the latency-optimal path: real
    /// Internet routes are not latency-shortest either, which is exactly the
    /// effect the coordinate baselines have to cope with.
    pub fn rtt_us(&self, src: RouterId, dst: RouterId) -> Option<u64> {
        self.tree_to(dst).latency_to_root_us(src).map(|l| l * 2)
    }

    /// The router where the routes `a → dst` and `b → dst` first meet — the
    /// branch point that the management server uses as the inferred
    /// rendezvous (`rc` in the paper's Figure 1). `None` if either route is
    /// missing.
    ///
    /// This is the lowest common ancestor of `a` and `b` in the destination
    /// tree, found by walking the two parent chains without allocating:
    /// step the deeper endpoint up until both sit at the same hop depth,
    /// then advance both in lockstep until they coincide.
    pub fn branch_point(&self, a: RouterId, b: RouterId, dst: RouterId) -> Option<RouterId> {
        let tree = self.tree_to(dst);
        let mut depth_a = tree.hops_to_root(a)?;
        let mut depth_b = tree.hops_to_root(b)?;
        let (mut a, mut b) = (a, b);
        while depth_a > depth_b {
            a = tree.parent(a)?;
            depth_a -= 1;
        }
        while depth_b > depth_a {
            b = tree.parent(b)?;
            depth_b -= 1;
        }
        while a != b {
            a = tree.parent(a)?;
            b = tree.parent(b)?;
        }
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::generators::{mapper, regular, MapperConfig};
    use nearpeer_topology::presets::figure1;

    #[test]
    fn oracle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RouteOracle<'static>>();
    }

    #[test]
    fn route_endpoints_and_caching() {
        let t = regular::grid(3, 3);
        let oracle = RouteOracle::new(&t);
        let route = oracle.route(RouterId(8), RouterId(0)).unwrap();
        assert_eq!(route.first(), Some(&RouterId(8)));
        assert_eq!(route.last(), Some(&RouterId(0)));
        assert_eq!(oracle.cached_trees(), 1);
        let _ = oracle.route(RouterId(7), RouterId(0));
        assert_eq!(oracle.cached_trees(), 1, "same destination reuses the tree");
        let _ = oracle.route(RouterId(7), RouterId(1));
        assert_eq!(oracle.cached_trees(), 2);
    }

    #[test]
    fn arena_answers_match_lazy_answers() {
        let t = mapper(&MapperConfig::tiny(), 9).unwrap();
        let dsts: Vec<RouterId> = t.routers().take(5).collect();
        let eager = RouteOracle::with_destinations(&t, &dsts);
        assert_eq!(eager.precomputed_trees(), 5);
        assert_eq!(eager.cached_trees(), 5);
        let lazy = RouteOracle::new(&t);
        assert_eq!(lazy.precomputed_trees(), 0);
        for &dst in &dsts {
            for src in t.routers() {
                assert_eq!(eager.route(src, dst), lazy.route(src, dst));
                assert_eq!(eager.rtt_us(src, dst), lazy.rtt_us(src, dst));
            }
        }
        // The arena absorbed every query; nothing leaked into the stripes.
        assert_eq!(eager.cached_trees(), 5);
    }

    #[test]
    fn with_destinations_dedups() {
        let t = regular::line(4);
        let oracle = RouteOracle::with_destinations(&t, &[RouterId(1), RouterId(1), RouterId(3)]);
        assert_eq!(oracle.precomputed_trees(), 2);
    }

    #[test]
    fn forced_thread_counts_build_identical_arenas() {
        let t = mapper(&MapperConfig::tiny(), 7).unwrap();
        let dsts: Vec<RouterId> = t.routers().take(6).collect();
        let one = RouteOracle::with_destinations_threads(&t, &dsts, 1);
        for threads in [2, 4, 100] {
            let many = RouteOracle::with_destinations_threads(&t, &dsts, threads);
            assert_eq!(many.precomputed_trees(), one.precomputed_trees());
            for &dst in &dsts {
                assert_eq!(*many.tree_to(dst), *one.tree_to(dst), "{threads} threads");
            }
        }
    }

    #[test]
    fn discard_lazy_trees_keeps_arena_and_answers() {
        let t = regular::grid(3, 3);
        let mut oracle = RouteOracle::with_destinations(&t, &[RouterId(0)]);
        let lazy_route = oracle.route(RouterId(0), RouterId(8)).unwrap();
        assert_eq!(oracle.cached_trees(), 2);
        oracle.discard_lazy_trees();
        assert_eq!(oracle.cached_trees(), 1, "arena survives");
        assert_eq!(oracle.precomputed_trees(), 1);
        // Discarded trees rebuild on demand with identical answers.
        assert_eq!(oracle.route(RouterId(0), RouterId(8)).unwrap(), lazy_route);
    }

    #[test]
    fn concurrent_queries_agree_with_sequential() {
        let t = mapper(&MapperConfig::tiny(), 3).unwrap();
        let reference = RouteOracle::new(&t);
        let shared = RouteOracle::new(&t);
        let routers: Vec<RouterId> = t.routers().collect();
        std::thread::scope(|s| {
            for worker in 0..4usize {
                let shared = &shared;
                let routers = &routers;
                s.spawn(move || {
                    for (i, &dst) in routers.iter().enumerate() {
                        // Workers collide on every destination on purpose.
                        let src = routers[(i + worker) % routers.len()];
                        let _ = shared.route(src, dst);
                        let _ = shared.rtt_us(src, dst);
                    }
                });
            }
        });
        for &dst in routers.iter() {
            for &src in routers.iter() {
                assert_eq!(shared.route(src, dst), reference.route(src, dst));
            }
        }
        assert_eq!(shared.cached_trees(), reference.cached_trees());
    }

    #[test]
    fn rtt_doubles_one_way() {
        let t = regular::line(3); // links of 1000 us
        let oracle = RouteOracle::new(&t);
        assert_eq!(oracle.rtt_us(RouterId(0), RouterId(2)), Some(4_000));
        assert_eq!(oracle.rtt_us(RouterId(0), RouterId(0)), Some(0));
    }

    #[test]
    fn branch_point_matches_figure1() {
        let fig = figure1();
        let oracle = RouteOracle::new(&fig.topology);
        let [p1, p2, p3, _] = fig.peers;
        let rc = fig.core[2];
        let rb = fig.core[1];
        let ra = fig.core[0];
        // p1 and p2 join at rc on the way to the landmark.
        assert_eq!(oracle.branch_point(p1, p2, fig.landmark), Some(rc));
        // p1 and p3 join in the core (ra): p1 goes rc→ra, p3 goes rb→ra.
        let bp13 = oracle.branch_point(p1, p3, fig.landmark).unwrap();
        assert!(bp13 == ra || bp13 == rb, "unexpected branch point {bp13}");
    }

    #[test]
    fn branch_point_of_same_router_is_itself() {
        let t = regular::line(4);
        let oracle = RouteOracle::new(&t);
        assert_eq!(
            oracle.branch_point(RouterId(0), RouterId(0), RouterId(3)),
            Some(RouterId(0))
        );
    }

    /// Reference implementation of the branch point: materialise both
    /// paths, mark one, scan the other (what `branch_point` did before the
    /// allocation-free lockstep walk).
    fn branch_point_reference(
        oracle: &RouteOracle<'_>,
        a: RouterId,
        b: RouterId,
        dst: RouterId,
    ) -> Option<RouterId> {
        let tree = oracle.tree_to(dst);
        let on_a: std::collections::HashSet<RouterId> = tree.path_to_root(a)?.into_iter().collect();
        tree.path_to_root(b)?.into_iter().find(|r| on_a.contains(r))
    }

    #[test]
    fn branch_point_matches_reference_everywhere() {
        for (name, t, stride) in [
            ("grid", regular::grid(4, 4), 1),
            ("mapper", mapper(&MapperConfig::tiny(), 11).unwrap(), 7),
        ] {
            let oracle = RouteOracle::new(&t);
            let routers: Vec<RouterId> = t.routers().step_by(stride).collect();
            let dsts: Vec<RouterId> = routers.iter().copied().step_by(3).collect();
            for &dst in &dsts {
                for &a in &routers {
                    for &b in &routers {
                        assert_eq!(
                            oracle.branch_point(a, b, dst),
                            branch_point_reference(&oracle, a, b, dst),
                            "{name}: branch_point({a}, {b}, {dst})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn disconnected_routes_are_none() {
        let t = nearpeer_topology::TopologyBuilder::with_routers(2).build();
        let oracle = RouteOracle::new(&t);
        assert_eq!(oracle.route(RouterId(0), RouterId(1)), None);
        assert_eq!(oracle.hops(RouterId(0), RouterId(1)), None);
        assert_eq!(oracle.rtt_us(RouterId(0), RouterId(1)), None);
        assert_eq!(
            oracle.branch_point(RouterId(0), RouterId(1), RouterId(1)),
            None
        );
    }

    #[test]
    fn routes_agree_with_hop_distance() {
        let t = regular::grid(4, 3);
        let oracle = RouteOracle::new(&t);
        for a in t.routers() {
            for b in t.routers() {
                let via_route = oracle.hops(a, b).unwrap();
                let direct = crate::hop_distance(&t, a, b).unwrap();
                assert_eq!(via_route, direct, "{a}->{b}");
            }
        }
    }
}
