//! Deterministic shortest-path trees.

use nearpeer_topology::{RouterId, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Which link metric the tree minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SptMetric {
    /// Hop count (BFS); this is how the route oracle models Internet
    /// routing, which is not latency-optimal.
    Hops,
    /// Sum of link latencies (Dijkstra); used when a latency-optimal
    /// reference is needed.
    Latency,
}

const NO_PARENT: u32 = u32::MAX;

/// A shortest-path tree rooted at one router, with deterministic tie-breaks
/// (lowest-id parent at equal distance).
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPathTree {
    root: RouterId,
    metric: SptMetric,
    parent: Vec<u32>,
    hops: Vec<u32>,
    latency_us: Vec<u64>,
}

impl ShortestPathTree {
    /// The root router.
    pub fn root(&self) -> RouterId {
        self.root
    }

    /// The metric this tree minimises.
    pub fn metric(&self) -> SptMetric {
        self.metric
    }

    /// Parent of `v` on the path towards the root (`None` for the root
    /// itself or unreachable routers).
    pub fn parent(&self, v: RouterId) -> Option<RouterId> {
        let p = self.parent[v.index()];
        (p != NO_PARENT).then_some(RouterId(p))
    }

    /// Hop count from `v` to the root; `None` if unreachable.
    pub fn hops_to_root(&self, v: RouterId) -> Option<u32> {
        let h = self.hops[v.index()];
        (h != u32::MAX).then_some(h)
    }

    /// Accumulated one-way latency from `v` to the root in microseconds;
    /// `None` if unreachable.
    pub fn latency_to_root_us(&self, v: RouterId) -> Option<u64> {
        let l = self.latency_us[v.index()];
        (l != u64::MAX).then_some(l)
    }

    /// Whether `v` can reach the root.
    pub fn reaches(&self, v: RouterId) -> bool {
        v == self.root || self.parent[v.index()] != NO_PARENT
    }

    /// The router path `v, ..., root` (inclusive); `None` if unreachable.
    pub fn path_to_root(&self, v: RouterId) -> Option<Vec<RouterId>> {
        if !self.reaches(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        Some(path)
    }
}

/// Builds the shortest-path tree rooted at `root` under the given metric.
///
/// Determinism: adjacency lists are sorted, so BFS discovers equal-distance
/// parents in ascending id order; Dijkstra relaxes strictly and pops
/// `(distance, id)` pairs in total order — rebuilding the same tree for the
/// same topology every time.
pub fn shortest_path_tree(topo: &Topology, root: RouterId, metric: SptMetric) -> ShortestPathTree {
    match metric {
        SptMetric::Hops => bfs_tree(topo, root),
        SptMetric::Latency => dijkstra_tree(topo, root),
    }
}

fn bfs_tree(topo: &Topology, root: RouterId) -> ShortestPathTree {
    let n = topo.n_routers();
    let mut parent = vec![NO_PARENT; n];
    let mut hops = vec![u32::MAX; n];
    let mut latency = vec![u64::MAX; n];
    hops[root.index()] = 0;
    latency[root.index()] = 0;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for e in topo.neighbors(v) {
            let u = e.to.index();
            if hops[u] == u32::MAX {
                hops[u] = hops[v.index()] + 1;
                latency[u] = latency[v.index()] + e.latency_us as u64;
                parent[u] = v.0;
                queue.push_back(e.to);
            }
        }
    }
    ShortestPathTree {
        root,
        metric: SptMetric::Hops,
        parent,
        hops,
        latency_us: latency,
    }
}

fn dijkstra_tree(topo: &Topology, root: RouterId) -> ShortestPathTree {
    let n = topo.n_routers();
    let mut parent = vec![NO_PARENT; n];
    let mut hops = vec![u32::MAX; n];
    let mut latency = vec![u64::MAX; n];
    latency[root.index()] = 0;
    hops[root.index()] = 0;
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    heap.push(Reverse((0, root.0)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > latency[v as usize] {
            continue; // stale entry
        }
        for e in topo.neighbors(RouterId(v)) {
            let u = e.to.index();
            let nd = d + e.latency_us as u64;
            if nd < latency[u] {
                latency[u] = nd;
                hops[u] = hops[v as usize] + 1;
                parent[u] = v;
                heap.push(Reverse((nd, e.to.0)));
            }
        }
    }
    ShortestPathTree {
        root,
        metric: SptMetric::Latency,
        parent,
        hops,
        latency_us: latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::generators::regular;
    use nearpeer_topology::TopologyBuilder;

    #[test]
    fn bfs_tree_on_grid() {
        let t = regular::grid(3, 3);
        let spt = shortest_path_tree(&t, RouterId(0), SptMetric::Hops);
        assert_eq!(spt.hops_to_root(RouterId(8)), Some(4));
        let path = spt.path_to_root(RouterId(8)).unwrap();
        assert_eq!(path.len(), 5);
        assert_eq!(path[0], RouterId(8));
        assert_eq!(*path.last().unwrap(), RouterId(0));
        // Deterministic lowest-id parents: 8's parent must be 5 (not 7).
        assert_eq!(spt.parent(RouterId(8)), Some(RouterId(5)));
    }

    #[test]
    fn latency_tree_prefers_cheap_detour() {
        // 0-1 expensive direct link, 0-2-1 cheap detour.
        let mut b = TopologyBuilder::with_routers(3);
        b.link(RouterId(0), RouterId(1), 10_000).unwrap();
        b.link(RouterId(0), RouterId(2), 1_000).unwrap();
        b.link(RouterId(2), RouterId(1), 1_000).unwrap();
        let t = b.build();
        let hops = shortest_path_tree(&t, RouterId(0), SptMetric::Hops);
        assert_eq!(hops.hops_to_root(RouterId(1)), Some(1));
        let lat = shortest_path_tree(&t, RouterId(0), SptMetric::Latency);
        assert_eq!(lat.latency_to_root_us(RouterId(1)), Some(2_000));
        assert_eq!(lat.hops_to_root(RouterId(1)), Some(2));
        assert_eq!(
            lat.path_to_root(RouterId(1)).unwrap(),
            vec![RouterId(1), RouterId(2), RouterId(0)]
        );
    }

    #[test]
    fn unreachable_routers() {
        let t = TopologyBuilder::with_routers(2).build();
        let spt = shortest_path_tree(&t, RouterId(0), SptMetric::Hops);
        assert!(!spt.reaches(RouterId(1)));
        assert_eq!(spt.path_to_root(RouterId(1)), None);
        assert_eq!(spt.hops_to_root(RouterId(1)), None);
        assert_eq!(spt.latency_to_root_us(RouterId(1)), None);
        // Root trivially reaches itself.
        assert_eq!(spt.path_to_root(RouterId(0)), Some(vec![RouterId(0)]));
    }

    #[test]
    fn bfs_latency_accumulates_along_tree_path() {
        let mut b = TopologyBuilder::with_routers(3);
        b.link(RouterId(0), RouterId(1), 100).unwrap();
        b.link(RouterId(1), RouterId(2), 250).unwrap();
        let t = b.build();
        let spt = shortest_path_tree(&t, RouterId(0), SptMetric::Hops);
        assert_eq!(spt.latency_to_root_us(RouterId(2)), Some(350));
    }

    #[test]
    fn trees_are_deterministic() {
        let t = regular::grid(4, 4);
        let a = shortest_path_tree(&t, RouterId(5), SptMetric::Hops);
        let b = shortest_path_tree(&t, RouterId(5), SptMetric::Hops);
        assert_eq!(a, b);
    }
}
