//! Deterministic shortest-path trees.
//!
//! Three building blocks live here:
//!
//! * [`ShortestPathTree`] — one rooted tree with parent/hops/latency per
//!   router and path extraction, including the **latency-annotated** route
//!   ([`ShortestPathTree::annotated_path_to_root`]) that lets a traceroute
//!   simulation price every hop of a route from the destination tree alone;
//! * [`SptScratch`] — reusable build buffers (queue, heap, dist/parent
//!   arrays with generation-stamped reset), so bulk tree construction stops
//!   paying one allocate-and-memset cycle per tree;
//! * [`CsrGraph`] — a CSR-packed adjacency view of a topology: one offsets
//!   array plus flat neighbor/latency arrays, cache-friendlier to sweep
//!   than the builder's `Vec<Vec<Edge>>` and built once per
//!   [`crate::RouteOracle`].

use nearpeer_topology::{RouterId, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Which link metric the tree minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SptMetric {
    /// Hop count (BFS); this is how the route oracle models Internet
    /// routing, which is not latency-optimal.
    Hops,
    /// Sum of link latencies (Dijkstra); used when a latency-optimal
    /// reference is needed.
    Latency,
}

const NO_PARENT: u32 = u32::MAX;

/// One hop of an annotated route (see
/// [`ShortestPathTree::annotated_path_to_root`]): the router, the one-way
/// latency accumulated from the route's start up to it, and its hop index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteHop {
    /// The router at this hop.
    pub router: RouterId,
    /// Cumulative one-way latency from the route's start (the query vertex
    /// `v`) to this router along the route, in microseconds. Zero for the
    /// start itself; monotone non-decreasing along the route.
    pub prefix_latency_us: u64,
    /// Hops from the route's start: 0 for the start, so for a route
    /// extracted towards a traceroute destination this is exactly the TTL
    /// that makes this router answer.
    pub depth: u32,
}

/// A shortest-path tree rooted at one router, with deterministic tie-breaks
/// (lowest-id parent at equal distance).
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPathTree {
    root: RouterId,
    metric: SptMetric,
    parent: Vec<u32>,
    hops: Vec<u32>,
    latency_us: Vec<u64>,
}

impl ShortestPathTree {
    /// The root router.
    pub fn root(&self) -> RouterId {
        self.root
    }

    /// The metric this tree minimises.
    pub fn metric(&self) -> SptMetric {
        self.metric
    }

    /// Parent of `v` on the path towards the root (`None` for the root
    /// itself or unreachable routers).
    pub fn parent(&self, v: RouterId) -> Option<RouterId> {
        let p = self.parent[v.index()];
        (p != NO_PARENT).then_some(RouterId(p))
    }

    /// Hop count from `v` to the root; `None` if unreachable.
    pub fn hops_to_root(&self, v: RouterId) -> Option<u32> {
        let h = self.hops[v.index()];
        (h != u32::MAX).then_some(h)
    }

    /// Accumulated one-way latency from `v` to the root in microseconds;
    /// `None` if unreachable.
    pub fn latency_to_root_us(&self, v: RouterId) -> Option<u64> {
        let l = self.latency_us[v.index()];
        (l != u64::MAX).then_some(l)
    }

    /// Whether `v` can reach the root.
    pub fn reaches(&self, v: RouterId) -> bool {
        v == self.root || self.parent[v.index()] != NO_PARENT
    }

    /// The router path `v, ..., root` (inclusive); `None` if unreachable.
    pub fn path_to_root(&self, v: RouterId) -> Option<Vec<RouterId>> {
        if !self.reaches(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        Some(path)
    }

    /// The latency-annotated route `v, ..., root`: every hop carries the
    /// one-way latency prefix from `v` and its hop index, so a caller can
    /// price **all** hops of the route from this one tree — no tree rooted
    /// at each intermediate router required. `None` if unreachable.
    ///
    /// The prefix is exact, not an estimate: tree latencies accumulate
    /// along tree paths, so the latency from `v` to an ancestor `a` is
    /// `latency(v) - latency(a)`.
    pub fn annotated_path_to_root(&self, v: RouterId) -> Option<Vec<RouteHop>> {
        let mut out = Vec::new();
        self.annotated_path_to_root_into(v, &mut out).then_some(out)
    }

    /// [`Self::annotated_path_to_root`] into a caller-owned buffer
    /// (cleared first); returns whether `v` reaches the root. The
    /// allocation-free form the traceroute hot loop uses.
    pub fn annotated_path_to_root_into(&self, v: RouterId, out: &mut Vec<RouteHop>) -> bool {
        out.clear();
        if !self.reaches(v) {
            return false;
        }
        let total = self.latency_us[v.index()];
        let mut cur = v;
        let mut depth = 0u32;
        loop {
            out.push(RouteHop {
                router: cur,
                prefix_latency_us: total - self.latency_us[cur.index()],
                depth,
            });
            match self.parent(cur) {
                Some(p) => {
                    cur = p;
                    depth += 1;
                }
                None => return true,
            }
        }
    }
}

/// Adjacency sources the tree builders can sweep: the builder-owned
/// `Vec<Vec<Edge>>` topology, or the flat [`CsrGraph`] packing of it. One
/// generic implementation keeps the two paths bit-identical by
/// construction.
trait Adjacency {
    fn n_nodes(&self) -> usize;
    /// Calls `f(neighbor, link_latency_us)` for every neighbor of `v`, in
    /// ascending neighbor order (the determinism contract).
    fn for_each_neighbor(&self, v: u32, f: impl FnMut(u32, u32));
}

impl Adjacency for &Topology {
    fn n_nodes(&self) -> usize {
        self.n_routers()
    }

    fn for_each_neighbor(&self, v: u32, mut f: impl FnMut(u32, u32)) {
        for e in self.neighbors(RouterId(v)) {
            f(e.to.0, e.latency_us);
        }
    }
}

/// A CSR (compressed sparse row) adjacency view of a topology: node `v`'s
/// neighbors and link latencies live in `targets[offsets[v]..offsets[v+1]]`
/// — two flat arrays instead of one heap allocation per router, so the
/// tree builders' inner loop walks contiguous memory. Neighbor order (and
/// therefore every tie-break) is exactly the topology's sorted adjacency
/// order: trees built through a `CsrGraph` are bit-identical to trees
/// built straight off the [`Topology`].
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    latencies_us: Vec<u32>,
}

impl CsrGraph {
    /// Packs a topology's adjacency lists. One linear pass; the view is
    /// immutable afterwards and safe to share across threads.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.n_routers();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(topo.n_links() * 2);
        let mut latencies_us = Vec::with_capacity(topo.n_links() * 2);
        offsets.push(0);
        for v in topo.routers() {
            for e in topo.neighbors(v) {
                targets.push(e.to.0);
                latencies_us.push(e.latency_us);
            }
            offsets.push(u32::try_from(targets.len()).expect("edge count fits u32"));
        }
        Self {
            offsets,
            targets,
            latencies_us,
        }
    }

    /// Number of routers in the packed view.
    pub fn n_routers(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Builds the shortest-path tree rooted at `root` through this packed
    /// view, reusing `scratch`'s buffers. Bit-identical to
    /// [`shortest_path_tree`] on the originating topology.
    pub fn shortest_path_tree(
        &self,
        root: RouterId,
        metric: SptMetric,
        scratch: &mut SptScratch,
    ) -> ShortestPathTree {
        build_tree(self, root, metric, scratch)
    }
}

impl Adjacency for &CsrGraph {
    fn n_nodes(&self) -> usize {
        self.n_routers()
    }

    fn for_each_neighbor(&self, v: u32, mut f: impl FnMut(u32, u32)) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        for (&to, &lat) in self.targets[lo..hi].iter().zip(&self.latencies_us[lo..hi]) {
            f(to, lat);
        }
    }
}

/// Reusable shortest-path-tree build state: the BFS queue / Dijkstra heap
/// plus parent/hops/latency working arrays, sized once and **generation
/// stamped** so "resetting" between builds is a counter bump, not a memset
/// of three n-entry arrays. One scratch serves any number of sequential
/// builds (one per thread for parallel builders); reuse is bit-identical
/// to building with a fresh scratch every time.
#[derive(Debug, Default)]
pub struct SptScratch {
    queue: VecDeque<u32>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    parent: Vec<u32>,
    hops: Vec<u32>,
    latency_us: Vec<u64>,
    /// `stamp[i] == generation` marks entry `i` as written by the current
    /// build; anything else is stale and read as unreachable.
    stamp: Vec<u32>,
    generation: u32,
    builds: u64,
}

impl SptScratch {
    /// An empty scratch; buffers size themselves to the first topology
    /// built through them.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trees built through this scratch so far (diagnostics; the oracle's
    /// `scratch_reuses` counter is derived from it).
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Starts a build over `n` nodes: sizes the arrays if the topology
    /// changed, advances the generation (handling wrap-around by a full
    /// restamp), clears the queue and heap.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() != n {
            self.stamp.clear();
            self.stamp.resize(n, 0);
            self.parent.resize(n, NO_PARENT);
            self.hops.resize(n, u32::MAX);
            self.latency_us.resize(n, u64::MAX);
            self.generation = 0;
        }
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                self.stamp.fill(0);
                1
            }
        };
        self.queue.clear();
        self.heap.clear();
        self.builds += 1;
    }

    #[inline]
    fn visited(&self, i: usize) -> bool {
        self.stamp[i] == self.generation
    }

    #[inline]
    fn visit(&mut self, i: usize, parent: u32, hops: u32, latency_us: u64) {
        self.stamp[i] = self.generation;
        self.parent[i] = parent;
        self.hops[i] = hops;
        self.latency_us[i] = latency_us;
    }

    /// Copies the stamped entries out into an exact-size owned tree;
    /// unstamped entries materialise as unreachable.
    fn materialize(&self, root: RouterId, metric: SptMetric) -> ShortestPathTree {
        let n = self.stamp.len();
        let mut parent = Vec::with_capacity(n);
        let mut hops = Vec::with_capacity(n);
        let mut latency_us = Vec::with_capacity(n);
        for i in 0..n {
            if self.visited(i) {
                parent.push(self.parent[i]);
                hops.push(self.hops[i]);
                latency_us.push(self.latency_us[i]);
            } else {
                parent.push(NO_PARENT);
                hops.push(u32::MAX);
                latency_us.push(u64::MAX);
            }
        }
        ShortestPathTree {
            root,
            metric,
            parent,
            hops,
            latency_us,
        }
    }
}

/// Builds the shortest-path tree rooted at `root` under the given metric.
///
/// Determinism: adjacency lists are sorted, so BFS discovers equal-distance
/// parents in ascending id order; Dijkstra relaxes strictly and pops
/// `(distance, id)` pairs in total order — rebuilding the same tree for the
/// same topology every time.
pub fn shortest_path_tree(topo: &Topology, root: RouterId, metric: SptMetric) -> ShortestPathTree {
    shortest_path_tree_with_scratch(topo, root, metric, &mut SptScratch::new())
}

/// [`shortest_path_tree`] reusing a caller-owned [`SptScratch`] — the bulk
/// build form. The result is bit-identical to a fresh-scratch build.
pub fn shortest_path_tree_with_scratch(
    topo: &Topology,
    root: RouterId,
    metric: SptMetric,
    scratch: &mut SptScratch,
) -> ShortestPathTree {
    build_tree(topo, root, metric, scratch)
}

fn build_tree<A: Adjacency>(
    adj: A,
    root: RouterId,
    metric: SptMetric,
    scratch: &mut SptScratch,
) -> ShortestPathTree {
    match metric {
        SptMetric::Hops => bfs_tree(adj, root, scratch),
        SptMetric::Latency => dijkstra_tree(adj, root, scratch),
    }
}

fn bfs_tree<A: Adjacency>(adj: A, root: RouterId, s: &mut SptScratch) -> ShortestPathTree {
    s.begin(adj.n_nodes());
    s.visit(root.index(), NO_PARENT, 0, 0);
    s.queue.push_back(root.0);
    while let Some(v) = s.queue.pop_front() {
        let vh = s.hops[v as usize];
        let vl = s.latency_us[v as usize];
        adj.for_each_neighbor(v, |u, lat| {
            if !s.visited(u as usize) {
                s.visit(u as usize, v, vh + 1, vl + lat as u64);
                s.queue.push_back(u);
            }
        });
    }
    s.materialize(root, SptMetric::Hops)
}

fn dijkstra_tree<A: Adjacency>(adj: A, root: RouterId, s: &mut SptScratch) -> ShortestPathTree {
    s.begin(adj.n_nodes());
    s.visit(root.index(), NO_PARENT, 0, 0);
    s.heap.push(Reverse((0, root.0)));
    while let Some(Reverse((d, v))) = s.heap.pop() {
        if d > s.latency_us[v as usize] {
            continue; // stale entry
        }
        let vh = s.hops[v as usize];
        adj.for_each_neighbor(v, |u, lat| {
            let nd = d + lat as u64;
            if !s.visited(u as usize) || nd < s.latency_us[u as usize] {
                s.visit(u as usize, v, vh + 1, nd);
                s.heap.push(Reverse((nd, u)));
            }
        });
    }
    s.materialize(root, SptMetric::Latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::generators::regular;
    use nearpeer_topology::TopologyBuilder;

    #[test]
    fn bfs_tree_on_grid() {
        let t = regular::grid(3, 3);
        let spt = shortest_path_tree(&t, RouterId(0), SptMetric::Hops);
        assert_eq!(spt.hops_to_root(RouterId(8)), Some(4));
        let path = spt.path_to_root(RouterId(8)).unwrap();
        assert_eq!(path.len(), 5);
        assert_eq!(path[0], RouterId(8));
        assert_eq!(*path.last().unwrap(), RouterId(0));
        // Deterministic lowest-id parents: 8's parent must be 5 (not 7).
        assert_eq!(spt.parent(RouterId(8)), Some(RouterId(5)));
    }

    #[test]
    fn latency_tree_prefers_cheap_detour() {
        // 0-1 expensive direct link, 0-2-1 cheap detour.
        let mut b = TopologyBuilder::with_routers(3);
        b.link(RouterId(0), RouterId(1), 10_000).unwrap();
        b.link(RouterId(0), RouterId(2), 1_000).unwrap();
        b.link(RouterId(2), RouterId(1), 1_000).unwrap();
        let t = b.build();
        let hops = shortest_path_tree(&t, RouterId(0), SptMetric::Hops);
        assert_eq!(hops.hops_to_root(RouterId(1)), Some(1));
        let lat = shortest_path_tree(&t, RouterId(0), SptMetric::Latency);
        assert_eq!(lat.latency_to_root_us(RouterId(1)), Some(2_000));
        assert_eq!(lat.hops_to_root(RouterId(1)), Some(2));
        assert_eq!(
            lat.path_to_root(RouterId(1)).unwrap(),
            vec![RouterId(1), RouterId(2), RouterId(0)]
        );
    }

    #[test]
    fn unreachable_routers() {
        let t = TopologyBuilder::with_routers(2).build();
        let spt = shortest_path_tree(&t, RouterId(0), SptMetric::Hops);
        assert!(!spt.reaches(RouterId(1)));
        assert_eq!(spt.path_to_root(RouterId(1)), None);
        assert_eq!(spt.hops_to_root(RouterId(1)), None);
        assert_eq!(spt.latency_to_root_us(RouterId(1)), None);
        assert_eq!(spt.annotated_path_to_root(RouterId(1)), None);
        // Root trivially reaches itself.
        assert_eq!(spt.path_to_root(RouterId(0)), Some(vec![RouterId(0)]));
        assert_eq!(
            spt.annotated_path_to_root(RouterId(0)),
            Some(vec![RouteHop {
                router: RouterId(0),
                prefix_latency_us: 0,
                depth: 0
            }])
        );
    }

    #[test]
    fn bfs_latency_accumulates_along_tree_path() {
        let mut b = TopologyBuilder::with_routers(3);
        b.link(RouterId(0), RouterId(1), 100).unwrap();
        b.link(RouterId(1), RouterId(2), 250).unwrap();
        let t = b.build();
        let spt = shortest_path_tree(&t, RouterId(0), SptMetric::Hops);
        assert_eq!(spt.latency_to_root_us(RouterId(2)), Some(350));
    }

    #[test]
    fn annotated_path_carries_exact_prefixes() {
        let mut b = TopologyBuilder::with_routers(4);
        b.link(RouterId(0), RouterId(1), 100).unwrap();
        b.link(RouterId(1), RouterId(2), 250).unwrap();
        b.link(RouterId(2), RouterId(3), 50).unwrap();
        let t = b.build();
        // Tree rooted at 3; route from 0 is 0 → 1 → 2 → 3.
        let spt = shortest_path_tree(&t, RouterId(3), SptMetric::Hops);
        let route = spt.annotated_path_to_root(RouterId(0)).unwrap();
        let expect = [
            (RouterId(0), 0u64, 0u32),
            (RouterId(1), 100, 1),
            (RouterId(2), 350, 2),
            (RouterId(3), 400, 3),
        ];
        assert_eq!(route.len(), expect.len());
        for (hop, (router, prefix, depth)) in route.iter().zip(expect) {
            assert_eq!(
                (hop.router, hop.prefix_latency_us, hop.depth),
                (router, prefix, depth)
            );
        }
        // The annotated route's router sequence is path_to_root exactly.
        let plain = spt.path_to_root(RouterId(0)).unwrap();
        let routers: Vec<RouterId> = route.iter().map(|h| h.router).collect();
        assert_eq!(routers, plain);
    }

    #[test]
    fn annotated_into_reuses_the_buffer() {
        let t = regular::line(6);
        let spt = shortest_path_tree(&t, RouterId(5), SptMetric::Hops);
        let mut buf = vec![
            RouteHop {
                router: RouterId(9),
                prefix_latency_us: 9,
                depth: 9
            };
            32
        ];
        assert!(spt.annotated_path_to_root_into(RouterId(0), &mut buf));
        assert_eq!(buf, spt.annotated_path_to_root(RouterId(0)).unwrap());
        // An unreachable query clears the buffer rather than leaving stale
        // hops behind.
        let t2 = TopologyBuilder::with_routers(2).build();
        let spt2 = shortest_path_tree(&t2, RouterId(0), SptMetric::Hops);
        assert!(!spt2.annotated_path_to_root_into(RouterId(1), &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn trees_are_deterministic() {
        let t = regular::grid(4, 4);
        let a = shortest_path_tree(&t, RouterId(5), SptMetric::Hops);
        let b = shortest_path_tree(&t, RouterId(5), SptMetric::Hops);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_builds() {
        let topos = [regular::grid(4, 4), regular::ring(9)];
        let mut scratch = SptScratch::new();
        for t in &topos {
            // One scratch across every root, both metrics, and a topology
            // size change in the middle — each tree must equal the
            // fresh-scratch build exactly.
            for metric in [SptMetric::Hops, SptMetric::Latency] {
                for root in t.routers() {
                    let reused = shortest_path_tree_with_scratch(t, root, metric, &mut scratch);
                    let fresh = shortest_path_tree(t, root, metric);
                    assert_eq!(reused, fresh, "{root} {metric:?}");
                }
            }
        }
        assert_eq!(scratch.builds(), (16 + 9) * 2);
    }

    #[test]
    fn csr_builds_match_topology_builds() {
        let topos = [regular::grid(4, 3), regular::ring(7), regular::line(5)];
        for t in &topos {
            let csr = CsrGraph::new(t);
            assert_eq!(csr.n_routers(), t.n_routers());
            let mut scratch = SptScratch::new();
            for metric in [SptMetric::Hops, SptMetric::Latency] {
                for root in t.routers() {
                    assert_eq!(
                        csr.shortest_path_tree(root, metric, &mut scratch),
                        shortest_path_tree(t, root, metric),
                        "{root} {metric:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn csr_handles_isolated_routers() {
        let t = TopologyBuilder::with_routers(3).build();
        let csr = CsrGraph::new(&t);
        let tree = csr.shortest_path_tree(RouterId(1), SptMetric::Hops, &mut SptScratch::new());
        assert!(tree.reaches(RouterId(1)));
        assert!(!tree.reaches(RouterId(0)));
        assert!(!tree.reaches(RouterId(2)));
    }
}
