//! Shortest-path machinery and the deterministic route oracle.
//!
//! Internet routing is destination-based and stable over the timescales of a
//! peer join, so the simulation models the route between two routers as the
//! path through a deterministic shortest-path tree rooted at the destination
//! (ties broken towards lower router ids, mirroring stable next-hop
//! selection). This gives the substitution for real `traceroute` output (see
//! DESIGN.md §3): the observable is the same — a fixed router sequence per
//! (source, destination) pair.
//!
//! * [`bfs_distances`] / [`hop_distance`] — unweighted metrics (the paper's
//!   evaluation metric `D` is a sum of hop distances);
//! * [`ShortestPathTree`] — hop- or latency-weighted trees with path
//!   extraction;
//! * [`RouteOracle`] — cached per-destination trees, full router paths and
//!   RTT estimates (used by the traceroute simulation and the coordinate
//!   baselines). The oracle is `Send + Sync`: an eager arena of trees for
//!   the destinations known up front (landmarks) plus a lock-striped,
//!   hard-capped lazy cache ([`OracleConfig`]), so a whole swarm's round-1
//!   traceroutes run concurrently against one shared oracle with
//!   bit-identical results to a sequential run. [`OracleStats`] counts the
//!   trees actually built.
//! * [`RouteOracle::route_annotated`] + [`RouteHop`] — the route with a
//!   one-way latency prefix per hop, read off the destination tree alone:
//!   one tree prices every TTL of a traceroute.
//! * [`SptScratch`] + [`CsrGraph`] — reusable build buffers
//!   (generation-stamped, bump-reset between builds) and a CSR-packed
//!   adjacency view, so bulk tree construction stops paying per-build
//!   allocation churn. Both produce trees bit-identical to the plain
//!   [`shortest_path_tree`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfs;
mod oracle;
mod spt;

pub use bfs::{bfs_distances, bfs_distances_bounded, hop_distance, multi_source_bfs};
pub use oracle::{OracleConfig, OracleStats, RouteOracle};
pub use spt::{
    shortest_path_tree, shortest_path_tree_with_scratch, CsrGraph, RouteHop, ShortestPathTree,
    SptMetric, SptScratch,
};
