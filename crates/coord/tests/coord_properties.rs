//! Property tests for the coordinate baselines.

use nearpeer_coord::{
    nelder_mead, Coord, GnpConfig, GnpLandmarkSystem, NelderMeadConfig, VivaldiConfig, VivaldiNode,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nelder_mead_never_worse_than_start(
        x0 in prop::collection::vec(-100.0f64..100.0, 1..5),
        target in prop::collection::vec(-100.0f64..100.0, 1..5),
    ) {
        prop_assume!(x0.len() == target.len());
        let f = |x: &[f64]| -> f64 {
            x.iter().zip(&target).map(|(a, b)| (a - b).powi(2)).sum()
        };
        let start = f(&x0);
        let (_, best) = nelder_mead(f, &x0, &NelderMeadConfig::default());
        prop_assert!(best <= start + 1e-12, "worsened: {} > {}", best, start);
    }

    #[test]
    fn coord_distance_is_a_semimetric(
        a in prop::collection::vec(-1e4f64..1e4, 2..4),
        b in prop::collection::vec(-1e4f64..1e4, 2..4),
        ha in 0.0f64..100.0,
        hb in 0.0f64..100.0,
    ) {
        prop_assume!(a.len() == b.len());
        let ca = Coord { v: a, height: ha };
        let cb = Coord { v: b, height: hb };
        // Symmetry and non-negativity.
        prop_assert!((ca.distance(&cb) - cb.distance(&ca)).abs() < 1e-9);
        prop_assert!(ca.distance(&cb) >= 0.0);
        // Self-distance is twice the height (the access penalty is paid on
        // both "ends").
        prop_assert!((ca.distance(&ca.clone()) - 2.0 * ha).abs() < 1e-9);
    }

    #[test]
    fn vivaldi_error_stays_in_unit_range(
        rtts in prop::collection::vec(1.0f64..1e6, 1..60),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = VivaldiConfig::default();
        let mut node = VivaldiNode::new(&cfg, &mut rng);
        let anchor = Coord { v: vec![5_000.0, 5_000.0], height: 0.0 };
        for rtt in rtts {
            node.observe(&anchor, 0.5, rtt, &mut rng);
            prop_assert!((0.0..=1.0).contains(&node.error()), "error {}", node.error());
            prop_assert!(node.coord().v.iter().all(|x| x.is_finite()));
            prop_assert!(node.coord().height >= 0.0);
        }
    }

    #[test]
    fn gnp_fit_is_deterministic(
        pts in prop::collection::vec((-1e5f64..1e5, -1e5f64..1e5), 4..7),
    ) {
        let rtt: Vec<Vec<f64>> = pts
            .iter()
            .map(|&(xi, yi)| {
                pts.iter()
                    .map(|&(xj, yj)| ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt())
                    .collect()
            })
            .collect();
        let cfg = GnpConfig { dimensions: 2, ..Default::default() };
        let a = GnpLandmarkSystem::fit(&rtt, &cfg);
        let b = GnpLandmarkSystem::fit(&rtt, &cfg);
        match (a, b) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.n_landmarks(), b.n_landmarks());
                prop_assert!((a.fit_error() - b.fit_error()).abs() < 1e-12);
                for (la, lb) in a.landmarks().iter().zip(b.landmarks()) {
                    prop_assert!((la.distance(lb)).abs() < 1e-9);
                }
            }
            (None, None) => {}
            _ => prop_assert!(false, "nondeterministic fit"),
        }
    }
}
