//! Convergence bookkeeping for coordinate systems.

/// Tracks how a coordinate system's accuracy evolves with measurement
/// effort — the quantity behind the paper's "substantial amount of time"
/// argument (C3).
///
/// Callers record `(probes_used, relative_errors)` snapshots; the tracker
/// answers "how many probes until the median error fell below X".
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTracker {
    snapshots: Vec<(u64, f64)>, // (cumulative probes, median relative error)
}

impl ConvergenceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a snapshot: cumulative probe count and the current relative
    /// errors of the system (NaNs ignored). No-op if `errors` is empty.
    pub fn record(&mut self, probes: u64, errors: &[f64]) {
        let mut clean: Vec<f64> = errors.iter().copied().filter(|e| !e.is_nan()).collect();
        if clean.is_empty() {
            return;
        }
        clean.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        let median = clean[clean.len() / 2];
        self.snapshots.push((probes, median));
    }

    /// All `(probes, median_error)` snapshots in recording order.
    pub fn snapshots(&self) -> &[(u64, f64)] {
        &self.snapshots
    }

    /// The smallest cumulative probe count at which the median error was at
    /// or below `target`; `None` if never reached.
    pub fn probes_to_reach(&self, target: f64) -> Option<u64> {
        self.snapshots
            .iter()
            .find(|&&(_, err)| err <= target)
            .map(|&(probes, _)| probes)
    }

    /// The last recorded median error, if any.
    pub fn final_error(&self) -> Option<f64> {
        self.snapshots.last().map(|&(_, e)| e)
    }
}

/// Relative error of a prediction against ground truth:
/// `|predicted − actual| / actual` (∞-safe: `actual <= 0` yields NaN so the
/// tracker skips it).
pub fn relative_error(predicted: f64, actual: f64) -> f64 {
    if actual <= 0.0 {
        f64::NAN
    } else {
        (predicted - actual).abs() / actual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_medians() {
        let mut t = ConvergenceTracker::new();
        t.record(10, &[1.0, 0.5, 0.8]);
        t.record(20, &[0.4, 0.2, 0.3]);
        assert_eq!(t.snapshots().len(), 2);
        assert_eq!(t.snapshots()[0], (10, 0.8));
        assert_eq!(t.snapshots()[1], (20, 0.3));
        assert_eq!(t.final_error(), Some(0.3));
    }

    #[test]
    fn probes_to_reach_threshold() {
        let mut t = ConvergenceTracker::new();
        t.record(10, &[0.9]);
        t.record(20, &[0.5]);
        t.record(30, &[0.1]);
        assert_eq!(t.probes_to_reach(0.5), Some(20));
        assert_eq!(t.probes_to_reach(0.05), None);
        assert_eq!(t.probes_to_reach(2.0), Some(10));
    }

    #[test]
    fn skips_empty_and_nan() {
        let mut t = ConvergenceTracker::new();
        t.record(10, &[]);
        t.record(20, &[f64::NAN, 0.7]);
        assert_eq!(t.snapshots().len(), 1);
        assert_eq!(t.snapshots()[0], (20, 0.7));
    }

    #[test]
    fn relative_error_edge_cases() {
        assert!((relative_error(12.0, 10.0) - 0.2).abs() < 1e-12);
        assert!(relative_error(5.0, 0.0).is_nan());
        assert!(relative_error(5.0, -1.0).is_nan());
    }
}
