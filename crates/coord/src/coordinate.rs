//! Euclidean coordinates with the Vivaldi height extension.

use rand::Rng;

/// A synthetic network coordinate: a Euclidean position plus a non-negative
/// "height" modelling the access-link penalty (Dabek et al. §5.4).
///
/// Distance is `‖a − b‖ + h_a + h_b`: the height is paid on both ends of
/// every path, like the last-mile hop of a DSL line.
#[derive(Debug, Clone, PartialEq)]
pub struct Coord {
    /// Euclidean components.
    pub v: Vec<f64>,
    /// Height above the Euclidean plane (0 disables the extension).
    pub height: f64,
}

impl Coord {
    /// The origin of a `dim`-dimensional space with zero height.
    pub fn origin(dim: usize) -> Self {
        Self {
            v: vec![0.0; dim],
            height: 0.0,
        }
    }

    /// A random point in `[-scale, scale]^dim` (used to break symmetry at
    /// startup).
    pub fn random(dim: usize, scale: f64, rng: &mut impl Rng) -> Self {
        Self {
            v: (0..dim).map(|_| rng.gen_range(-scale..=scale)).collect(),
            height: 0.0,
        }
    }

    /// Dimensionality of the Euclidean part.
    pub fn dim(&self) -> usize {
        self.v.len()
    }

    /// Predicted distance to another coordinate (same dimensionality).
    pub fn distance(&self, other: &Coord) -> f64 {
        let eucl: f64 = self
            .v
            .iter()
            .zip(&other.v)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        eucl + self.height + other.height
    }

    /// Euclidean magnitude of the position vector.
    pub fn magnitude(&self) -> f64 {
        self.v.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// The unit vector pointing from `other` towards `self`; if the two
    /// positions coincide, a random unit direction (so coincident Vivaldi
    /// nodes can still repel).
    pub fn direction_from(&self, other: &Coord, rng: &mut impl Rng) -> Vec<f64> {
        let mut diff: Vec<f64> = self.v.iter().zip(&other.v).map(|(a, b)| a - b).collect();
        let mag = diff.iter().map(|x| x * x).sum::<f64>().sqrt();
        if mag > 1e-9 {
            for x in &mut diff {
                *x /= mag;
            }
            return diff;
        }
        // Coincident: random direction.
        loop {
            let cand: Vec<f64> = (0..self.v.len())
                .map(|_| rng.gen_range(-1.0..=1.0))
                .collect();
            let m = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
            if m > 1e-6 {
                return cand.into_iter().map(|x| x / m).collect();
            }
        }
    }

    /// Moves this coordinate by `step · dir` and bumps the height by
    /// `height_step` (clamped at a small positive floor, per the Vivaldi
    /// height rules).
    pub fn displace(&mut self, dir: &[f64], step: f64, height_step: f64) {
        for (x, d) in self.v.iter_mut().zip(dir) {
            *x += step * d;
        }
        self.height = (self.height + height_step).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distance_is_symmetric_and_triangle_free_heights() {
        let a = Coord {
            v: vec![0.0, 0.0],
            height: 1.0,
        };
        let b = Coord {
            v: vec![3.0, 4.0],
            height: 2.0,
        };
        assert_eq!(a.distance(&b), 5.0 + 3.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn origin_and_magnitude() {
        let o = Coord::origin(3);
        assert_eq!(o.dim(), 3);
        assert_eq!(o.magnitude(), 0.0);
        let c = Coord {
            v: vec![3.0, 4.0],
            height: 0.0,
        };
        assert_eq!(c.magnitude(), 5.0);
    }

    #[test]
    fn direction_unit_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Coord {
            v: vec![1.0, 1.0],
            height: 0.0,
        };
        let b = Coord {
            v: vec![4.0, 5.0],
            height: 0.0,
        };
        let d = b.direction_from(&a, &mut rng);
        let mag: f64 = d.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((mag - 1.0).abs() < 1e-9);
        assert!((d[0] - 0.6).abs() < 1e-9);
        assert!((d[1] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn coincident_direction_is_random_unit() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Coord::origin(2);
        let d = a.direction_from(&a.clone(), &mut rng);
        let mag: f64 = d.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((mag - 1.0).abs() < 1e-9);
    }

    #[test]
    fn displace_moves_and_clamps_height() {
        let mut c = Coord::origin(2);
        c.displace(&[1.0, 0.0], 2.5, -5.0);
        assert_eq!(c.v, vec![2.5, 0.0]);
        assert_eq!(c.height, 0.0, "height must not go negative");
        c.displace(&[0.0, 1.0], 1.0, 0.75);
        assert_eq!(c.height, 0.75);
    }

    #[test]
    fn random_within_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = Coord::random(4, 10.0, &mut rng);
        assert_eq!(c.dim(), 4);
        assert!(c.v.iter().all(|x| (-10.0..=10.0).contains(x)));
    }
}
