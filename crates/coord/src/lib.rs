//! Network-coordinate baselines: Vivaldi and GNP.
//!
//! The paper's motivation (§1) is that coordinate systems "require a
//! substantial amount of time before to deliver accurate information": a
//! newcomer must exchange many measurements before its coordinate — and thus
//! its notion of who is nearby — stabilises. This crate implements the two
//! canonical schemes the paper cites so that the C3 experiment can race them
//! against the landmark path-tree join:
//!
//! * [`VivaldiNode`] — the decentralised spring-relaxation algorithm (Dabek
//!   et al., SIGCOMM 2004), with the height-vector extension;
//! * [`GnpLandmarkSystem`] — landmark-based embedding (Ng & Zhang, INFOCOM
//!   2002) solved with a dependency-free Nelder–Mead simplex
//!   ([`nelder_mead`]);
//! * [`ConvergenceTracker`] — relative-error bookkeeping shared by both.
//!
//! The crate is topology-agnostic: callers supply RTTs (in the reproduction
//! these come from `nearpeer-routing`'s oracle).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convergence;
mod coordinate;
mod gnp;
mod simplex;
mod vivaldi;

pub use convergence::{relative_error, ConvergenceTracker};
pub use coordinate::Coord;
pub use gnp::{GnpConfig, GnpLandmarkSystem};
pub use simplex::{nelder_mead, NelderMeadConfig};
pub use vivaldi::{VivaldiConfig, VivaldiNode};
