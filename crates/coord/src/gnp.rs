//! GNP-style landmark embedding (Ng & Zhang, INFOCOM 2002).

use crate::coordinate::Coord;
use crate::simplex::{nelder_mead, NelderMeadConfig};

/// GNP parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnpConfig {
    /// Embedding dimensionality (the original paper uses 7 landmarks in a
    /// 5-D space; 2–3 dimensions suffice for simulated maps).
    pub dimensions: usize,
    /// Optimiser settings for both phases.
    pub solver: NelderMeadConfig,
}

impl Default for GnpConfig {
    fn default() -> Self {
        Self {
            dimensions: 3,
            solver: NelderMeadConfig {
                max_evals: 5_000,
                tolerance: 1e-6,
                initial_step: 1_000.0,
            },
        }
    }
}

/// The landmark side of GNP: fixed landmark coordinates fitted from the
/// full landmark-to-landmark RTT matrix, then per-host embeddings from the
/// host's RTTs to each landmark.
///
/// The *cost* of a GNP join is `n_landmarks` RTT measurements plus a local
/// optimisation — cheaper than Vivaldi convergence but still an active
/// probing round, which is what experiment C3 quantifies.
#[derive(Debug, Clone)]
pub struct GnpLandmarkSystem {
    landmarks: Vec<Coord>,
    cfg: GnpConfig,
    fit_error: f64,
}

impl GnpLandmarkSystem {
    /// Fits landmark coordinates from the symmetric RTT matrix
    /// `rtt[i][j]` (microseconds; diagonal ignored). Requires at least
    /// `dimensions + 1` landmarks for a meaningful embedding.
    ///
    /// Returns `None` if the matrix is not square or too small.
    // Triangular `rtt[i][j]` indexing below reads better than nested
    // iterator adapters over the matrix halves.
    #[allow(clippy::needless_range_loop)]
    pub fn fit(rtt: &[Vec<f64>], cfg: &GnpConfig) -> Option<Self> {
        let n = rtt.len();
        if n < cfg.dimensions + 1 || rtt.iter().any(|row| row.len() != n) {
            return None;
        }
        let dim = cfg.dimensions;
        // Jointly optimise all landmark positions: variables are the
        // flattened coordinates. Landmark 0 is pinned at the origin to quash
        // translation freedom (rotation freedom is harmless).
        let objective = |x: &[f64]| -> f64 {
            let coord = |i: usize| -> &[f64] {
                if i == 0 {
                    &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0][..dim]
                } else {
                    &x[(i - 1) * dim..i * dim]
                }
            };
            let mut err = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    let d: f64 = coord(i)
                        .iter()
                        .zip(coord(j))
                        .map(|(a, b)| (a - b).powi(2))
                        .sum::<f64>()
                        .sqrt();
                    // Normalised squared error, as in the GNP paper.
                    let m = rtt[i][j].max(1.0);
                    err += ((d - rtt[i][j]) / m).powi(2);
                }
            }
            err
        };
        // Start from a crude MDS-like guess: landmark i at distance
        // rtt[0][i] along axis (i mod dim).
        let mut x0 = vec![0.0; (n - 1) * dim];
        for i in 1..n {
            x0[(i - 1) * dim + (i % dim)] = rtt[0][i].max(1.0);
        }
        let (x, fit_error) = nelder_mead(objective, &x0, &cfg.solver);
        let mut landmarks = Vec::with_capacity(n);
        landmarks.push(Coord {
            v: vec![0.0; dim],
            height: 0.0,
        });
        for i in 1..n {
            landmarks.push(Coord {
                v: x[(i - 1) * dim..i * dim].to_vec(),
                height: 0.0,
            });
        }
        Some(Self {
            landmarks,
            cfg: *cfg,
            fit_error,
        })
    }

    /// Number of landmarks.
    pub fn n_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// The fitted landmark coordinates.
    pub fn landmarks(&self) -> &[Coord] {
        &self.landmarks
    }

    /// Residual objective of the landmark fit (0 = perfectly embeddable).
    pub fn fit_error(&self) -> f64 {
        self.fit_error
    }

    /// Embeds one host from its RTTs to every landmark (same order as
    /// [`Self::landmarks`]). Returns the coordinate and the residual error.
    ///
    /// Returns `None` if the RTT vector length does not match.
    pub fn embed_host(&self, rtts: &[f64]) -> Option<(Coord, f64)> {
        if rtts.len() != self.landmarks.len() {
            return None;
        }
        let objective = |x: &[f64]| -> f64 {
            let mut err = 0.0;
            for (lm, &rtt) in self.landmarks.iter().zip(rtts) {
                let d: f64 = x
                    .iter()
                    .zip(&lm.v)
                    .map(|(a, b)| (a - b).powi(2))
                    .sum::<f64>()
                    .sqrt();
                let m = rtt.max(1.0);
                err += ((d - rtt) / m).powi(2);
            }
            err
        };
        // Start at the landmark with the smallest RTT.
        let nearest = rtts
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite RTTs"))
            .map(|(i, _)| i)?;
        let x0 = self.landmarks[nearest].v.clone();
        let (x, err) = nelder_mead(objective, &x0, &self.cfg.solver);
        Some((Coord { v: x, height: 0.0 }, err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground truth: points on a plane; RTT = Euclidean distance.
    fn truth_points() -> Vec<(f64, f64)> {
        vec![
            (0.0, 0.0),
            (80_000.0, 0.0),
            (0.0, 60_000.0),
            (70_000.0, 70_000.0),
            (30_000.0, 10_000.0),
        ]
    }

    fn rtt_matrix(points: &[(f64, f64)]) -> Vec<Vec<f64>> {
        points
            .iter()
            .map(|&(xi, yi)| {
                points
                    .iter()
                    .map(|&(xj, yj)| ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt())
                    .collect()
            })
            .collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn landmark_fit_recovers_pairwise_distances() {
        let pts = truth_points();
        let rtt = rtt_matrix(&pts);
        let cfg = GnpConfig {
            dimensions: 2,
            ..Default::default()
        };
        let sys = GnpLandmarkSystem::fit(&rtt, &cfg).unwrap();
        assert_eq!(sys.n_landmarks(), 5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                let d = sys.landmarks()[i].distance(&sys.landmarks()[j]);
                let rel = (d - rtt[i][j]).abs() / rtt[i][j].max(1.0);
                assert!(
                    rel < 0.15,
                    "landmarks {i},{j}: {d} vs {} (rel {rel})",
                    rtt[i][j]
                );
            }
        }
    }

    #[test]
    fn host_embedding_predicts_rtts() {
        let pts = truth_points();
        let rtt = rtt_matrix(&pts);
        let cfg = GnpConfig {
            dimensions: 2,
            ..Default::default()
        };
        let sys = GnpLandmarkSystem::fit(&rtt, &cfg).unwrap();
        // A host at (40k, 30k).
        let host = (40_000.0f64, 30_000.0f64);
        let host_rtts: Vec<f64> = pts
            .iter()
            .map(|&(x, y)| ((host.0 - x).powi(2) + (host.1 - y).powi(2)).sqrt())
            .collect();
        let (coord, err) = sys.embed_host(&host_rtts).unwrap();
        assert!(err < 0.1, "residual {err}");
        // Distances from the embedded host to landmarks approximate RTTs.
        for (lm, &want) in sys.landmarks().iter().zip(&host_rtts) {
            let got = coord.distance(lm);
            assert!(
                (got - want).abs() / want.max(1.0) < 0.2,
                "host-landmark {got} vs {want}"
            );
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let cfg = GnpConfig {
            dimensions: 2,
            ..Default::default()
        };
        // Too few landmarks for the dimension.
        assert!(GnpLandmarkSystem::fit(&[vec![0.0, 1.0], vec![1.0, 0.0]], &cfg).is_none());
        // Ragged matrix.
        assert!(GnpLandmarkSystem::fit(
            &[vec![0.0, 1.0, 2.0], vec![1.0, 0.0], vec![2.0, 1.0, 0.0]],
            &cfg
        )
        .is_none());
        // Wrong host vector length.
        let pts = truth_points();
        let sys = GnpLandmarkSystem::fit(&rtt_matrix(&pts), &cfg).unwrap();
        assert!(sys.embed_host(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn fit_error_zero_for_perfectly_embeddable() {
        let pts = truth_points();
        let cfg = GnpConfig {
            dimensions: 2,
            ..Default::default()
        };
        let sys = GnpLandmarkSystem::fit(&rtt_matrix(&pts), &cfg).unwrap();
        assert!(sys.fit_error() < 0.05, "fit error {}", sys.fit_error());
    }
}
