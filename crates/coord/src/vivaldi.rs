//! The Vivaldi spring-relaxation algorithm (Dabek et al., SIGCOMM 2004).

use crate::coordinate::Coord;
use rand::Rng;

/// Vivaldi tuning constants (the paper's recommended values by default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VivaldiConfig {
    /// Coordinate dimensionality.
    pub dimensions: usize,
    /// `c_c`: fraction of the estimated error a node moves per sample.
    pub cc: f64,
    /// `c_e`: weight of a new sample in the error EWMA.
    pub ce: f64,
    /// Enables the height-vector model.
    pub use_height: bool,
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        Self {
            dimensions: 2,
            cc: 0.25,
            ce: 0.25,
            use_height: false,
        }
    }
}

/// One node's Vivaldi state.
///
/// Each `observe` consumes one RTT sample to a remote node and nudges the
/// local coordinate; the estimated relative error starts at the maximum
/// (1.0) and decays as samples accumulate — the quantity whose slow decay
/// the paper's "quicker" claim targets.
///
/// ```
/// use nearpeer_coord::{VivaldiConfig, VivaldiNode};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut a = VivaldiNode::new(&VivaldiConfig::default(), &mut rng);
/// let b = VivaldiNode::new(&VivaldiConfig::default(), &mut rng);
/// a.observe(b.coord(), b.error(), 20_000.0, &mut rng);
/// assert!(a.samples() == 1);
/// ```
#[derive(Debug, Clone)]
pub struct VivaldiNode {
    coord: Coord,
    error: f64,
    cfg: VivaldiConfig,
    samples: u64,
}

impl VivaldiNode {
    /// Creates a node at a small random position (symmetry breaking).
    pub fn new(cfg: &VivaldiConfig, rng: &mut impl Rng) -> Self {
        Self {
            coord: Coord::random(cfg.dimensions, 1.0, rng),
            error: 1.0,
            cfg: *cfg,
            samples: 0,
        }
    }

    /// Current coordinate.
    pub fn coord(&self) -> &Coord {
        &self.coord
    }

    /// Current estimated relative error (1.0 = clueless).
    pub fn error(&self) -> f64 {
        self.error
    }

    /// RTT samples consumed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Predicted RTT (same unit as the observations) to a remote coordinate.
    pub fn predict(&self, remote: &Coord) -> f64 {
        self.coord.distance(remote)
    }

    /// Consumes one measurement: the remote node's coordinate and error, and
    /// the measured RTT (microseconds; any consistent unit works).
    pub fn observe(&mut self, remote: &Coord, remote_error: f64, rtt: f64, rng: &mut impl Rng) {
        if !(rtt.is_finite()) || rtt <= 0.0 {
            return; // ignore nonsense samples rather than corrupting state
        }
        self.samples += 1;
        let predicted = self.coord.distance(remote);

        // Sample confidence balance: how much to trust us vs them.
        let denom = self.error + remote_error;
        let w = if denom > 0.0 { self.error / denom } else { 0.5 };

        // Update the error EWMA with the sample's relative error.
        let sample_rel_err = (predicted - rtt).abs() / rtt;
        self.error = sample_rel_err * self.cfg.ce * w + self.error * (1.0 - self.cfg.ce * w);
        self.error = self.error.clamp(0.0, 1.0);

        // Spring displacement.
        let delta = self.cfg.cc * w;
        let force = rtt - predicted; // positive = too close, push away
        let dir = self.coord.direction_from(remote, rng);
        let height_step = if self.cfg.use_height {
            // The height absorbs the share of the force that cannot be
            // explained by the plane (both signs allowed, floor at 0).
            delta * force * 0.1
        } else {
            0.0
        };
        self.coord.displace(&dir, delta * force, height_step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Embeds n nodes with ground-truth positions on a plane; RTTs are the
    /// true distances. Vivaldi must drive the median relative error well
    /// below the starting 1.0.
    #[test]
    fn converges_on_embeddable_rtts() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 30;
        let truth: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..100_000.0), rng.gen_range(0.0..100_000.0)))
            .collect();
        let rtt = |i: usize, j: usize| {
            let (xi, yi) = truth[i];
            let (xj, yj) = truth[j];
            ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt().max(1.0)
        };
        let cfg = VivaldiConfig::default();
        let mut nodes: Vec<VivaldiNode> =
            (0..n).map(|_| VivaldiNode::new(&cfg, &mut rng)).collect();

        for _round in 0..200 {
            for i in 0..n {
                for _ in 0..3 {
                    let j = rng.gen_range(0..n);
                    if i == j {
                        continue;
                    }
                    let (rc, re) = (nodes[j].coord().clone(), nodes[j].error());
                    nodes[i].observe(&rc, re, rtt(i, j), &mut rng);
                }
            }
        }

        // Median pairwise relative error.
        let mut errs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let predicted = nodes[i].predict(nodes[j].coord());
                let actual = rtt(i, j);
                errs.push((predicted - actual).abs() / actual);
            }
        }
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errs[errs.len() / 2];
        assert!(median < 0.3, "median relative error {median} too high");
    }

    #[test]
    fn error_decreases_with_good_samples() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = VivaldiConfig::default();
        let mut node = VivaldiNode::new(&cfg, &mut rng);
        let anchor = Coord {
            v: vec![30_000.0, 0.0],
            height: 0.0,
        };
        let initial_error = node.error();
        for _ in 0..50 {
            let rtt = node.coord().distance(&anchor).max(1.0);
            node.observe(&anchor, 0.1, rtt, &mut rng);
        }
        assert!(node.error() < initial_error);
        assert_eq!(node.samples(), 50);
    }

    #[test]
    fn ignores_invalid_rtts() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = VivaldiConfig::default();
        let mut node = VivaldiNode::new(&cfg, &mut rng);
        let before = node.coord().clone();
        node.observe(&Coord::origin(2), 0.5, f64::NAN, &mut rng);
        node.observe(&Coord::origin(2), 0.5, -5.0, &mut rng);
        node.observe(&Coord::origin(2), 0.5, 0.0, &mut rng);
        assert_eq!(node.samples(), 0);
        assert_eq!(node.coord(), &before);
    }

    #[test]
    fn height_model_keeps_height_nonnegative() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = VivaldiConfig {
            use_height: true,
            ..Default::default()
        };
        let mut node = VivaldiNode::new(&cfg, &mut rng);
        let anchor = Coord {
            v: vec![1_000.0, 1_000.0],
            height: 500.0,
        };
        for i in 0..200 {
            let rtt = 1_000.0 + (i % 7) as f64 * 300.0;
            node.observe(&anchor, 0.3, rtt, &mut rng);
            assert!(node.coord().height >= 0.0);
        }
    }

    #[test]
    fn two_nodes_find_their_distance() {
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = VivaldiConfig::default();
        let mut a = VivaldiNode::new(&cfg, &mut rng);
        let mut b = VivaldiNode::new(&cfg, &mut rng);
        let true_rtt = 40_000.0;
        for _ in 0..200 {
            let (bc, be) = (b.coord().clone(), b.error());
            a.observe(&bc, be, true_rtt, &mut rng);
            let (ac, ae) = (a.coord().clone(), a.error());
            b.observe(&ac, ae, true_rtt, &mut rng);
        }
        let predicted = a.predict(b.coord());
        assert!(
            (predicted - true_rtt).abs() / true_rtt < 0.1,
            "predicted {predicted} vs {true_rtt}"
        );
    }
}
