//! A small Nelder–Mead downhill-simplex minimiser.
//!
//! GNP solves two least-squares embeddings (landmark-landmark, then
//! host-landmarks); the original paper uses the downhill simplex because the
//! objective is cheap, low-dimensional and non-smooth at coincidence points.
//! This is a faithful, dependency-free implementation with the standard
//! reflection/expansion/contraction/shrink moves.

/// Termination and move coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadConfig {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Stop when the simplex's objective spread falls below this.
    pub tolerance: f64,
    /// Initial simplex edge length around the starting point.
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        Self {
            max_evals: 2_000,
            tolerance: 1e-9,
            initial_step: 1.0,
        }
    }
}

/// Minimises `f` starting from `x0`, returning `(argmin, min)`.
pub fn nelder_mead(
    f: impl Fn(&[f64]) -> f64,
    x0: &[f64],
    config: &NelderMeadConfig,
) -> (Vec<f64>, f64) {
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let n = x0.len();
    assert!(n > 0, "cannot optimise a zero-dimensional point");
    let mut evals = 0usize;
    let eval = |x: &[f64], evals: &mut usize| {
        *evals += 1;
        f(x)
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = x0.to_vec();
    let f0 = eval(&v0, &mut evals);
    simplex.push((v0, f0));
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += config.initial_step;
        let fv = eval(&v, &mut evals);
        simplex.push((v, fv));
    }

    while evals < config.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective not NaN"));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() < config.tolerance {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (v, _) in &simplex[..n] {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }
        let worst_point = simplex[n].0.clone();
        let second_worst = simplex[n - 1].1;

        let blend = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let reflected = blend(&centroid, &worst_point, -ALPHA);
        let f_ref = eval(&reflected, &mut evals);
        if f_ref < best {
            // Expansion.
            let expanded = blend(&centroid, &worst_point, -GAMMA);
            let f_exp = eval(&expanded, &mut evals);
            simplex[n] = if f_exp < f_ref {
                (expanded, f_exp)
            } else {
                (reflected, f_ref)
            };
            continue;
        }
        if f_ref < second_worst {
            simplex[n] = (reflected, f_ref);
            continue;
        }
        // Contraction (towards the worst point).
        let contracted = blend(&centroid, &worst_point, RHO);
        let f_con = eval(&contracted, &mut evals);
        if f_con < simplex[n].1 {
            simplex[n] = (contracted, f_con);
            continue;
        }
        // Shrink everything towards the best point.
        let best_point = simplex[0].0.clone();
        for entry in &mut simplex[1..] {
            entry.0 = blend(&best_point, &entry.0, SIGMA);
            entry.1 = eval(&entry.0, &mut evals);
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective not NaN"));
    let (argmin, min) = simplex.swap_remove(0);
    (argmin, min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic_bowl() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let (x, fx) = nelder_mead(f, &[0.0, 0.0], &NelderMeadConfig::default());
        assert!(fx < 1e-6, "fx = {fx}");
        assert!((x[0] - 3.0).abs() < 1e-3);
        assert!((x[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn minimises_rosenbrock_reasonably() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let cfg = NelderMeadConfig {
            max_evals: 10_000,
            ..Default::default()
        };
        let (x, fx) = nelder_mead(f, &[-1.2, 1.0], &cfg);
        assert!(fx < 1e-4, "fx = {fx}, x = {x:?}");
    }

    #[test]
    fn respects_eval_budget() {
        use std::cell::Cell;
        let count = Cell::new(0usize);
        let f = |x: &[f64]| {
            count.set(count.get() + 1);
            x[0] * x[0]
        };
        let cfg = NelderMeadConfig {
            max_evals: 50,
            ..Default::default()
        };
        let _ = nelder_mead(f, &[100.0], &cfg);
        // Budget may be exceeded by at most one in-flight iteration's evals.
        assert!(count.get() <= 55, "evals = {}", count.get());
    }

    #[test]
    fn one_dimensional() {
        let f = |x: &[f64]| (x[0] - 7.0).abs();
        let (x, fx) = nelder_mead(f, &[0.0], &NelderMeadConfig::default());
        assert!(fx < 1e-3);
        assert!((x[0] - 7.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn zero_dim_panics() {
        let _ = nelder_mead(|_| 0.0, &[], &NelderMeadConfig::default());
    }
}
