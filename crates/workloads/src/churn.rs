//! Churn traces: joins and leaves over time (future-work W3).

use crate::arrivals::ArrivalProcess;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happens at a churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// The peer joins.
    Join,
    /// The peer leaves gracefully (sends a Leave).
    Leave,
    /// The peer fails silently (a "faulty peer": no Leave message).
    Fail,
}

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Simulated time in microseconds.
    pub time_us: u64,
    /// Dense peer index (0-based; the experiment maps these to `PeerId`s).
    pub peer: usize,
    /// Join, leave, or silent failure.
    pub kind: ChurnEventKind,
}

/// Churn generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of peers over the whole trace.
    pub peers: usize,
    /// Arrival process of the joins.
    pub arrivals: ArrivalProcess,
    /// Mean session length in seconds (exponentially distributed);
    /// `None` = peers never leave (the paper's static setting).
    pub mean_lifetime_secs: Option<f64>,
    /// Fraction of departures that are silent failures instead of graceful
    /// leaves.
    pub failure_fraction: f64,
}

/// A generated, time-sorted churn schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnTrace {
    /// Events sorted by time (joins before leaves at equal times).
    pub events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// Generates a trace (deterministic per seed).
    pub fn generate(config: &ChurnConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let joins = config.arrivals.times(config.peers, seed ^ 0x6a6f696e);
        let mut events: Vec<ChurnEvent> = Vec::with_capacity(config.peers * 2);
        for (peer, &t) in joins.iter().enumerate() {
            events.push(ChurnEvent {
                time_us: t,
                peer,
                kind: ChurnEventKind::Join,
            });
            if let Some(mean) = config.mean_lifetime_secs {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let life_us = (-u.ln() * mean * 1e6) as u64;
                let kind = if rng.gen::<f64>() < config.failure_fraction {
                    ChurnEventKind::Fail
                } else {
                    ChurnEventKind::Leave
                };
                events.push(ChurnEvent {
                    time_us: t.saturating_add(life_us.max(1)),
                    peer,
                    kind,
                });
            }
        }
        events.sort_by_key(|e| (e.time_us, e.peer, e.kind != ChurnEventKind::Join));
        Self { events }
    }

    /// The time of the last event, or 0 for an empty trace.
    pub fn span_us(&self) -> u64 {
        self.events.last().map(|e| e.time_us).unwrap_or(0)
    }

    /// Splits the trace into consecutive fixed-width time windows — the
    /// epoch grid a batched churn replay drives heartbeat epochs and lease
    /// expiry on. Yields `(window_index, events)` for every **non-empty**
    /// window, in time order; `window_index` is `time_us / width_us`, so
    /// gaps in a bursty trace are visible to the caller. Every event lands
    /// in exactly one window, and a peer's join always precedes its
    /// departure within a window (the generator orders equal-time events
    /// join-first).
    ///
    /// # Panics
    /// On `width_us == 0`.
    pub fn windows(&self, width_us: u64) -> impl Iterator<Item = (u64, &[ChurnEvent])> + '_ {
        assert!(width_us > 0, "window width must be positive");
        let mut start = 0usize;
        std::iter::from_fn(move || {
            if start >= self.events.len() {
                return None;
            }
            let idx = self.events[start].time_us / width_us;
            let mut end = start + 1;
            while end < self.events.len() && self.events[end].time_us / width_us == idx {
                end += 1;
            }
            let slice = &self.events[start..end];
            start = end;
            Some((idx, slice))
        })
    }

    /// Number of peers concurrently alive at `time_us`.
    pub fn population_at(&self, time_us: u64) -> usize {
        let mut alive = 0usize;
        for e in &self.events {
            if e.time_us > time_us {
                break;
            }
            match e.kind {
                ChurnEventKind::Join => alive += 1,
                ChurnEventKind::Leave | ChurnEventKind::Fail => alive = alive.saturating_sub(1),
            }
        }
        alive
    }

    /// The largest population reached over the trace.
    pub fn peak_population(&self) -> usize {
        let mut alive = 0usize;
        let mut peak = 0usize;
        for e in &self.events {
            match e.kind {
                ChurnEventKind::Join => alive += 1,
                ChurnEventKind::Leave | ChurnEventKind::Fail => alive = alive.saturating_sub(1),
            }
            peak = peak.max(alive);
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> ChurnConfig {
        ChurnConfig {
            peers: 100,
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 20.0 },
            mean_lifetime_secs: Some(10.0),
            failure_fraction: 0.3,
        }
    }

    #[test]
    fn every_peer_joins_once_and_departs_once() {
        let trace = ChurnTrace::generate(&base_config(), 5);
        let joins = trace
            .events
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Join)
            .count();
        let departs = trace.events.len() - joins;
        assert_eq!(joins, 100);
        assert_eq!(departs, 100);
        // Each peer departs after it joins.
        for p in 0..100 {
            let join = trace
                .events
                .iter()
                .find(|e| e.peer == p && e.kind == ChurnEventKind::Join)
                .unwrap();
            let depart = trace
                .events
                .iter()
                .find(|e| e.peer == p && e.kind != ChurnEventKind::Join)
                .unwrap();
            assert!(depart.time_us > join.time_us, "peer {p}");
        }
    }

    #[test]
    fn failure_fraction_roughly_respected() {
        let trace = ChurnTrace::generate(&base_config(), 11);
        let fails = trace
            .events
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Fail)
            .count();
        assert!((15..=45).contains(&fails), "fails = {fails} of 100");
    }

    #[test]
    fn static_setting_never_leaves() {
        let cfg = ChurnConfig {
            mean_lifetime_secs: None,
            ..base_config()
        };
        let trace = ChurnTrace::generate(&cfg, 3);
        assert_eq!(trace.events.len(), 100);
        assert!(trace.events.iter().all(|e| e.kind == ChurnEventKind::Join));
        assert_eq!(trace.population_at(u64::MAX), 100);
        assert_eq!(trace.peak_population(), 100);
    }

    #[test]
    fn events_sorted_and_population_consistent() {
        let trace = ChurnTrace::generate(&base_config(), 9);
        assert!(trace
            .events
            .windows(2)
            .all(|w| w[0].time_us <= w[1].time_us));
        assert!(trace.peak_population() <= 100);
        assert!(trace.peak_population() >= 1);
        // After the last event everyone is gone.
        assert_eq!(trace.population_at(u64::MAX), 0);
    }

    #[test]
    fn windows_partition_the_trace() {
        let trace = ChurnTrace::generate(&base_config(), 7);
        let width = 250_000u64;
        let mut seen = 0usize;
        let mut last_idx = None;
        for (idx, events) in trace.windows(width) {
            assert!(!events.is_empty());
            assert!(last_idx < Some(idx) || last_idx.is_none(), "indices ascend");
            for e in events {
                assert_eq!(e.time_us / width, idx, "event in its own window");
            }
            seen += events.len();
            last_idx = Some(idx);
        }
        assert_eq!(
            seen,
            trace.events.len(),
            "every event in exactly one window"
        );
        // A window spanning the whole trace yields one slice.
        let all: Vec<_> = trace.windows(trace.span_us() + 1).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1.len(), trace.events.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = base_config();
        assert_eq!(ChurnTrace::generate(&cfg, 2), ChurnTrace::generate(&cfg, 2));
        assert_ne!(ChurnTrace::generate(&cfg, 2), ChurnTrace::generate(&cfg, 3));
    }
}
