//! Region-biased churn + mobility traces for federated directories.
//!
//! A multi-region deployment does not see uniform traffic: populations
//! concentrate in a few regions (the *home skew*), peers churn with the
//! usual exponential lifetimes, and a mobile subset re-attaches over its
//! lifetime — mostly bouncing between nearby attachments and its home
//! region (the *return bias*), occasionally roaming further. This
//! generator produces exactly that shape as one time-sorted event stream
//! a federated replay can window into heartbeat epochs, the same way
//! [`crate::ChurnTrace`] drives the single-server churn soak.

use crate::arrivals::ArrivalProcess;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happens at a federated trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FederatedEventKind {
    /// The peer joins in its home region.
    Join,
    /// The peer re-attaches in another (or the same) region — a handover.
    Move {
        /// The region the peer moves to.
        to_region: u32,
    },
    /// The peer leaves gracefully.
    Leave,
    /// The peer fails silently (no Leave — leases must catch it).
    Fail,
}

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FederatedEvent {
    /// Simulated time in microseconds.
    pub time_us: u64,
    /// Dense peer index.
    pub peer: usize,
    /// Join / move / leave / fail.
    pub kind: FederatedEventKind,
}

/// Federated trace parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FederatedChurnConfig {
    /// Number of peers over the trace.
    pub peers: usize,
    /// Number of regions events refer to.
    pub regions: usize,
    /// Arrival process of the joins.
    pub arrivals: ArrivalProcess,
    /// Mean session length in seconds (exponential); `None` = static.
    pub mean_lifetime_secs: Option<f64>,
    /// Fraction of departures that fail silently instead of leaving.
    pub failure_fraction: f64,
    /// Home-region skew ∈ [0, 1): 0 spreads homes uniformly, values near
    /// 1 concentrate them geometrically in the low-numbered regions
    /// (region r drawn with weight ∝ `(1 - skew)^r`).
    pub home_skew: f64,
    /// Fraction of peers that are mobile (re-attach during their
    /// session).
    pub mobile_fraction: f64,
    /// Mean dwell time between a mobile peer's moves, seconds
    /// (exponential).
    pub mean_dwell_secs: f64,
    /// Probability a move returns the peer to its **home** region;
    /// otherwise the destination is uniform over the other regions.
    pub return_home_bias: f64,
}

/// A generated, time-sorted federated schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedTrace {
    /// Regions the events refer to (`0..regions`).
    pub regions: usize,
    /// Home region per peer (index = dense peer id).
    pub home: Vec<u32>,
    /// Events sorted by time (a peer's join precedes its other events).
    pub events: Vec<FederatedEvent>,
}

impl FederatedTrace {
    /// Generates a trace (deterministic per seed).
    pub fn generate(config: &FederatedChurnConfig, seed: u64) -> Self {
        assert!(config.regions >= 1, "need at least one region");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfed_e8a7e);
        let joins = config.arrivals.times(config.peers, seed ^ 0x6a6f696e);
        // Geometric home weights: w_r ∝ (1 - skew)^r, flat at skew = 0.
        let decay = (1.0 - config.home_skew).clamp(f64::EPSILON, 1.0);
        let weights: Vec<f64> = (0..config.regions).map(|r| decay.powi(r as i32)).collect();
        let total_w: f64 = weights.iter().sum();
        let mut home = Vec::with_capacity(config.peers);
        let mut events: Vec<FederatedEvent> = Vec::with_capacity(config.peers * 3);
        for (peer, &t_join) in joins.iter().enumerate() {
            let mut pick = rng.gen::<f64>() * total_w;
            let mut home_region = config.regions - 1;
            for (r, &w) in weights.iter().enumerate() {
                if pick < w {
                    home_region = r;
                    break;
                }
                pick -= w;
            }
            home.push(home_region as u32);
            events.push(FederatedEvent {
                time_us: t_join,
                peer,
                kind: FederatedEventKind::Join,
            });
            let depart = config.mean_lifetime_secs.map(|mean| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let life_us = ((-u.ln() * mean * 1e6) as u64).max(1);
                let kind = if rng.gen::<f64>() < config.failure_fraction {
                    FederatedEventKind::Fail
                } else {
                    FederatedEventKind::Leave
                };
                (t_join.saturating_add(life_us), kind)
            });
            // Mobility: moves strictly inside (join, depart).
            if config.regions > 1 && rng.gen::<f64>() < config.mobile_fraction {
                let horizon = depart.map(|(t, _)| t).unwrap_or(u64::MAX);
                let mut t = t_join;
                loop {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let dwell = ((-u.ln() * config.mean_dwell_secs * 1e6) as u64).max(1);
                    t = t.saturating_add(dwell);
                    if t >= horizon {
                        break;
                    }
                    let to_region = if rng.gen::<f64>() < config.return_home_bias {
                        home_region as u32
                    } else {
                        // Uniform over the *other* regions.
                        let mut r = rng.gen_range(0..config.regions - 1) as u32;
                        if r >= home_region as u32 {
                            r += 1;
                        }
                        r
                    };
                    events.push(FederatedEvent {
                        time_us: t,
                        peer,
                        kind: FederatedEventKind::Move { to_region },
                    });
                }
            }
            if let Some((t, kind)) = depart {
                events.push(FederatedEvent {
                    time_us: t,
                    peer,
                    kind,
                });
            }
        }
        // Joins first at equal times, departures last, moves in between.
        events.sort_by_key(|e| {
            let order = match e.kind {
                FederatedEventKind::Join => 0u8,
                FederatedEventKind::Move { .. } => 1,
                FederatedEventKind::Leave | FederatedEventKind::Fail => 2,
            };
            (e.time_us, e.peer, order)
        });
        Self {
            regions: config.regions,
            home,
            events,
        }
    }

    /// The time of the last event, or 0 for an empty trace.
    pub fn span_us(&self) -> u64 {
        self.events.last().map(|e| e.time_us).unwrap_or(0)
    }

    /// Move events in the trace.
    pub fn n_moves(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FederatedEventKind::Move { .. }))
            .count()
    }

    /// Splits the trace into consecutive fixed-width time windows — the
    /// heartbeat-epoch grid of a federated replay, mirroring
    /// [`crate::ChurnTrace::windows`]. Yields `(window_index, events)` for
    /// every non-empty window in time order.
    ///
    /// # Panics
    /// On `width_us == 0`.
    pub fn windows(&self, width_us: u64) -> impl Iterator<Item = (u64, &[FederatedEvent])> + '_ {
        assert!(width_us > 0, "window width must be positive");
        let mut start = 0usize;
        std::iter::from_fn(move || {
            if start >= self.events.len() {
                return None;
            }
            let idx = self.events[start].time_us / width_us;
            let mut end = start + 1;
            while end < self.events.len() && self.events[end].time_us / width_us == idx {
                end += 1;
            }
            let slice = &self.events[start..end];
            start = end;
            Some((idx, slice))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> FederatedChurnConfig {
        FederatedChurnConfig {
            peers: 300,
            regions: 4,
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 30.0 },
            mean_lifetime_secs: Some(20.0),
            failure_fraction: 0.3,
            home_skew: 0.5,
            mobile_fraction: 0.4,
            mean_dwell_secs: 6.0,
            return_home_bias: 0.5,
        }
    }

    #[test]
    fn every_peer_joins_once_and_departs_once() {
        let trace = FederatedTrace::generate(&base_config(), 5);
        let joins = trace
            .events
            .iter()
            .filter(|e| e.kind == FederatedEventKind::Join)
            .count();
        let departs = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, FederatedEventKind::Leave | FederatedEventKind::Fail))
            .count();
        assert_eq!(joins, 300);
        assert_eq!(departs, 300);
        assert_eq!(trace.home.len(), 300);
        assert!(trace.home.iter().all(|&h| h < 4));
        assert!(trace
            .events
            .windows(2)
            .all(|w| w[0].time_us <= w[1].time_us));
    }

    #[test]
    fn moves_target_valid_regions_within_the_session() {
        let trace = FederatedTrace::generate(&base_config(), 9);
        assert!(trace.n_moves() > 0, "a mobile 40% must move");
        // Per peer: all moves fall strictly between join and departure.
        for p in 0..300usize {
            let join = trace
                .events
                .iter()
                .find(|e| e.peer == p && e.kind == FederatedEventKind::Join)
                .unwrap()
                .time_us;
            let depart = trace
                .events
                .iter()
                .find(|e| {
                    e.peer == p
                        && matches!(e.kind, FederatedEventKind::Leave | FederatedEventKind::Fail)
                })
                .unwrap()
                .time_us;
            for e in trace.events.iter().filter(|e| e.peer == p) {
                if let FederatedEventKind::Move { to_region } = e.kind {
                    assert!((to_region as usize) < trace.regions);
                    assert!(e.time_us > join && e.time_us < depart, "peer {p}");
                }
            }
        }
    }

    #[test]
    fn home_skew_concentrates_low_regions() {
        let flat = FederatedTrace::generate(
            &FederatedChurnConfig {
                home_skew: 0.0,
                ..base_config()
            },
            3,
        );
        let skewed = FederatedTrace::generate(
            &FederatedChurnConfig {
                home_skew: 0.8,
                ..base_config()
            },
            3,
        );
        let share0 = |t: &FederatedTrace| {
            t.home.iter().filter(|&&h| h == 0).count() as f64 / t.home.len() as f64
        };
        assert!(share0(&flat) < 0.40, "flat: {}", share0(&flat));
        assert!(
            share0(&skewed) > share0(&flat) + 0.2,
            "skew must concentrate region 0: {} vs {}",
            share0(&skewed),
            share0(&flat)
        );
    }

    #[test]
    fn return_bias_pulls_moves_home() {
        let cfg = FederatedChurnConfig {
            return_home_bias: 1.0,
            ..base_config()
        };
        let trace = FederatedTrace::generate(&cfg, 7);
        for e in &trace.events {
            if let FederatedEventKind::Move { to_region } = e.kind {
                assert_eq!(to_region, trace.home[e.peer], "bias 1.0 = always home");
            }
        }
    }

    #[test]
    fn single_region_never_moves() {
        let cfg = FederatedChurnConfig {
            regions: 1,
            ..base_config()
        };
        let trace = FederatedTrace::generate(&cfg, 2);
        assert_eq!(trace.n_moves(), 0);
        assert!(trace.home.iter().all(|&h| h == 0));
    }

    #[test]
    fn windows_partition_the_trace() {
        let trace = FederatedTrace::generate(&base_config(), 11);
        let width = 500_000u64;
        let seen: usize = trace.windows(width).map(|(_, ev)| ev.len()).sum();
        assert_eq!(seen, trace.events.len());
        for (idx, events) in trace.windows(width) {
            assert!(!events.is_empty());
            assert!(events.iter().all(|e| e.time_us / width == idx));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = base_config();
        assert_eq!(
            FederatedTrace::generate(&cfg, 4),
            FederatedTrace::generate(&cfg, 4)
        );
        assert_ne!(
            FederatedTrace::generate(&cfg, 4),
            FederatedTrace::generate(&cfg, 5)
        );
    }
}
