//! Cartesian-product parameter sweeps.

/// A tiny helper enumerating the cartesian product of two parameter axes
/// crossed with a seed list — the shape of every experiment sweep in the
/// bench harness.
///
/// ```
/// use nearpeer_workloads::Sweep;
/// let sweep = Sweep::new(vec![600usize, 800], vec!["a", "b"], 2);
/// let points: Vec<_> = sweep.points().collect();
/// assert_eq!(points.len(), 2 * 2 * 2);
/// assert_eq!(points[0], (&600, &"a", 0));
/// ```
#[derive(Debug, Clone)]
pub struct Sweep<A, B> {
    xs: Vec<A>,
    ys: Vec<B>,
    seeds: u64,
}

impl<A, B> Sweep<A, B> {
    /// Creates a sweep over `xs × ys × 0..seeds`.
    pub fn new(xs: Vec<A>, ys: Vec<B>, seeds: u64) -> Self {
        Self { xs, ys, seeds }
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.xs.len() * self.ys.len() * self.seeds as usize
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates `(x, y, seed)` in x-major, then y, then seed order.
    pub fn points(&self) -> impl Iterator<Item = (&A, &B, u64)> + '_ {
        self.xs.iter().flat_map(move |x| {
            self.ys
                .iter()
                .flat_map(move |y| (0..self.seeds).map(move |s| (x, y, s)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_product() {
        let sweep = Sweep::new(vec![1, 2, 3], vec!['x'], 2);
        let pts: Vec<_> = sweep.points().collect();
        assert_eq!(sweep.len(), 6);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], (&1, &'x', 0));
        assert_eq!(pts[1], (&1, &'x', 1));
        assert_eq!(pts[2], (&2, &'x', 0));
    }

    #[test]
    fn empty_axes() {
        let sweep: Sweep<i32, char> = Sweep::new(vec![], vec!['x'], 3);
        assert!(sweep.is_empty());
        assert_eq!(sweep.points().count(), 0);
    }
}
