//! Peer arrival processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// When peers join the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ArrivalProcess {
    /// Everyone joins at time 0 (the paper's static initialisation).
    Batch,
    /// One join every `interval_us` microseconds.
    Uniform {
        /// Spacing between consecutive joins.
        interval_us: u64,
    },
    /// Poisson arrivals at `rate_per_sec` (exponential inter-arrivals) —
    /// the standard model for flash-crowd-free live streaming joins.
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
}

impl ArrivalProcess {
    /// The arrival times (microseconds, non-decreasing) of `n` peers.
    pub fn times(&self, n: usize, seed: u64) -> Vec<u64> {
        match *self {
            ArrivalProcess::Batch => vec![0; n],
            ArrivalProcess::Uniform { interval_us } => {
                (0..n as u64).map(|i| i * interval_us).collect()
            }
            ArrivalProcess::Poisson { rate_per_sec } => {
                let rate = rate_per_sec.max(1e-9);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        t += -u.ln() / rate * 1_000_000.0;
                        t as u64
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_all_zero() {
        assert_eq!(ArrivalProcess::Batch.times(3, 1), vec![0, 0, 0]);
    }

    #[test]
    fn uniform_spacing() {
        let t = ArrivalProcess::Uniform { interval_us: 500 }.times(4, 1);
        assert_eq!(t, vec![0, 500, 1000, 1500]);
    }

    #[test]
    fn poisson_monotone_and_mean_rate() {
        let rate = 50.0; // 50 joins/sec → mean gap 20ms
        let t = ArrivalProcess::Poisson { rate_per_sec: rate }.times(2_000, 42);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        let total_secs = *t.last().unwrap() as f64 / 1e6;
        let empirical_rate = t.len() as f64 / total_secs;
        assert!(
            (empirical_rate - rate).abs() / rate < 0.15,
            "empirical rate {empirical_rate} too far from {rate}"
        );
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        let a = ArrivalProcess::Poisson { rate_per_sec: 10.0 }.times(50, 7);
        let b = ArrivalProcess::Poisson { rate_per_sec: 10.0 }.times(50, 7);
        let c = ArrivalProcess::Poisson { rate_per_sec: 10.0 }.times(50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_peers() {
        for p in [
            ArrivalProcess::Batch,
            ArrivalProcess::Uniform { interval_us: 10 },
            ArrivalProcess::Poisson { rate_per_sec: 1.0 },
        ] {
            assert!(p.times(0, 1).is_empty());
        }
    }
}
