//! Mobility traces: peers re-attaching at new access routers (W3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Mobility generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityConfig {
    /// Number of peers in the population.
    pub peers: usize,
    /// Fraction of peers that are mobile.
    pub mobile_fraction: f64,
    /// Mean time between a mobile peer's moves, in seconds (exponential).
    pub mean_dwell_secs: f64,
    /// Trace horizon in seconds.
    pub horizon_secs: f64,
}

/// One handover: at `time_us`, `peer` re-attaches somewhere new (the
/// experiment picks the new access router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveEvent {
    /// Simulated time in microseconds.
    pub time_us: u64,
    /// Dense peer index.
    pub peer: usize,
}

/// A generated, time-sorted mobility schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityTrace {
    /// Handover events sorted by time.
    pub events: Vec<MoveEvent>,
}

impl MobilityTrace {
    /// Generates a trace (deterministic per seed). Which peers are mobile
    /// is part of the draw.
    pub fn generate(config: &MobilityConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon_us = (config.horizon_secs * 1e6) as u64;
        let mut events = Vec::new();
        for peer in 0..config.peers {
            if rng.gen::<f64>() >= config.mobile_fraction {
                continue;
            }
            let mut t = 0u64;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let dwell = (-u.ln() * config.mean_dwell_secs * 1e6) as u64;
                t = t.saturating_add(dwell.max(1));
                if t > horizon_us {
                    break;
                }
                events.push(MoveEvent { time_us: t, peer });
            }
        }
        events.sort_by_key(|e| (e.time_us, e.peer));
        Self { events }
    }

    /// Number of distinct peers that move at least once.
    pub fn n_mobile_peers(&self) -> usize {
        let mut peers: Vec<usize> = self.events.iter().map(|e| e.peer).collect();
        peers.sort_unstable();
        peers.dedup();
        peers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MobilityConfig {
        MobilityConfig {
            peers: 200,
            mobile_fraction: 0.25,
            mean_dwell_secs: 5.0,
            horizon_secs: 60.0,
        }
    }

    #[test]
    fn respects_horizon_and_order() {
        let trace = MobilityTrace::generate(&config(), 3);
        assert!(!trace.events.is_empty());
        assert!(trace.events.iter().all(|e| e.time_us <= 60_000_000));
        assert!(trace
            .events
            .windows(2)
            .all(|w| w[0].time_us <= w[1].time_us));
    }

    #[test]
    fn mobile_fraction_roughly_respected() {
        let trace = MobilityTrace::generate(&config(), 7);
        let mobile = trace.n_mobile_peers();
        // 25% of 200 = 50 expected; allow generous slack (a mobile peer
        // whose first dwell exceeds the horizon never shows up).
        assert!((25..=75).contains(&mobile), "mobile peers = {mobile}");
    }

    #[test]
    fn dwell_time_scales_event_count() {
        let fast = MobilityTrace::generate(
            &MobilityConfig {
                mean_dwell_secs: 2.0,
                ..config()
            },
            5,
        );
        let slow = MobilityTrace::generate(
            &MobilityConfig {
                mean_dwell_secs: 20.0,
                ..config()
            },
            5,
        );
        assert!(
            fast.events.len() > slow.events.len(),
            "{} <= {}",
            fast.events.len(),
            slow.events.len()
        );
    }

    #[test]
    fn zero_mobility() {
        let trace = MobilityTrace::generate(
            &MobilityConfig {
                mobile_fraction: 0.0,
                ..config()
            },
            1,
        );
        assert!(trace.events.is_empty());
        assert_eq!(trace.n_mobile_peers(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = config();
        assert_eq!(
            MobilityTrace::generate(&cfg, 2),
            MobilityTrace::generate(&cfg, 2)
        );
    }
}
