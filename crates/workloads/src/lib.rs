//! Workload generation for `nearpeer` experiments.
//!
//! The paper's evaluation (§3) initialises a static overlay of `n` peers;
//! its future-work section adds churn ("faulty peers"), mobility
//! ("handover") and landmark management studies. This crate generates the
//! corresponding deterministic workload traces:
//!
//! * [`ArrivalProcess`] — when peers join (batch, uniform, Poisson);
//! * [`ChurnTrace`] — join/leave schedules with exponential lifetimes (W3);
//! * [`MobilityTrace`] — handover events for moving peers (W3);
//! * [`FederatedTrace`] — region-biased churn + mobility for multi-region
//!   federations (skewed home regions, moves with return-home bias);
//! * [`Sweep`] — tiny cartesian-product helper for parameter sweeps.
//!
//! All generators take an explicit seed and are bit-reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod churn;
mod federation;
mod mobility;
mod sweep;

pub use arrivals::ArrivalProcess;
pub use churn::{ChurnConfig, ChurnEvent, ChurnEventKind, ChurnTrace};
pub use federation::{FederatedChurnConfig, FederatedEvent, FederatedEventKind, FederatedTrace};
pub use mobility::{MobilityConfig, MobilityTrace, MoveEvent};
pub use sweep::Sweep;
