//! Generalized Linear Preference model (Bu & Towsley, INFOCOM 2002).
//!
//! GLP extends BA with a shifted preference `Π(i) ∝ d_i − β` and a mixing
//! probability `p` of adding links between existing routers instead of a new
//! router. With the published parameters (`m = 1.13 ≈ 1`, `p ≈ 0.47`,
//! `β ≈ 0.64`) it reproduces the measured router-level Internet degree
//! exponent (≈ 2.2) much better than plain BA — which is why the nem-like
//! mapper profile uses a GLP core.

use crate::{RouterId, Topology, TopologyBuilder, TopologyError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the GLP model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlpConfig {
    /// Total number of routers.
    pub n: usize,
    /// Links per arriving router (`m >= 1`).
    pub m: usize,
    /// Probability of an "add links between existing routers" step.
    pub p: f64,
    /// Preference shift (`β < 1`); larger β strengthens the rich-get-richer
    /// effect.
    pub beta: f64,
}

impl GlpConfig {
    /// Literature parameters for Internet-like graphs, at the given size.
    pub fn default_with_n(n: usize) -> Self {
        Self {
            n,
            m: 1,
            p: 0.4695,
            beta: 0.6447,
        }
    }
}

/// Generates a connected GLP graph.
pub fn glp(config: &GlpConfig, seed: u64) -> Result<Topology, TopologyError> {
    if config.m == 0 {
        return Err(TopologyError::InvalidConfig("GLP requires m >= 1".into()));
    }
    if !(0.0..1.0).contains(&config.p) {
        return Err(TopologyError::InvalidConfig(format!(
            "GLP requires 0 <= p < 1 (got {})",
            config.p
        )));
    }
    if config.beta >= 1.0 {
        return Err(TopologyError::InvalidConfig(format!(
            "GLP requires beta < 1 (got {})",
            config.beta
        )));
    }
    let m0 = (config.m + 1).max(2);
    if config.n < m0 {
        return Err(TopologyError::InvalidConfig(format!(
            "GLP requires n >= {m0} (got {})",
            config.n
        )));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TopologyBuilder::with_routers(config.n);
    let mut degree = vec![0usize; config.n];
    let mut alive = m0; // routers added to the graph so far

    // Seed: a path over the first m0 routers (connected, low degree).
    for i in 0..(m0 - 1) {
        builder
            .link(RouterId(i as u32), RouterId(i as u32 + 1), 1000)
            .expect("seed ids in range");
        degree[i] += 1;
        degree[i + 1] += 1;
    }

    // Weighted sample of an existing router with weight d_i − β, optionally
    // excluding one router and a set of already-picked ids.
    let sample = |rng: &mut StdRng,
                  degree: &[usize],
                  alive: usize,
                  exclude: Option<RouterId>,
                  taken: &[RouterId]|
     -> Option<RouterId> {
        let beta = config.beta;
        let mut total = 0.0f64;
        for (i, &d) in degree.iter().enumerate().take(alive) {
            let id = RouterId(i as u32);
            if Some(id) == exclude || taken.contains(&id) {
                continue;
            }
            total += d as f64 - beta;
        }
        if total <= 0.0 {
            return None;
        }
        let mut x = rng.gen_range(0.0..total);
        for (i, &d) in degree.iter().enumerate().take(alive) {
            let id = RouterId(i as u32);
            if Some(id) == exclude || taken.contains(&id) {
                continue;
            }
            x -= d as f64 - beta;
            if x <= 0.0 {
                return Some(id);
            }
        }
        // Floating-point slack: fall back to the last eligible router.
        (0..alive)
            .rev()
            .map(|i| RouterId(i as u32))
            .find(|id| Some(*id) != exclude && !taken.contains(id))
    };

    while alive < config.n {
        if rng.gen_bool(config.p) && alive >= 3 {
            // Add m links between existing routers.
            for _ in 0..config.m {
                let Some(a) = sample(&mut rng, &degree, alive, None, &[]) else {
                    break;
                };
                let Some(b) = sample(&mut rng, &degree, alive, Some(a), &[]) else {
                    break;
                };
                if !builder.has_link(a, b) {
                    builder.link(a, b, 1000).expect("ids in range");
                    degree[a.index()] += 1;
                    degree[b.index()] += 1;
                }
            }
        } else {
            // Add a new router with m preferential links.
            let v = RouterId(alive as u32);
            let mut taken: Vec<RouterId> = Vec::with_capacity(config.m);
            for _ in 0..config.m.min(alive) {
                if let Some(u) = sample(&mut rng, &degree, alive, Some(v), &taken) {
                    builder.link(v, u, 1000).expect("ids in range");
                    degree[v.index()] += 1;
                    degree[u.index()] += 1;
                    taken.push(u);
                }
            }
            alive += 1;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{fit_power_law, is_connected, max_core_number};

    #[test]
    fn rejects_bad_params() {
        assert!(glp(
            &GlpConfig {
                n: 10,
                m: 0,
                p: 0.4,
                beta: 0.5
            },
            1
        )
        .is_err());
        assert!(glp(
            &GlpConfig {
                n: 10,
                m: 1,
                p: 1.0,
                beta: 0.5
            },
            1
        )
        .is_err());
        assert!(glp(
            &GlpConfig {
                n: 10,
                m: 1,
                p: 0.4,
                beta: 1.5
            },
            1
        )
        .is_err());
        assert!(glp(
            &GlpConfig {
                n: 1,
                m: 1,
                p: 0.4,
                beta: 0.5
            },
            1
        )
        .is_err());
    }

    #[test]
    fn connected_and_sized() {
        let t = glp(&GlpConfig::default_with_n(300), 11).unwrap();
        assert_eq!(t.n_routers(), 300);
        assert!(is_connected(&t));
    }

    #[test]
    fn internet_like_exponent() {
        let t = glp(&GlpConfig::default_with_n(4000), 3).unwrap();
        let degrees: Vec<usize> = t.routers().map(|r| t.degree(r)).collect();
        let alpha = fit_power_law(&degrees, 2).expect("enough samples");
        assert!(
            (1.8..3.0).contains(&alpha),
            "GLP exponent {alpha} not Internet-like"
        );
    }

    #[test]
    fn has_a_dense_core() {
        let t = glp(&GlpConfig::default_with_n(2000), 5).unwrap();
        // The extra existing-router links must create at least a 2-core.
        assert!(max_core_number(&t) >= 2);
    }

    #[test]
    fn deterministic() {
        let cfg = GlpConfig::default_with_n(150);
        assert_eq!(glp(&cfg, 9).unwrap(), glp(&cfg, 9).unwrap());
    }
}
