//! The "nem-like" mapper profile — the default substrate for the paper's
//! experiments.
//!
//! The *nem* mapper (Magoni & Hoerdt 2005) produces router-level maps whose
//! salient statistics are: a power-law degree distribution with exponent
//! around 2.2, a small dense core carrying most shortest paths, and a large
//! fringe of degree-1 access routers. This generator reproduces that shape
//! directly:
//!
//! 1. a GLP core of `core_size` routers (exponent ≈ 2.2);
//! 2. `access_count` degree-1 access routers, each connected to the core via
//!    a chain of 0–`max_chain` fresh aggregation routers (last-mile +
//!    regional aggregation), attached to a core router picked uniformly —
//!    matching how mapper traces hang singleton interfaces off the measured
//!    mesh.
//!
//! Peers attach to the degree-1 routers (paper §3), landmarks to
//! medium-degree routers.

use super::glp::{glp, GlpConfig};
use crate::{RouterId, Topology, TopologyBuilder, TopologyError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Literature GLP mixing probability for Internet-like cores.
pub const DEFAULT_GLP_P: f64 = 0.4695;
/// Literature GLP preference shift for Internet-like cores.
pub const DEFAULT_GLP_BETA: f64 = 0.6447;

/// Parameters of the mapper profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Routers in the GLP core mesh.
    pub core_size: usize,
    /// Degree-1 access routers to attach.
    pub access_count: usize,
    /// Maximum length of the aggregation chain between an access router and
    /// its core attachment (chain length is sampled uniformly in
    /// `0..=max_chain`).
    pub max_chain: usize,
    /// GLP mixing probability for the core.
    pub glp_p: f64,
    /// GLP preference shift for the core.
    pub glp_beta: f64,
}

impl MapperConfig {
    /// Default profile used by the paper-scale experiments (≈ 4.5k routers
    /// once aggregation chains are counted).
    pub fn paper_scale() -> Self {
        Self::with_access(1_500, 2_500)
    }

    /// A miniature profile for unit tests (≈ 200 routers).
    pub fn tiny() -> Self {
        Self::with_access(60, 80)
    }

    /// Profile with a custom core size and access-router budget (the F2
    /// sweep needs at least `n` degree-1 routers for `n` peers).
    pub fn with_access(core_size: usize, access_count: usize) -> Self {
        Self {
            core_size,
            access_count,
            max_chain: 2,
            glp_p: DEFAULT_GLP_P,
            glp_beta: DEFAULT_GLP_BETA,
        }
    }
}

/// Generates a mapper-profile topology.
///
/// Latencies: core links 1–10 ms, aggregation links 0.5–4 ms, access links
/// 0.2–2 ms (one-way, microsecond units).
pub fn mapper(config: &MapperConfig, seed: u64) -> Result<Topology, TopologyError> {
    if config.core_size < 3 {
        return Err(TopologyError::InvalidConfig(
            "mapper profile requires core_size >= 3".into(),
        ));
    }
    let core = glp(
        &GlpConfig {
            n: config.core_size,
            m: 1,
            p: config.glp_p,
            beta: config.glp_beta,
        },
        seed,
    )?;

    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d61_7070_6572); // "mapper"
    let mut b = TopologyBuilder::with_routers(config.core_size);
    // Copy the core with fresh core-class latencies.
    for (a, c, _) in core.links() {
        let lat = rng.gen_range(1_000..=10_000);
        b.link(a, c, lat).expect("core ids in range");
    }

    for _ in 0..config.access_count {
        let chain_len = if config.max_chain == 0 {
            0
        } else {
            rng.gen_range(0..=config.max_chain)
        };
        let mut attach = RouterId(rng.gen_range(0..config.core_size as u32));
        for _ in 0..chain_len {
            let agg = b.add_router();
            let lat = rng.gen_range(500..=4_000);
            b.link(agg, attach, lat).expect("ids in range");
            attach = agg;
        }
        let leaf = b.add_router();
        let lat = rng.gen_range(200..=2_000);
        b.link(leaf, attach, lat).expect("ids in range");
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{fit_power_law, is_connected, max_core_number};

    #[test]
    fn rejects_tiny_core() {
        let mut cfg = MapperConfig::tiny();
        cfg.core_size = 2;
        assert!(mapper(&cfg, 1).is_err());
    }

    #[test]
    fn connected_with_enough_access_routers() {
        let cfg = MapperConfig::tiny();
        let t = mapper(&cfg, 42).unwrap();
        assert!(is_connected(&t));
        assert!(t.access_routers().len() >= cfg.access_count);
    }

    #[test]
    fn chain_routers_have_degree_one_or_two() {
        let cfg = MapperConfig {
            core_size: 50,
            access_count: 40,
            max_chain: 3,
            glp_p: DEFAULT_GLP_P,
            glp_beta: DEFAULT_GLP_BETA,
        };
        let t = mapper(&cfg, 3).unwrap();
        // All non-core routers are aggregation-chain routers (degree 2) or
        // access leaves (degree 1).
        for r in t.routers().skip(cfg.core_size) {
            let d = t.degree(r);
            assert!(d == 1 || d == 2, "router {r} degree {d}");
        }
    }

    #[test]
    fn paper_scale_statistics() {
        let t = mapper(&MapperConfig::with_access(800, 1_600), 7).unwrap();
        assert!(is_connected(&t));
        assert!(t.access_routers().len() >= 1_600);
        let degrees: Vec<usize> = t.routers().map(|r| t.degree(r)).collect();
        let alpha = fit_power_law(&degrees, 2).expect("enough routers");
        assert!(
            (1.7..3.2).contains(&alpha),
            "mapper exponent {alpha} not Internet-like"
        );
        assert!(max_core_number(&t) >= 2, "mapper profile must have a core");
    }

    #[test]
    fn zero_chain_allowed() {
        let cfg = MapperConfig {
            core_size: 30,
            access_count: 20,
            max_chain: 0,
            glp_p: DEFAULT_GLP_P,
            glp_beta: DEFAULT_GLP_BETA,
        };
        let t = mapper(&cfg, 5).unwrap();
        assert_eq!(t.n_routers(), 50);
        assert!(is_connected(&t));
    }

    #[test]
    fn deterministic() {
        let cfg = MapperConfig::tiny();
        assert_eq!(mapper(&cfg, 9).unwrap(), mapper(&cfg, 9).unwrap());
    }
}
