//! Regular topologies for unit tests and analytical sanity checks.

use crate::{RouterId, Topology, TopologyBuilder};

/// A path of `n` routers: `0 - 1 - ... - n-1`.
pub fn line(n: usize) -> Topology {
    let mut b = TopologyBuilder::with_routers(n);
    for i in 0..n.saturating_sub(1) {
        b.link(RouterId(i as u32), RouterId(i as u32 + 1), 1_000)
            .expect("ids in range");
    }
    b.build()
}

/// A cycle of `n >= 3` routers (for n < 3, falls back to [`line`]).
pub fn ring(n: usize) -> Topology {
    if n < 3 {
        return line(n);
    }
    let mut b = TopologyBuilder::with_routers(n);
    for i in 0..n {
        b.link(RouterId(i as u32), RouterId(((i + 1) % n) as u32), 1_000)
            .expect("ids in range");
    }
    b.build()
}

/// A star: router 0 in the center, `n_leaves` degree-1 routers around it.
pub fn star(n_leaves: usize) -> Topology {
    let mut b = TopologyBuilder::with_routers(n_leaves + 1);
    for i in 1..=n_leaves {
        b.link(RouterId(0), RouterId(i as u32), 1_000)
            .expect("ids in range");
    }
    b.build()
}

/// A `w × h` grid; router `(x, y)` has id `y*w + x`.
pub fn grid(w: usize, h: usize) -> Topology {
    let mut b = TopologyBuilder::with_routers(w * h);
    let id = |x: usize, y: usize| RouterId((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.link(id(x, y), id(x + 1, y), 1_000).expect("ids in range");
            }
            if y + 1 < h {
                b.link(id(x, y), id(x, y + 1), 1_000).expect("ids in range");
            }
        }
    }
    b.build()
}

/// A complete balanced binary tree of the given `depth` (depth 0 = root
/// only); router 0 is the root, children of `i` are `2i+1`, `2i+2`.
pub fn binary_tree(depth: u32) -> Topology {
    let n = (1usize << (depth + 1)) - 1;
    let mut b = TopologyBuilder::with_routers(n);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                b.link(RouterId(i as u32), RouterId(child as u32), 1_000)
                    .expect("ids in range");
            }
        }
    }
    b.build()
}

/// The complete graph on `n` routers.
pub fn complete(n: usize) -> Topology {
    let mut b = TopologyBuilder::with_routers(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.link(RouterId(i as u32), RouterId(j as u32), 1_000)
                .expect("ids in range");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{exact_diameter, is_connected};

    #[test]
    fn line_shape() {
        let t = line(5);
        assert_eq!(t.n_links(), 4);
        assert_eq!(exact_diameter(&t), 4);
        assert_eq!(t.access_routers().len(), 2);
    }

    #[test]
    fn ring_shape() {
        let t = ring(6);
        assert_eq!(t.n_links(), 6);
        assert_eq!(exact_diameter(&t), 3);
        assert!(t.access_routers().is_empty());
        // Degenerate sizes fall back to a line.
        assert_eq!(ring(2).n_links(), 1);
    }

    #[test]
    fn star_shape() {
        let t = star(7);
        assert_eq!(t.degree(RouterId(0)), 7);
        assert_eq!(t.access_routers().len(), 7);
        assert_eq!(exact_diameter(&t), 2);
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 4);
        assert_eq!(t.n_routers(), 12);
        assert_eq!(t.n_links(), 3 * 3 + 2 * 4); // vertical + horizontal
        assert_eq!(exact_diameter(&t), 2 + 3);
        assert!(is_connected(&t));
    }

    #[test]
    fn tree_shape() {
        let t = binary_tree(3);
        assert_eq!(t.n_routers(), 15);
        assert_eq!(t.n_links(), 14);
        assert_eq!(t.access_routers().len(), 8); // the leaves
        assert_eq!(exact_diameter(&t), 6);
    }

    #[test]
    fn complete_shape() {
        let t = complete(5);
        assert_eq!(t.n_links(), 10);
        assert_eq!(exact_diameter(&t), 1);
    }
}
