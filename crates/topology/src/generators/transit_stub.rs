//! GT-ITM-style transit-stub hierarchy.

use crate::{RouterId, Topology, TopologyBuilder, TopologyError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the transit-stub hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitStubConfig {
    /// Number of transit (backbone) domains.
    pub transit_domains: usize,
    /// Routers per transit domain.
    pub transit_size: usize,
    /// Stub domains hanging off each transit router.
    pub stubs_per_transit_router: usize,
    /// Routers per stub domain.
    pub stub_size: usize,
    /// Probability of each extra intra-domain edge beyond the spanning tree.
    pub extra_edge_prob: f64,
    /// Degree-1 access routers attached to each stub domain.
    pub access_per_stub: usize,
}

impl TransitStubConfig {
    /// A small hierarchy for tests (≈ 100 routers).
    pub fn small() -> Self {
        Self {
            transit_domains: 2,
            transit_size: 4,
            stubs_per_transit_router: 2,
            stub_size: 3,
            extra_edge_prob: 0.3,
            access_per_stub: 2,
        }
    }
}

/// Generates a connected transit-stub topology.
///
/// Latencies follow the hierarchy: transit-transit links 5–20 ms,
/// transit-stub 2–8 ms, intra-stub 0.5–3 ms, access 0.2–1 ms.
pub fn transit_stub(config: &TransitStubConfig, seed: u64) -> Result<Topology, TopologyError> {
    if config.transit_domains == 0 || config.transit_size == 0 {
        return Err(TopologyError::InvalidConfig(
            "transit-stub requires at least one transit domain and router".into(),
        ));
    }
    if config.stub_size == 0 && config.access_per_stub > 0 {
        return Err(TopologyError::InvalidConfig(
            "access routers need a stub domain to attach to".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();

    let lat_tt = |rng: &mut StdRng| rng.gen_range(5_000..=20_000);
    let lat_ts = |rng: &mut StdRng| rng.gen_range(2_000..=8_000);
    let lat_ss = |rng: &mut StdRng| rng.gen_range(500..=3_000);
    let lat_ax = |rng: &mut StdRng| rng.gen_range(200..=1_000);

    // Builds one connected random domain: random spanning tree + extras.
    fn domain(
        b: &mut TopologyBuilder,
        rng: &mut StdRng,
        size: usize,
        extra_prob: f64,
        mut lat: impl FnMut(&mut StdRng) -> u32,
    ) -> Vec<RouterId> {
        let ids: Vec<RouterId> = (0..size).map(|_| b.add_router()).collect();
        if size <= 1 {
            return ids;
        }
        let mut order = ids.clone();
        order.shuffle(rng);
        for i in 1..order.len() {
            let parent = order[rng.gen_range(0..i)];
            let l = lat(rng);
            b.link(order[i], parent, l).expect("fresh ids");
        }
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if rng.gen::<f64>() < extra_prob && !b.has_link(ids[i], ids[j]) {
                    let l = lat(rng);
                    b.link(ids[i], ids[j], l).expect("fresh ids");
                }
            }
        }
        ids
    }

    // Transit domains.
    let mut transit: Vec<Vec<RouterId>> = Vec::with_capacity(config.transit_domains);
    for _ in 0..config.transit_domains {
        let ids = domain(
            &mut b,
            &mut rng,
            config.transit_size,
            config.extra_edge_prob,
            lat_tt,
        );
        transit.push(ids);
    }
    // Inter-domain ring (plus one random chord per domain when > 2 domains).
    for d in 0..config.transit_domains {
        let next = (d + 1) % config.transit_domains;
        if next == d {
            break;
        }
        let a = transit[d][rng.gen_range(0..transit[d].len())];
        let c = transit[next][rng.gen_range(0..transit[next].len())];
        if a != c {
            let l = lat_tt(&mut rng);
            b.link(a, c, l).expect("ids in range");
        }
        if config.transit_domains > 2 {
            let other = rng.gen_range(0..config.transit_domains);
            if other != d {
                let x = transit[d][rng.gen_range(0..transit[d].len())];
                let y = transit[other][rng.gen_range(0..transit[other].len())];
                if x != y && !b.has_link(x, y) {
                    let l = lat_tt(&mut rng);
                    b.link(x, y, l).expect("ids in range");
                }
            }
        }
    }

    // Stub domains and access leaves.
    for dom in &transit {
        for &tr in dom {
            for _ in 0..config.stubs_per_transit_router {
                let stub = domain(
                    &mut b,
                    &mut rng,
                    config.stub_size,
                    config.extra_edge_prob,
                    lat_ss,
                );
                if let Some(&gateway) = stub.first() {
                    let l = lat_ts(&mut rng);
                    b.link(gateway, tr, l).expect("ids in range");
                    for _ in 0..config.access_per_stub {
                        let leaf = b.add_router();
                        let attach = stub[rng.gen_range(0..stub.len())];
                        let l = lat_ax(&mut rng);
                        b.link(leaf, attach, l).expect("ids in range");
                    }
                }
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_connected;

    #[test]
    fn rejects_bad_params() {
        let mut cfg = TransitStubConfig::small();
        cfg.transit_domains = 0;
        assert!(transit_stub(&cfg, 1).is_err());
        let mut cfg = TransitStubConfig::small();
        cfg.stub_size = 0;
        assert!(transit_stub(&cfg, 1).is_err());
    }

    #[test]
    fn connected_with_expected_counts() {
        let cfg = TransitStubConfig::small();
        let t = transit_stub(&cfg, 42).unwrap();
        assert!(is_connected(&t));
        let expected = cfg.transit_domains * cfg.transit_size // transit
            + cfg.transit_domains
                * cfg.transit_size
                * cfg.stubs_per_transit_router
                * (cfg.stub_size + cfg.access_per_stub);
        assert_eq!(t.n_routers(), expected);
    }

    #[test]
    fn access_leaves_have_degree_one() {
        let cfg = TransitStubConfig::small();
        let t = transit_stub(&cfg, 7).unwrap();
        let n_access_expected = cfg.transit_domains
            * cfg.transit_size
            * cfg.stubs_per_transit_router
            * cfg.access_per_stub;
        assert!(t.access_routers().len() >= n_access_expected);
    }

    #[test]
    fn latencies_respect_tiers() {
        let t = transit_stub(&TransitStubConfig::small(), 11).unwrap();
        for (_, _, lat) in t.links() {
            assert!((200..=20_000).contains(&lat), "latency {lat} out of range");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = TransitStubConfig::small();
        assert_eq!(
            transit_stub(&cfg, 5).unwrap(),
            transit_stub(&cfg, 5).unwrap()
        );
    }

    #[test]
    fn single_domain_is_fine() {
        let cfg = TransitStubConfig {
            transit_domains: 1,
            transit_size: 5,
            stubs_per_transit_router: 1,
            stub_size: 2,
            extra_edge_prob: 0.2,
            access_per_stub: 1,
        };
        let t = transit_stub(&cfg, 3).unwrap();
        assert!(is_connected(&t));
    }
}
