//! Barabási–Albert preferential attachment.

use crate::{RouterId, Topology, TopologyBuilder, TopologyError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the Barabási–Albert model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaConfig {
    /// Total number of routers (`n > m`).
    pub n: usize,
    /// Links added by each arriving router (`m >= 1`).
    pub m: usize,
}

/// Generates a connected BA graph: a clique of `m + 1` seed routers, then
/// each arriving router attaches to `m` distinct existing routers sampled
/// proportionally to degree (via the repeated-endpoints trick).
pub fn barabasi_albert(config: &BaConfig, seed: u64) -> Result<Topology, TopologyError> {
    if config.m == 0 {
        return Err(TopologyError::InvalidConfig("BA requires m >= 1".into()));
    }
    if config.n <= config.m {
        return Err(TopologyError::InvalidConfig(format!(
            "BA requires n > m (got n={}, m={})",
            config.n, config.m
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TopologyBuilder::with_routers(config.n);

    // Each endpoint of each link appears once in `targets`, so sampling a
    // uniform element of `targets` is degree-proportional sampling.
    let mut targets: Vec<RouterId> = Vec::with_capacity(2 * config.m * config.n);
    let seed_count = config.m + 1;
    for i in 0..seed_count as u32 {
        for j in (i + 1)..seed_count as u32 {
            builder
                .link(RouterId(i), RouterId(j), 1000)
                .expect("seed ids in range");
            targets.push(RouterId(i));
            targets.push(RouterId(j));
        }
    }

    for v in seed_count..config.n {
        let v = RouterId(v as u32);
        let mut chosen: Vec<RouterId> = Vec::with_capacity(config.m);
        while chosen.len() < config.m {
            let pick = targets[rng.gen_range(0..targets.len())];
            if pick != v && !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for u in chosen {
            builder.link(v, u, 1000).expect("ids in range");
            targets.push(v);
            targets.push(u);
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{fit_power_law, is_connected};

    #[test]
    fn rejects_bad_params() {
        assert!(barabasi_albert(&BaConfig { n: 10, m: 0 }, 1).is_err());
        assert!(barabasi_albert(&BaConfig { n: 3, m: 3 }, 1).is_err());
    }

    #[test]
    fn size_and_connectivity() {
        let t = barabasi_albert(&BaConfig { n: 200, m: 2 }, 42).unwrap();
        assert_eq!(t.n_routers(), 200);
        assert!(is_connected(&t));
        // Seed clique has 3 links; each of the 197 arrivals adds 2.
        assert_eq!(t.n_links(), 3 + 197 * 2);
    }

    #[test]
    fn minimum_degree_is_m() {
        let t = barabasi_albert(&BaConfig { n: 150, m: 3 }, 7).unwrap();
        for r in t.routers() {
            assert!(t.degree(r) >= 3, "router {r} has degree {}", t.degree(r));
        }
    }

    #[test]
    fn heavy_tail_exponent_near_three() {
        let t = barabasi_albert(&BaConfig { n: 3000, m: 2 }, 99).unwrap();
        let degrees: Vec<usize> = t.routers().map(|r| t.degree(r)).collect();
        let alpha = fit_power_law(&degrees, 3).expect("enough samples");
        assert!(
            (2.2..4.2).contains(&alpha),
            "BA exponent {alpha} implausible"
        );
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(&BaConfig { n: 100, m: 2 }, 5).unwrap();
        let b = barabasi_albert(&BaConfig { n: 100, m: 2 }, 5).unwrap();
        assert_eq!(a, b);
    }
}
