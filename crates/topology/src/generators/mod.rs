//! Synthetic router-level topology generators.
//!
//! The paper's simulation uses a real Internet-Router map from the *nem*
//! mapper (Magoni & Hoerdt 2005). The substitution (see DESIGN.md §3) is a
//! family of generators reproducing the structural statistics the algorithm
//! depends on:
//!
//! * [`barabasi_albert`] — classic preferential attachment, heavy-tailed
//!   degrees (exponent ≈ 3);
//! * [`glp`] — Generalized Linear Preference (Bu & Towsley), tuned to match
//!   measured Internet exponents (≈ 2.1–2.3) and clustering;
//! * [`waxman`] — random geometric graph; a *non*-heavy-tailed control case
//!   for the dtree-accuracy ablation;
//! * [`transit_stub`] — classic GT-ITM-style hierarchy;
//! * [`mapper`] — the "nem-like" profile used by the headline experiments:
//!   a GLP core plus explicit chains of aggregation routers ending in
//!   degree-1 access routers (the paper attaches peers to degree-1 routers);
//! * [`regular`] — lines, rings, stars, grids, trees for unit tests.
//!
//! Every generator is deterministic given its `(config, seed)` pair.

mod ba;
mod glp;
mod mapper;
pub mod regular;
mod transit_stub;
mod waxman;

pub use ba::{barabasi_albert, BaConfig};
pub use glp::{glp, GlpConfig};
pub use mapper::{mapper, MapperConfig};
pub use transit_stub::{transit_stub, TransitStubConfig};
pub use waxman::{waxman, WaxmanConfig};

use crate::{Topology, TopologyError};
use serde::{Deserialize, Serialize};

/// A serialisable description of a topology to generate — the form in which
/// experiment configs name their substrate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TopologySpec {
    /// Barabási–Albert preferential attachment.
    Ba(BaConfig),
    /// Generalized Linear Preference.
    Glp(GlpConfig),
    /// Waxman random geometric graph.
    Waxman(WaxmanConfig),
    /// Transit-stub hierarchy.
    TransitStub(TransitStubConfig),
    /// nem-like mapper profile (the default for paper experiments).
    Mapper(MapperConfig),
}

impl TopologySpec {
    /// Generates the topology described by this spec.
    pub fn generate(&self, seed: u64) -> Result<Topology, TopologyError> {
        match self {
            TopologySpec::Ba(c) => barabasi_albert(c, seed),
            TopologySpec::Glp(c) => glp(c, seed),
            TopologySpec::Waxman(c) => waxman(c, seed),
            TopologySpec::TransitStub(c) => transit_stub(c, seed),
            TopologySpec::Mapper(c) => mapper(c, seed),
        }
    }

    /// Short family name for reports.
    pub fn family(&self) -> &'static str {
        match self {
            TopologySpec::Ba(_) => "ba",
            TopologySpec::Glp(_) => "glp",
            TopologySpec::Waxman(_) => "waxman",
            TopologySpec::TransitStub(_) => "transit-stub",
            TopologySpec::Mapper(_) => "mapper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_connected;

    #[test]
    fn spec_generates_every_family() {
        let specs = vec![
            TopologySpec::Ba(BaConfig { n: 60, m: 2 }),
            TopologySpec::Glp(GlpConfig::default_with_n(60)),
            TopologySpec::Waxman(WaxmanConfig {
                n: 60,
                alpha: 0.4,
                beta: 0.3,
            }),
            TopologySpec::TransitStub(TransitStubConfig::small()),
            TopologySpec::Mapper(MapperConfig::tiny()),
        ];
        for spec in specs {
            let t = spec.generate(7).unwrap();
            assert!(t.n_routers() > 10, "{} too small", spec.family());
            assert!(is_connected(&t), "{} not connected", spec.family());
        }
    }

    #[test]
    fn spec_serde_round_trip() {
        let spec = TopologySpec::Mapper(MapperConfig::tiny());
        let json = serde_json::to_string(&spec).unwrap();
        let back: TopologySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn determinism_per_seed() {
        let spec = TopologySpec::Glp(GlpConfig::default_with_n(80));
        let a = spec.generate(123).unwrap();
        let b = spec.generate(123).unwrap();
        let c = spec.generate(124).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
