//! Waxman random geometric graphs.
//!
//! Waxman graphs have *no* heavy tail — degree is roughly Poisson — which
//! makes them the control case in the dtree-accuracy ablation (A1): the
//! paper's core-routing assumption should visibly degrade here.

use crate::{RouterId, Topology, TopologyBuilder, TopologyError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the Waxman model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaxmanConfig {
    /// Number of routers placed uniformly in the unit square.
    pub n: usize,
    /// Link probability scale (`0 < alpha <= 1`).
    pub alpha: f64,
    /// Decay scale relative to the maximum distance (`beta > 0`); larger
    /// beta means longer links are more likely.
    pub beta: f64,
}

/// Generates a Waxman graph, then stitches components together with their
/// closest cross-pairs so the result is always connected.
///
/// Link latency encodes geometric distance: `latency_us = 100 + 20_000·d`
/// where `d` is the Euclidean distance in the unit square (so ~0.1–20 ms,
/// a plausible intra-continental range).
pub fn waxman(config: &WaxmanConfig, seed: u64) -> Result<Topology, TopologyError> {
    if config.n < 2 {
        return Err(TopologyError::InvalidConfig(
            "Waxman requires n >= 2".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.alpha) || config.alpha == 0.0 {
        return Err(TopologyError::InvalidConfig(format!(
            "Waxman requires 0 < alpha <= 1 (got {})",
            config.alpha
        )));
    }
    if config.beta <= 0.0 {
        return Err(TopologyError::InvalidConfig(format!(
            "Waxman requires beta > 0 (got {})",
            config.beta
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<(f64, f64)> = (0..config.n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let max_dist = 2f64.sqrt();
    let latency = |d: f64| (100.0 + 20_000.0 * d) as u32;

    let mut builder = TopologyBuilder::with_routers(config.n);
    for i in 0..config.n {
        for j in (i + 1)..config.n {
            let d = dist(pos[i], pos[j]);
            let p = config.alpha * (-d / (config.beta * max_dist)).exp();
            if rng.gen::<f64>() < p {
                builder
                    .link(RouterId(i as u32), RouterId(j as u32), latency(d))
                    .expect("ids in range");
            }
        }
    }

    // Connect remaining components via their geometrically closest pairs.
    loop {
        let snapshot = builder.clone().build();
        let (labels, count) = crate::analysis::connected_components(&snapshot);
        if count <= 1 {
            break;
        }
        // Join component 1..count-1 into component of router with label 0.
        let target = labels.iter().position(|&l| l == 1).expect("count > 1");
        let mut best: Option<(usize, usize, f64)> = None;
        for (i, &li) in labels.iter().enumerate() {
            if li != 1 {
                continue;
            }
            for (j, &lj) in labels.iter().enumerate() {
                if lj == 1 {
                    continue;
                }
                let d = dist(pos[i], pos[j]);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, d) = best.unwrap_or((target, 0, dist(pos[target], pos[0])));
        builder
            .link(RouterId(i as u32), RouterId(j as u32), latency(d))
            .expect("ids in range");
    }
    Ok(builder.build())
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_connected;

    #[test]
    fn rejects_bad_params() {
        assert!(waxman(
            &WaxmanConfig {
                n: 1,
                alpha: 0.4,
                beta: 0.3
            },
            1
        )
        .is_err());
        assert!(waxman(
            &WaxmanConfig {
                n: 10,
                alpha: 0.0,
                beta: 0.3
            },
            1
        )
        .is_err());
        assert!(waxman(
            &WaxmanConfig {
                n: 10,
                alpha: 0.4,
                beta: 0.0
            },
            1
        )
        .is_err());
    }

    #[test]
    fn always_connected() {
        // Sparse parameters on purpose: stitching must kick in.
        let t = waxman(
            &WaxmanConfig {
                n: 120,
                alpha: 0.05,
                beta: 0.05,
            },
            3,
        )
        .unwrap();
        assert!(is_connected(&t));
        assert_eq!(t.n_routers(), 120);
    }

    #[test]
    fn latency_reflects_distance_range() {
        let t = waxman(
            &WaxmanConfig {
                n: 80,
                alpha: 0.5,
                beta: 0.4,
            },
            9,
        )
        .unwrap();
        for (_, _, lat) in t.links() {
            assert!(lat >= 100);
            assert!(lat <= 100 + 20_000 * 2); // <= 100 + 20000*sqrt(2) rounded up
        }
    }

    #[test]
    fn no_heavy_tail() {
        let t = waxman(
            &WaxmanConfig {
                n: 1500,
                alpha: 0.3,
                beta: 0.15,
            },
            5,
        )
        .unwrap();
        let degrees: Vec<usize> = t.routers().map(|r| t.degree(r)).collect();
        // Poisson-like degrees: the maximum stays within a small factor of
        // the mean, unlike the orders-of-magnitude hubs of BA/GLP maps.
        let max_d = degrees.iter().copied().max().unwrap();
        let mean_d = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(
            (max_d as f64) < mean_d * 6.0,
            "max degree {max_d} too far above mean {mean_d} for a Poisson-like graph"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = WaxmanConfig {
            n: 90,
            alpha: 0.3,
            beta: 0.2,
        };
        assert_eq!(waxman(&cfg, 77).unwrap(), waxman(&cfg, 77).unwrap());
    }
}
