//! Mutable construction of [`Topology`] values.

use crate::{Edge, RouterId, Topology, TopologyError};

/// Incremental builder enforcing the [`Topology`] invariants.
///
/// ```
/// use nearpeer_topology::TopologyBuilder;
/// let mut b = TopologyBuilder::new();
/// let a = b.add_router();
/// let c = b.add_router();
/// b.link(a, c, 1_000).unwrap();
/// let topo = b.build();
/// assert_eq!(topo.n_routers(), 2);
/// assert!(topo.has_link(a, c));
/// ```
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    adj: Vec<Vec<Edge>>,
    labels: Vec<String>,
    any_label: bool,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `n` unlabeled routers.
    pub fn with_routers(n: usize) -> Self {
        let mut b = Self::new();
        for _ in 0..n {
            b.add_router();
        }
        b
    }

    /// Adds an unlabeled router, returning its id.
    pub fn add_router(&mut self) -> RouterId {
        let id = RouterId(self.adj.len() as u32);
        self.adj.push(Vec::new());
        self.labels.push(String::new());
        id
    }

    /// Adds a labeled router (presets use this to mirror the paper's names).
    pub fn add_labeled_router(&mut self, label: impl Into<String>) -> RouterId {
        let id = self.add_router();
        self.labels[id.index()] = label.into();
        self.any_label = true;
        id
    }

    /// Number of routers added so far.
    pub fn n_routers(&self) -> usize {
        self.adj.len()
    }

    /// Current degree of a router (counting links added so far).
    pub fn degree(&self, r: RouterId) -> usize {
        self.adj.get(r.index()).map_or(0, Vec::len)
    }

    /// Whether the undirected link `{a, b}` has already been added.
    pub fn has_link(&self, a: RouterId, b: RouterId) -> bool {
        self.adj
            .get(a.index())
            .is_some_and(|edges| edges.iter().any(|e| e.to == b))
    }

    /// Adds the undirected link `{a, b}` with the given one-way latency.
    ///
    /// Adding an existing link again updates its latency instead of
    /// duplicating it (generators rely on this being idempotent).
    pub fn link(&mut self, a: RouterId, b: RouterId, latency_us: u32) -> Result<(), TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        let n = self.adj.len() as u32;
        for r in [a, b] {
            if r.0 >= n {
                return Err(TopologyError::UnknownRouter(r));
            }
        }
        Self::insert_half(&mut self.adj[a.index()], b, latency_us);
        Self::insert_half(&mut self.adj[b.index()], a, latency_us);
        Ok(())
    }

    fn insert_half(edges: &mut Vec<Edge>, to: RouterId, latency_us: u32) {
        if let Some(e) = edges.iter_mut().find(|e| e.to == to) {
            e.latency_us = latency_us;
        } else {
            edges.push(Edge { to, latency_us });
        }
    }

    /// Finalises the topology: sorts adjacency lists and freezes the graph.
    pub fn build(mut self) -> Topology {
        for edges in &mut self.adj {
            edges.sort_by_key(|e| e.to);
        }
        Topology {
            adj: self.adj,
            labels: if self.any_label {
                Some(self.labels)
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop_and_unknown() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router();
        assert_eq!(b.link(a, a, 1).unwrap_err(), TopologyError::SelfLoop(a));
        assert_eq!(
            b.link(a, RouterId(7), 1).unwrap_err(),
            TopologyError::UnknownRouter(RouterId(7))
        );
    }

    #[test]
    fn duplicate_link_updates_latency() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router();
        let c = b.add_router();
        b.link(a, c, 100).unwrap();
        b.link(c, a, 250).unwrap();
        let t = b.build();
        assert_eq!(t.n_links(), 1);
        assert_eq!(t.link_latency_us(a, c), Some(250));
        assert_eq!(t.link_latency_us(c, a), Some(250));
    }

    #[test]
    fn adjacency_sorted_after_build() {
        let mut b = TopologyBuilder::with_routers(4);
        b.link(RouterId(0), RouterId(3), 1).unwrap();
        b.link(RouterId(0), RouterId(1), 1).unwrap();
        b.link(RouterId(0), RouterId(2), 1).unwrap();
        let t = b.build();
        let ids: Vec<u32> = t.neighbors(RouterId(0)).iter().map(|e| e.to.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn labels_survive_build() {
        let mut b = TopologyBuilder::new();
        let lmk = b.add_labeled_router("lmk");
        let _ = b.add_router();
        let t = b.build();
        assert_eq!(t.label(lmk), Some("lmk"));
        assert_eq!(t.router_by_label("lmk"), Some(lmk));
        assert_eq!(t.router_by_label("nope"), None);
    }

    #[test]
    fn unlabeled_topology_has_no_label_table() {
        let mut b = TopologyBuilder::with_routers(2);
        b.link(RouterId(0), RouterId(1), 1).unwrap();
        let t = b.build();
        assert_eq!(t.label(RouterId(0)), None);
    }
}
