//! Topology (de)serialisation: JSON and a plain edge-list text format.
//!
//! The edge-list format is line-oriented and `#`-commented so that maps can
//! be produced or consumed by external tools (and by hand in tests):
//!
//! ```text
//! # nearpeer edge list
//! routers 4
//! 0 1 1000
//! 1 2 1500
//! 2 3 900
//! ```

use crate::{RouterId, Topology, TopologyBuilder, TopologyError};

/// Serialises a topology to pretty JSON.
pub fn to_json(topo: &Topology) -> String {
    serde_json::to_string_pretty(topo).expect("Topology serialisation cannot fail")
}

/// Parses a topology from JSON produced by [`to_json`].
pub fn from_json(json: &str) -> Result<Topology, TopologyError> {
    serde_json::from_str(json).map_err(|e| TopologyError::Parse(e.to_string()))
}

/// Serialises a topology to the edge-list text format.
pub fn to_edge_list(topo: &Topology) -> String {
    let mut out = String::new();
    out.push_str("# nearpeer edge list\n");
    out.push_str(&format!("routers {}\n", topo.n_routers()));
    for (a, b, lat) in topo.links() {
        out.push_str(&format!("{} {} {}\n", a.0, b.0, lat));
    }
    out
}

/// Parses the edge-list text format.
pub fn from_edge_list(text: &str) -> Result<Topology, TopologyError> {
    let mut n_routers: Option<usize> = None;
    let mut builder = TopologyBuilder::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().expect("non-empty line has a token");
        if first == "routers" {
            let n: usize = parts
                .next()
                .ok_or_else(|| parse_err(lineno, "missing router count"))?
                .parse()
                .map_err(|_| parse_err(lineno, "bad router count"))?;
            n_routers = Some(n);
            builder = TopologyBuilder::with_routers(n);
            continue;
        }
        if n_routers.is_none() {
            return Err(parse_err(lineno, "edge before `routers N` header"));
        }
        let a: u32 = first
            .parse()
            .map_err(|_| parse_err(lineno, "bad source id"))?;
        let b: u32 = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing target id"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad target id"))?;
        let lat: u32 = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| parse_err(lineno, "bad latency"))?,
            None => 1_000,
        };
        builder
            .link(RouterId(a), RouterId(b), lat)
            .map_err(|e| TopologyError::Parse(format!("line {}: {e}", lineno + 1)))?;
    }
    if n_routers.is_none() {
        return Err(TopologyError::Empty);
    }
    Ok(builder.build())
}

fn parse_err(lineno: usize, msg: &str) -> TopologyError {
    TopologyError::Parse(format!("line {}: {msg}", lineno + 1))
}

/// Renders the topology as Graphviz DOT (undirected). Labeled routers keep
/// their names; core routers (by classification) are drawn as boxes so the
/// paper's "network core" is visible at a glance.
pub fn to_dot(topo: &Topology) -> String {
    use crate::RouterClass;
    let classes = topo.classify();
    let mut out = String::from("graph nearpeer {\n  node [shape=ellipse];\n");
    for r in topo.routers() {
        let name = topo
            .label(r)
            .filter(|l| !l.is_empty())
            .map(String::from)
            .unwrap_or_else(|| r.to_string());
        let shape = match classes[r.index()] {
            RouterClass::Core => "box",
            RouterClass::Access => "plaintext",
            RouterClass::Aggregation => "ellipse",
        };
        out.push_str(&format!("  \"{name}\" [shape={shape}];\n"));
    }
    for (a, b, lat) in topo.links() {
        let na = topo
            .label(a)
            .filter(|l| !l.is_empty())
            .map(String::from)
            .unwrap_or_else(|| a.to_string());
        let nb = topo
            .label(b)
            .filter(|l| !l.is_empty())
            .map(String::from)
            .unwrap_or_else(|| b.to_string());
        out.push_str(&format!(
            "  \"{na}\" -- \"{nb}\" [label=\"{:.1}ms\"];\n",
            lat as f64 / 1000.0
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::regular;

    #[test]
    fn json_round_trip() {
        let t = regular::grid(3, 2);
        let back = from_json(&to_json(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn json_round_trip_preserves_labels() {
        let t = crate::presets::figure1().topology;
        let back = from_json(&to_json(&t)).unwrap();
        assert_eq!(back.router_by_label("lmk"), t.router_by_label("lmk"));
        assert_eq!(t, back);
    }

    #[test]
    fn edge_list_round_trip() {
        let t = regular::ring(5);
        let back = from_edge_list(&to_edge_list(&t)).unwrap();
        assert_eq!(t.n_routers(), back.n_routers());
        assert_eq!(t.n_links(), back.n_links());
        for (a, b, lat) in t.links() {
            assert_eq!(back.link_latency_us(a, b), Some(lat));
        }
    }

    #[test]
    fn edge_list_default_latency_and_comments() {
        let text = "# comment\nrouters 3\n\n0 1\n1 2 500\n";
        let t = from_edge_list(text).unwrap();
        assert_eq!(t.link_latency_us(RouterId(0), RouterId(1)), Some(1_000));
        assert_eq!(t.link_latency_us(RouterId(1), RouterId(2)), Some(500));
    }

    #[test]
    fn edge_list_errors() {
        assert!(matches!(from_edge_list(""), Err(TopologyError::Empty)));
        assert!(matches!(
            from_edge_list("0 1 2\n"),
            Err(TopologyError::Parse(_))
        ));
        assert!(matches!(
            from_edge_list("routers x\n"),
            Err(TopologyError::Parse(_))
        ));
        assert!(matches!(
            from_edge_list("routers 2\n0 5 100\n"),
            Err(TopologyError::Parse(_))
        ));
        assert!(matches!(
            from_edge_list("routers 2\n0 zzz 100\n"),
            Err(TopologyError::Parse(_))
        ));
    }

    #[test]
    fn bad_json() {
        assert!(matches!(from_json("{"), Err(TopologyError::Parse(_))));
    }

    #[test]
    fn dot_renders_labels_and_links() {
        let fig = crate::presets::figure1();
        let dot = to_dot(&fig.topology);
        assert!(dot.starts_with("graph nearpeer {"));
        assert!(dot.contains("\"lmk\""));
        assert!(
            dot.contains("\"rc\" [shape=box]"),
            "core routers are boxes:\n{dot}"
        );
        assert!(dot.contains("\"p1\" [shape=plaintext]"));
        assert!(dot.contains(" -- "));
        assert!(dot.trim_end().ends_with('}'));
        // One edge line per link.
        assert_eq!(dot.matches(" -- ").count(), fig.topology.n_links());
    }
}
