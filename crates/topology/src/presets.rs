//! Hand-built miniature topologies, including the paper's Figure 1.

use crate::{RouterId, Topology, TopologyBuilder};

/// The Figure 1 topology plus the ids of its named actors.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The router graph (peers are modeled as degree-1 access routers).
    pub topology: Topology,
    /// The landmark `lmk`.
    pub landmark: RouterId,
    /// Core routers `ra`, `rb`, `rc`.
    pub core: [RouterId; 3],
    /// Peer attachment routers `p1..p4`.
    pub peers: [RouterId; 4],
}

/// Builds the example drawing from the paper (§2, Figure 1).
///
/// The figure shows a landmark `lmk` behind core router `ra`, core routers
/// `ra`, `rb`, `rc` "within the network core" (connected through `ra`),
/// small routers `r1..r8` of low degree, and peers `p1..p4`. The routes
/// from `p1` and `p2` to `lmk` meet at `rc`, giving the inferred path
/// `dtree(p1,p2)` of 6 hops, while a shortcut through `r8` makes the true
/// shortest path `d(p1,p2)` only 4 hops — exactly the "inferred path is
/// not the shortest path" situation the paper describes. Every *other*
/// peer pair satisfies `d = dtree`, matching the paper's expectation that
/// "most cases verify d(p1,p2) = dtree(p1,p2)".
///
/// ```
/// let fig = nearpeer_topology::presets::figure1();
/// assert_eq!(fig.topology.n_routers(), 16);
/// assert_eq!(fig.topology.label(fig.landmark), Some("lmk"));
/// ```
pub fn figure1() -> Figure1 {
    let mut b = TopologyBuilder::new();
    let lmk = b.add_labeled_router("lmk");
    let ra = b.add_labeled_router("ra");
    let rb = b.add_labeled_router("rb");
    let rc = b.add_labeled_router("rc");
    let r: Vec<RouterId> = (1..=8)
        .map(|i| b.add_labeled_router(format!("r{i}")))
        .collect();
    let p: Vec<RouterId> = (1..=4)
        .map(|i| b.add_labeled_router(format!("p{i}")))
        .collect();

    let links = [
        (lmk, ra),
        (ra, rb),
        (ra, rc),
        // p1 branch: rc - r1 - r2 - p1
        (rc, r[0]),
        (r[0], r[1]),
        (r[1], p[0]),
        // p2 branch: rc - r3 - r4 - p2
        (rc, r[2]),
        (r[2], r[3]),
        (r[3], p[1]),
        // p3 branch: rb - r5 - p3
        (rb, r[4]),
        (r[4], p[2]),
        // p4 branch: rb - r6 - r7 - p4
        (rb, r[5]),
        (r[5], r[6]),
        (r[6], p[3]),
        // The shortcut that makes d(p1,p2) < dtree(p1,p2): r2 - r8 - r4.
        (r[1], r[7]),
        (r[7], r[3]),
    ];
    for (a, c) in links {
        b.link(a, c, 1_000).expect("fresh ids");
    }
    Figure1 {
        topology: b.build(),
        landmark: lmk,
        core: [ra, rb, rc],
        peers: [p[0], p[1], p[2], p[3]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{exact_diameter, is_connected};
    use std::collections::VecDeque;

    fn hops(t: &Topology, from: RouterId, to: RouterId) -> u32 {
        let mut dist = vec![u32::MAX; t.n_routers()];
        dist[from.index()] = 0;
        let mut q = VecDeque::from([from]);
        while let Some(v) = q.pop_front() {
            for e in t.neighbors(v) {
                if dist[e.to.index()] == u32::MAX {
                    dist[e.to.index()] = dist[v.index()] + 1;
                    q.push_back(e.to);
                }
            }
        }
        dist[to.index()]
    }

    #[test]
    fn figure_matches_paper_distances() {
        let fig = figure1();
        let t = &fig.topology;
        assert!(is_connected(t));
        let [p1, p2, p3, _p4] = fig.peers;
        // True shortest path p1..p2 uses the r8 shortcut: 4 hops.
        assert_eq!(hops(t, p1, p2), 4);
        // Both peers are 5 hops from the landmark.
        assert_eq!(hops(t, p1, fig.landmark), 5);
        assert_eq!(hops(t, p2, fig.landmark), 5);
        // p1/p3 have no shortcut: the true distance equals the tree path
        // through ra (4 hops up from p1 + 3 down to p3).
        assert_eq!(hops(t, p1, p3), 7);
    }

    #[test]
    fn peers_are_access_routers() {
        let fig = figure1();
        for p in fig.peers {
            assert_eq!(fig.topology.degree(p), 1, "peer {p} must be degree 1");
        }
    }

    #[test]
    fn labels_resolve() {
        let fig = figure1();
        assert_eq!(fig.topology.router_by_label("rc"), Some(fig.core[2]));
        assert_eq!(fig.topology.router_by_label("p4"), Some(fig.peers[3]));
    }

    #[test]
    fn core_connects_through_ra() {
        let fig = figure1();
        let [ra, rb, rc] = fig.core;
        assert!(fig.topology.has_link(ra, rb));
        assert!(fig.topology.has_link(ra, rc));
        // ra is the core hub: largest degree in the figure.
        let max_deg = fig.topology.max_degree();
        assert_eq!(fig.topology.degree(ra), max_deg);
    }

    #[test]
    fn small_world() {
        let fig = figure1();
        assert!(exact_diameter(&fig.topology) <= 8);
    }
}
