//! Router-level Internet topologies for the `nearpeer` reproduction.
//!
//! The paper evaluates on an Internet-Router (IR) level map obtained from the
//! *nem* Internet mapper loaded into PeerSim. That map is not available, so
//! this crate provides:
//!
//! * [`Topology`] — an immutable undirected router graph with per-edge
//!   latencies, built through [`TopologyBuilder`];
//! * [`generators`] — synthetic families reproducing the structural
//!   statistics the paper relies on (heavy-tailed degrees, small diameter,
//!   a dense core): Barabási–Albert, GLP, Waxman, hierarchical transit-stub
//!   and the [`generators::MapperConfig`] "nem-like" profile with explicit
//!   degree-1 access routers;
//! * [`analysis`] — degree histograms and power-law fits, k-core
//!   decomposition, connected components, clustering, betweenness centrality
//!   and diameter estimation, used both to validate generated maps and to
//!   drive landmark-placement policies;
//! * [`presets`] — hand-built miniature topologies, including the exact
//!   drawing of the paper's Figure 1;
//! * [`io`] — JSON and edge-list (de)serialisation of maps.
//!
//! Routers are identified by dense [`RouterId`] indices so downstream crates
//! can use flat `Vec` tables instead of hash maps on the hot paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod builder;
pub mod generators;
mod graph;
pub mod io;
mod latency;
pub mod presets;

pub use builder::TopologyBuilder;
pub use graph::{Edge, RouterClass, RouterId, Topology};
pub use latency::{assign_latencies, LatencyModel};

use std::fmt;

/// Errors produced while constructing or loading topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// An edge from a router to itself was requested.
    SelfLoop(RouterId),
    /// A router id outside the graph was referenced.
    UnknownRouter(RouterId),
    /// The input described no routers at all.
    Empty,
    /// A serialised topology could not be parsed.
    Parse(String),
    /// A generator was given parameters it cannot satisfy
    /// (e.g. more edges per node than nodes).
    InvalidConfig(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::SelfLoop(r) => write!(f, "self-loop on router {r}"),
            TopologyError::UnknownRouter(r) => write!(f, "unknown router {r}"),
            TopologyError::Empty => write!(f, "topology has no routers"),
            TopologyError::Parse(msg) => write!(f, "parse error: {msg}"),
            TopologyError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}
