//! Betweenness centrality (Brandes' algorithm), exact and pivot-sampled.
//!
//! The paper justifies its core-routing assumption by citing betweenness
//! centrality in large complex networks (Barthélemy 2004): hub routers carry
//! most shortest paths. We expose both the exact `O(nm)` computation (small
//! maps, tests) and a sampled approximation (landmark placement on large
//! maps).

use crate::{RouterId, Topology};
use std::collections::VecDeque;

/// Exact betweenness centrality for unweighted shortest paths.
///
/// Scores are the standard "sum over pairs of the fraction of shortest paths
/// through v" (endpoints excluded), *not* normalised — callers who need
/// normalised values can divide by `(n-1)(n-2)`.
pub fn betweenness_centrality(topo: &Topology) -> Vec<f64> {
    let n = topo.n_routers();
    let sources: Vec<usize> = (0..n).collect();
    brandes(topo, &sources)
}

/// Pivot-sampled betweenness: runs Brandes from `pivots` evenly spread
/// source routers and extrapolates by `n / pivots`. Much faster on large
/// maps; the ranking of high-centrality routers is preserved, which is all
/// landmark placement needs.
pub fn betweenness_centrality_sampled(topo: &Topology, pivots: usize) -> Vec<f64> {
    let n = topo.n_routers();
    if n == 0 {
        return Vec::new();
    }
    let pivots = pivots.clamp(1, n);
    // Deterministic even spread of pivot sources.
    let sources: Vec<usize> = (0..pivots).map(|i| i * n / pivots).collect();
    let mut scores = brandes(topo, &sources);
    let scale = n as f64 / pivots as f64;
    for s in &mut scores {
        *s *= scale;
    }
    scores
}

fn brandes(topo: &Topology, sources: &[usize]) -> Vec<f64> {
    let n = topo.n_routers();
    let mut centrality = vec![0.0f64; n];
    // Reused per-source scratch.
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];

    for &s in sources {
        for v in 0..n {
            sigma[v] = 0.0;
            dist[v] = -1;
            delta[v] = 0.0;
            preds[v].clear();
        }
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut stack: Vec<usize> = Vec::with_capacity(n);
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for e in topo.neighbors(RouterId(v as u32)) {
                let w = e.to.index();
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v as u32);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                let v = v as usize;
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    /// Path 0-1-2-3-4: centrality of node i is known in closed form.
    fn path5() -> Topology {
        let mut b = TopologyBuilder::with_routers(5);
        for i in 0..4u32 {
            b.link(RouterId(i), RouterId(i + 1), 1).unwrap();
        }
        b.build()
    }

    #[test]
    fn path_centrality_exact() {
        let c = betweenness_centrality(&path5());
        // Node 2 (middle) lies on paths {0,1}x{3,4} + (0,3),(0,4),(1,3),(1,4)
        // = pairs (0,3),(0,4),(1,3),(1,4) and also (0,1)? no. Counting
        // ordered both directions as Brandes does (each unordered pair twice):
        // middle of a path of 5: 2*(2*2) = 8? Pairs through node 2:
        // {0,1} x {3,4} = 4 unordered pairs → 8 ordered.
        assert!((c[2] - 8.0).abs() < 1e-9);
        // Node 1: pairs {0} x {2,3,4} = 3 unordered → 6 ordered.
        assert!((c[1] - 6.0).abs() < 1e-9);
        assert_eq!(c[0], 0.0);
        assert_eq!(c[4], 0.0);
    }

    #[test]
    fn star_center_dominates() {
        let mut b = TopologyBuilder::with_routers(6);
        for i in 1..6u32 {
            b.link(RouterId(0), RouterId(i), 1).unwrap();
        }
        let t = b.build();
        let c = betweenness_centrality(&t);
        // Center lies on all 5*4 = 20 ordered leaf pairs.
        assert!((c[0] - 20.0).abs() < 1e-9);
        for leaf_centrality in &c[1..6] {
            assert_eq!(*leaf_centrality, 0.0);
        }
    }

    #[test]
    fn sampled_with_all_pivots_matches_exact() {
        let t = path5();
        let exact = betweenness_centrality(&t);
        let sampled = betweenness_centrality_sampled(&t, t.n_routers());
        for (a, b) in exact.iter().zip(&sampled) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_preserves_top_ranking() {
        // Barbell: two 4-cliques joined by a bridge node — the bridge must
        // rank first even with few pivots.
        let mut b = TopologyBuilder::with_routers(9);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.link(RouterId(i), RouterId(j), 1).unwrap();
            }
        }
        for i in 5..9u32 {
            for j in (i + 1)..9 {
                b.link(RouterId(i), RouterId(j), 1).unwrap();
            }
        }
        b.link(RouterId(3), RouterId(4), 1).unwrap();
        b.link(RouterId(4), RouterId(5), 1).unwrap();
        let t = b.build();
        let c = betweenness_centrality_sampled(&t, 4);
        // Pivot sampling is noisy when a bridge router is itself a pivot
        // (sources earn no credit from their own BFS), so assert the whole
        // bridge region {3, 4, 5} outranks every clique-interior router
        // rather than pinning the single top scorer.
        let bridge_min = [3usize, 4, 5]
            .iter()
            .map(|&i| c[i])
            .fold(f64::MAX, f64::min);
        for interior in [0usize, 1, 2, 6, 7, 8] {
            assert!(
                c[interior] < bridge_min,
                "interior {interior} ({}) outranks bridge region ({bridge_min})",
                c[interior]
            );
        }
    }

    #[test]
    fn empty_graph() {
        let t = TopologyBuilder::new().build();
        assert!(betweenness_centrality(&t).is_empty());
        assert!(betweenness_centrality_sampled(&t, 4).is_empty());
    }
}
