//! Clustering coefficients.

use crate::{RouterId, Topology};

/// Local clustering coefficient of one router: the fraction of pairs of its
/// neighbors that are themselves linked. Degree < 2 yields 0.
pub fn local_clustering(topo: &Topology, r: RouterId) -> f64 {
    let neigh = topo.neighbors(r);
    let d = neigh.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, a) in neigh.iter().enumerate() {
        for b in &neigh[i + 1..] {
            if topo.has_link(a.to, b.to) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Mean local clustering over all routers with degree ≥ 2 (Watts–Strogatz
/// definition); 0 if no router qualifies.
pub fn global_clustering_coefficient(topo: &Topology) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for r in topo.routers() {
        if topo.degree(r) >= 2 {
            sum += local_clustering(topo, r);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn triangle_is_fully_clustered() {
        let mut b = TopologyBuilder::with_routers(3);
        b.link(RouterId(0), RouterId(1), 1).unwrap();
        b.link(RouterId(1), RouterId(2), 1).unwrap();
        b.link(RouterId(0), RouterId(2), 1).unwrap();
        let t = b.build();
        for r in t.routers() {
            assert_eq!(local_clustering(&t, r), 1.0);
        }
        assert_eq!(global_clustering_coefficient(&t), 1.0);
    }

    #[test]
    fn path_has_zero_clustering() {
        let mut b = TopologyBuilder::with_routers(3);
        b.link(RouterId(0), RouterId(1), 1).unwrap();
        b.link(RouterId(1), RouterId(2), 1).unwrap();
        let t = b.build();
        assert_eq!(local_clustering(&t, RouterId(1)), 0.0);
        assert_eq!(local_clustering(&t, RouterId(0)), 0.0);
        assert_eq!(global_clustering_coefficient(&t), 0.0);
    }

    #[test]
    fn half_open_square_with_diagonal() {
        // Square 0-1-2-3 plus diagonal 0-2: nodes 0 and 2 have degree 3 with
        // 2 of 3 neighbor pairs closed? Node 0 neighbors {1,2,3}: links 1-2
        // and 2-3 exist, 1-3 doesn't → 2/3. Nodes 1 and 3 have neighbors
        // {0,2} which are linked → 1.
        let mut b = TopologyBuilder::with_routers(4);
        for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            b.link(RouterId(x), RouterId(y), 1).unwrap();
        }
        let t = b.build();
        assert!((local_clustering(&t, RouterId(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&t, RouterId(1)), 1.0);
        let expected = (2.0 / 3.0 + 1.0 + 2.0 / 3.0 + 1.0) / 4.0;
        assert!((global_clustering_coefficient(&t) - expected).abs() < 1e-12);
    }
}
