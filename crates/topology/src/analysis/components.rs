//! Connected components.

use crate::{RouterId, Topology};
use std::collections::VecDeque;

/// Labels every router with a component index (0-based, in order of first
/// discovery) and returns `(labels, component_count)`.
pub fn connected_components(topo: &Topology) -> (Vec<usize>, usize) {
    let n = topo.n_routers();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for e in topo.neighbors(RouterId(v as u32)) {
                let u = e.to.index();
                if label[u] == usize::MAX {
                    label[u] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Whether the topology is a single connected component (vacuously true for
/// the empty graph).
pub fn is_connected(topo: &Topology) -> bool {
    connected_components(topo).1 <= 1
}

/// Router ids of the largest component (ties broken by lowest label).
pub fn largest_component(topo: &Topology) -> Vec<RouterId> {
    let (labels, count) = connected_components(topo);
    if count == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .expect("count > 0");
    labels
        .into_iter()
        .enumerate()
        .filter(|&(_, l)| l == best)
        .map(|(i, _)| RouterId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn two_components() {
        let mut b = TopologyBuilder::with_routers(5);
        b.link(RouterId(0), RouterId(1), 1).unwrap();
        b.link(RouterId(1), RouterId(2), 1).unwrap();
        b.link(RouterId(3), RouterId(4), 1).unwrap();
        let t = b.build();
        let (labels, count) = connected_components(&t);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert!(!is_connected(&t));
        let big = largest_component(&t);
        assert_eq!(big, vec![RouterId(0), RouterId(1), RouterId(2)]);
    }

    #[test]
    fn connected_path() {
        let mut b = TopologyBuilder::with_routers(3);
        b.link(RouterId(0), RouterId(1), 1).unwrap();
        b.link(RouterId(1), RouterId(2), 1).unwrap();
        let t = b.build();
        assert!(is_connected(&t));
        assert_eq!(largest_component(&t).len(), 3);
    }

    #[test]
    fn empty_graph_is_connected() {
        let t = TopologyBuilder::new().build();
        assert!(is_connected(&t));
        assert!(largest_component(&t).is_empty());
    }

    #[test]
    fn ties_pick_first_component() {
        let mut b = TopologyBuilder::with_routers(4);
        b.link(RouterId(0), RouterId(1), 1).unwrap();
        b.link(RouterId(2), RouterId(3), 1).unwrap();
        let t = b.build();
        assert_eq!(largest_component(&t), vec![RouterId(0), RouterId(1)]);
    }
}
