//! Diameter and eccentricity estimation.

use crate::{RouterId, Topology};
use std::collections::VecDeque;

/// BFS hop distances from `source`; unreachable routers get `u32::MAX`.
fn bfs_dist(topo: &Topology, source: RouterId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; topo.n_routers()];
    dist[source.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source.index());
    while let Some(v) = queue.pop_front() {
        let dv = dist[v];
        for e in topo.neighbors(RouterId(v as u32)) {
            let u = e.to.index();
            if dist[u] == u32::MAX {
                dist[u] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Eccentricity of a router: the largest hop distance to any *reachable*
/// router (0 for an isolated router).
pub fn eccentricity(topo: &Topology, r: RouterId) -> u32 {
    bfs_dist(topo, r)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Lower bound on the diameter via the classic double-sweep heuristic: BFS
/// from `start`, then BFS again from the farthest router found. Exact on
/// trees; a tight lower bound in practice on Internet-like graphs.
pub fn double_sweep_diameter_lower_bound(topo: &Topology, start: RouterId) -> u32 {
    if topo.n_routers() == 0 {
        return 0;
    }
    let first = bfs_dist(topo, start);
    let far = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != u32::MAX)
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| RouterId(i as u32))
        .unwrap_or(start);
    eccentricity(topo, far)
}

/// Exact diameter of the (component containing each router of the) graph:
/// max eccentricity over all routers. O(n·m) — use only on small maps.
pub fn exact_diameter(topo: &Topology) -> u32 {
    topo.routers()
        .map(|r| eccentricity(topo, r))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    fn path(n: usize) -> Topology {
        let mut b = TopologyBuilder::with_routers(n);
        for i in 0..n.saturating_sub(1) {
            b.link(RouterId(i as u32), RouterId(i as u32 + 1), 1)
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn path_diameter() {
        let t = path(6);
        assert_eq!(exact_diameter(&t), 5);
        assert_eq!(double_sweep_diameter_lower_bound(&t, RouterId(2)), 5);
        assert_eq!(eccentricity(&t, RouterId(0)), 5);
        assert_eq!(eccentricity(&t, RouterId(3)), 3);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        // Star with one long arm.
        let mut b = TopologyBuilder::with_routers(7);
        b.link(RouterId(0), RouterId(1), 1).unwrap();
        b.link(RouterId(0), RouterId(2), 1).unwrap();
        b.link(RouterId(0), RouterId(3), 1).unwrap();
        b.link(RouterId(3), RouterId(4), 1).unwrap();
        b.link(RouterId(4), RouterId(5), 1).unwrap();
        b.link(RouterId(5), RouterId(6), 1).unwrap();
        let t = b.build();
        assert_eq!(exact_diameter(&t), 5); // leaf 1/2 to leaf 6
        assert_eq!(double_sweep_diameter_lower_bound(&t, RouterId(0)), 5);
    }

    #[test]
    fn disconnected_ignores_unreachable() {
        let mut b = TopologyBuilder::with_routers(4);
        b.link(RouterId(0), RouterId(1), 1).unwrap();
        b.link(RouterId(2), RouterId(3), 1).unwrap();
        let t = b.build();
        assert_eq!(eccentricity(&t, RouterId(0)), 1);
        assert_eq!(exact_diameter(&t), 1);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(exact_diameter(&TopologyBuilder::new().build()), 0);
        let t = TopologyBuilder::with_routers(1).build();
        assert_eq!(exact_diameter(&t), 0);
        assert_eq!(double_sweep_diameter_lower_bound(&t, RouterId(0)), 0);
    }
}
