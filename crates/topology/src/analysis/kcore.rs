//! k-core decomposition (Batagelj–Zaveršnik peeling).

use crate::{RouterId, Topology};

/// Core number of every router: the largest `k` such that the router belongs
/// to a subgraph where every member has degree ≥ `k`.
///
/// Linear-time bucket peeling; the maximum core is the paper's "network
/// core" of highly-connected routers.
pub fn k_core_numbers(topo: &Topology) -> Vec<usize> {
    let n = topo.n_routers();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n).map(|i| topo.degree(RouterId(i as u32))).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0;
    for bin in bins.iter_mut().take(max_deg + 1) {
        let count = *bin;
        *bin = start;
        start += count;
    }
    let mut vert = vec![0usize; n];
    let mut pos = vec![0usize; n];
    {
        let mut next = bins.clone();
        for v in 0..n {
            pos[v] = next[degree[v]];
            vert[pos[v]] = v;
            next[degree[v]] += 1;
        }
    }

    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i];
        core[v] = degree[v];
        for e in topo.neighbors(RouterId(v as u32)) {
            let u = e.to.index();
            if degree[u] > degree[v] {
                // Move u one bucket down: swap with first vertex of its bucket.
                let du = degree[u];
                let pu = pos[u];
                let pw = bins[du];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bins[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// The largest core number in the graph (0 for an edgeless graph).
pub fn max_core_number(topo: &Topology) -> usize {
    k_core_numbers(topo).into_iter().max().unwrap_or(0)
}

/// Routers whose core number is at least `k`.
pub fn k_core_members(topo: &Topology, k: usize) -> Vec<RouterId> {
    k_core_numbers(topo)
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c >= k)
        .map(|(i, _)| RouterId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    /// A 4-clique with a pendant path: clique nodes have core 3, the path
    /// nodes core 1.
    fn clique_with_tail() -> Topology {
        let mut b = TopologyBuilder::with_routers(6);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.link(RouterId(i), RouterId(j), 1000).unwrap();
            }
        }
        b.link(RouterId(0), RouterId(4), 1000).unwrap();
        b.link(RouterId(4), RouterId(5), 1000).unwrap();
        b.build()
    }

    #[test]
    fn clique_core_numbers() {
        let t = clique_with_tail();
        let core = k_core_numbers(&t);
        assert_eq!(core, vec![3, 3, 3, 3, 1, 1]);
        assert_eq!(max_core_number(&t), 3);
    }

    #[test]
    fn members_at_threshold() {
        let t = clique_with_tail();
        let members = k_core_members(&t, 3);
        assert_eq!(members.len(), 4);
        assert!(members.contains(&RouterId(0)));
        assert!(!members.contains(&RouterId(4)));
        assert_eq!(k_core_members(&t, 1).len(), 6);
        assert!(k_core_members(&t, 4).is_empty());
    }

    #[test]
    fn ring_is_its_own_2core() {
        let mut b = TopologyBuilder::with_routers(5);
        for i in 0..5u32 {
            b.link(RouterId(i), RouterId((i + 1) % 5), 1000).unwrap();
        }
        let t = b.build();
        assert_eq!(k_core_numbers(&t), vec![2; 5]);
    }

    #[test]
    fn empty_graph() {
        let t = TopologyBuilder::new().build();
        assert!(k_core_numbers(&t).is_empty());
        assert_eq!(max_core_number(&t), 0);
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let t = TopologyBuilder::with_routers(3).build();
        assert_eq!(k_core_numbers(&t), vec![0, 0, 0]);
    }
}
