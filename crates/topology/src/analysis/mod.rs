//! Structural analysis of router topologies.
//!
//! These routines serve two purposes in the reproduction:
//!
//! 1. **Map validation** — the paper's argument rests on statistical
//!    regularities of the router-level Internet (heavy-tailed degrees, a
//!    high-centrality core). The generators in [`crate::generators`] are
//!    checked against these statistics in tests and in the
//!    `internet_mapping` experiment.
//! 2. **Landmark placement** — the W1 study places landmarks by degree,
//!    betweenness or k-core membership.

mod betweenness;
mod clustering;
mod components;
mod degree;
mod diameter;
mod kcore;

pub use betweenness::{betweenness_centrality, betweenness_centrality_sampled};
pub use clustering::{global_clustering_coefficient, local_clustering};
pub use components::{connected_components, is_connected, largest_component};
pub use degree::{degree_histogram, fit_power_law, DegreeStats};
pub use diameter::{double_sweep_diameter_lower_bound, eccentricity, exact_diameter};
pub use kcore::{k_core_members, k_core_numbers, max_core_number};
