//! Degree distribution statistics and power-law fitting.

use crate::Topology;

/// Aggregate degree statistics of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of routers.
    pub n_routers: usize,
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: usize,
    /// Count of degree-1 (access) routers.
    pub n_access: usize,
    /// Fitted power-law exponent (None if the fit is not applicable).
    pub power_law_alpha: Option<f64>,
}

impl DegreeStats {
    /// Computes the stats for a topology, fitting the exponent with
    /// `d_min = 2` (access leaves excluded, as mapper studies do).
    pub fn of(topo: &Topology) -> Self {
        let degrees: Vec<usize> = topo.routers().map(|r| topo.degree(r)).collect();
        Self {
            n_routers: topo.n_routers(),
            mean: topo.mean_degree(),
            max: topo.max_degree(),
            n_access: degrees.iter().filter(|&&d| d == 1).count(),
            power_law_alpha: fit_power_law(&degrees, 2),
        }
    }
}

/// Histogram of degrees: `(degree, count)` sorted by degree, omitting zero
/// counts.
pub fn degree_histogram(topo: &Topology) -> Vec<(usize, usize)> {
    let mut counts = vec![0usize; topo.max_degree() + 1];
    for r in topo.routers() {
        counts[topo.degree(r)] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect()
}

/// Maximum-likelihood estimate of a discrete power-law exponent
/// (Clauset–Shalizi–Newman approximation):
/// `alpha = 1 + n / Σ ln(d_i / (d_min - 0.5))` over samples `d_i >= d_min`.
///
/// Returns `None` when fewer than 10 samples qualify (too little signal for
/// the estimate to mean anything).
pub fn fit_power_law(degrees: &[usize], d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1);
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d >= d_min)
        .map(|&d| d as f64)
        .collect();
    if tail.len() < 10 {
        return None;
    }
    let denom: f64 = tail.iter().map(|d| (d / (d_min as f64 - 0.5)).ln()).sum();
    if denom <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RouterId, TopologyBuilder};

    fn star(n_leaves: usize) -> Topology {
        let mut b = TopologyBuilder::with_routers(n_leaves + 1);
        for i in 1..=n_leaves {
            b.link(RouterId(0), RouterId(i as u32), 1000).unwrap();
        }
        b.build()
    }

    #[test]
    fn histogram_of_star() {
        let t = star(5);
        assert_eq!(degree_histogram(&t), vec![(1, 5), (5, 1)]);
    }

    #[test]
    fn stats_of_star() {
        let t = star(5);
        let s = DegreeStats::of(&t);
        assert_eq!(s.n_routers, 6);
        assert_eq!(s.n_access, 5);
        assert_eq!(s.max, 5);
        assert!((s.mean - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_fit_recovers_exponent() {
        // Sample from a Pareto with exponent 2.5 by inverse-CDF on a
        // deterministic grid. A large x_min keeps the discreteness
        // correction (the −0.5 shift) small relative to the tail, so the
        // estimate should land near the true exponent.
        let alpha_true = 2.5f64;
        let x_min = 10.0f64;
        let mut samples = Vec::new();
        let n = 20_000;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            let d = x_min * (1.0 - u).powf(-1.0 / (alpha_true - 1.0));
            samples.push(d.round() as usize);
        }
        let alpha = fit_power_law(&samples, x_min as usize).unwrap();
        assert!(
            (alpha - alpha_true).abs() < 0.2,
            "fit {alpha} too far from {alpha_true}"
        );
    }

    #[test]
    fn fit_orders_steepness() {
        // A steeper tail must yield a larger fitted exponent.
        let gen = |alpha_true: f64| -> Vec<usize> {
            (0..5_000)
                .map(|i| {
                    let u = (i as f64 + 0.5) / 5_000.0;
                    (2.0 * (1.0 - u).powf(-1.0 / (alpha_true - 1.0))).round() as usize
                })
                .collect()
        };
        let shallow = fit_power_law(&gen(2.1), 2).unwrap();
        let steep = fit_power_law(&gen(3.5), 2).unwrap();
        assert!(steep > shallow, "steep {steep} <= shallow {shallow}");
    }

    #[test]
    fn fit_needs_enough_samples() {
        assert!(fit_power_law(&[3, 4, 5], 2).is_none());
        assert!(fit_power_law(&[], 2).is_none());
    }
}
