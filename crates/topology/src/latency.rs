//! Re-assignment of link latencies on an existing topology.

use crate::{RouterClass, RouterId, Topology, TopologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How to draw per-link one-way latencies (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LatencyModel {
    /// Every link gets the same latency.
    Fixed(u32),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: u32,
        /// Upper bound (inclusive).
        hi: u32,
    },
    /// Tiered by the classes of the link endpoints: a link takes the range
    /// of the *most core-ward* endpoint (core ≻ aggregation ≻ access).
    ByClass {
        /// Range for links touching a core router.
        core: (u32, u32),
        /// Range for aggregation-to-aggregation/access links.
        aggregation: (u32, u32),
        /// Range for access-only links (rare; both endpoints degree ≤ 1).
        access: (u32, u32),
    },
}

impl LatencyModel {
    /// A realistic default: core 1–10 ms, aggregation 0.5–4 ms, access
    /// 0.2–2 ms.
    pub fn internet_like() -> Self {
        LatencyModel::ByClass {
            core: (1_000, 10_000),
            aggregation: (500, 4_000),
            access: (200, 2_000),
        }
    }
}

/// Returns a copy of `topo` with latencies re-drawn from `model`
/// (deterministic per seed). Labels and structure are preserved.
pub fn assign_latencies(topo: &Topology, model: &LatencyModel, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = match model {
        LatencyModel::ByClass { .. } => topo.classify(),
        _ => Vec::new(),
    };
    let mut b = TopologyBuilder::new();
    for r in topo.routers() {
        match topo.label(r) {
            Some(l) if !l.is_empty() => {
                b.add_labeled_router(l);
            }
            _ => {
                b.add_router();
            }
        }
    }
    for (a, c, _) in topo.links() {
        let lat = draw(model, &classes, a, c, &mut rng);
        b.link(a, c, lat).expect("copied ids in range");
    }
    b.build()
}

fn draw(
    model: &LatencyModel,
    classes: &[RouterClass],
    a: RouterId,
    b: RouterId,
    rng: &mut StdRng,
) -> u32 {
    match model {
        LatencyModel::Fixed(v) => *v,
        LatencyModel::Uniform { lo, hi } => {
            let (lo, hi) = (*lo.min(hi), *lo.max(hi));
            rng.gen_range(lo..=hi)
        }
        LatencyModel::ByClass {
            core,
            aggregation,
            access,
        } => {
            let rank = |c: RouterClass| match c {
                RouterClass::Core => 0,
                RouterClass::Aggregation => 1,
                RouterClass::Access => 2,
            };
            let best = rank(classes[a.index()]).min(rank(classes[b.index()]));
            let (lo, hi) = match best {
                0 => *core,
                1 => *aggregation,
                _ => *access,
            };
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            rng.gen_range(lo..=hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::regular;

    #[test]
    fn fixed_sets_every_link() {
        let t = regular::grid(3, 3);
        let t2 = assign_latencies(&t, &LatencyModel::Fixed(777), 1);
        assert_eq!(t2.n_links(), t.n_links());
        for (_, _, lat) in t2.links() {
            assert_eq!(lat, 777);
        }
    }

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let t = regular::ring(10);
        let m = LatencyModel::Uniform { lo: 100, hi: 200 };
        let a = assign_latencies(&t, &m, 5);
        let b = assign_latencies(&t, &m, 5);
        let c = assign_latencies(&t, &m, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for (_, _, lat) in a.links() {
            assert!((100..=200).contains(&lat));
        }
    }

    #[test]
    fn by_class_tiers() {
        // Triangle core with a leaf: the leaf link must use the core range
        // (one endpoint is core), so use distinguishable ranges.
        let mut b = crate::TopologyBuilder::with_routers(5);
        for (x, y) in [(0u32, 1u32), (1, 2), (0, 2)] {
            b.link(RouterId(x), RouterId(y), 1).unwrap();
        }
        b.link(RouterId(2), RouterId(3), 1).unwrap(); // agg chain
        b.link(RouterId(3), RouterId(4), 1).unwrap(); // access leaf
        let t = b.build();
        let m = LatencyModel::ByClass {
            core: (10_000, 10_000),
            aggregation: (500, 500),
            access: (1, 1),
        };
        let t2 = assign_latencies(&t, &m, 9);
        // Core triangle links.
        assert_eq!(t2.link_latency_us(RouterId(0), RouterId(1)), Some(10_000));
        // Link 2-3 touches core router 2.
        assert_eq!(t2.link_latency_us(RouterId(2), RouterId(3)), Some(10_000));
        // Link 3-4: router 3 is aggregation (degree 2), router 4 access.
        assert_eq!(t2.link_latency_us(RouterId(3), RouterId(4)), Some(500));
    }

    #[test]
    fn labels_preserved() {
        let t = crate::presets::figure1().topology;
        let t2 = assign_latencies(&t, &LatencyModel::Fixed(42), 0);
        assert_eq!(t2.router_by_label("lmk"), t.router_by_label("lmk"));
    }
}
