//! The immutable router graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a router inside one [`Topology`].
///
/// Ids are assigned contiguously from 0 by [`crate::TopologyBuilder`], which
/// lets every downstream crate index flat arrays by router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouterId(pub u32);

impl RouterId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One directed half of an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// The router at the other end.
    pub to: RouterId,
    /// One-way propagation latency of the link, in microseconds.
    pub latency_us: u32,
}

/// Structural role of a router, derived from the graph
/// (see [`Topology::classify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterClass {
    /// Member of the densest k-core — the "network core" of the paper.
    Core,
    /// Degree-1 router; the paper attaches peers here.
    Access,
    /// Everything in between (regional/aggregation routers). The paper
    /// attaches landmarks to these "medium-size degree" routers.
    Aggregation,
}

/// An immutable, undirected router-level topology with per-edge latencies.
///
/// Invariants (enforced by [`crate::TopologyBuilder`]):
/// * no self-loops, no parallel edges;
/// * adjacency lists are sorted by neighbor id (binary-searchable);
/// * both directions of an edge carry the same latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    pub(crate) adj: Vec<Vec<Edge>>,
    pub(crate) labels: Option<Vec<String>>,
}

impl Topology {
    /// Number of routers.
    #[inline]
    pub fn n_routers(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected links.
    pub fn n_links(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Iterator over every router id.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.adj.len() as u32).map(RouterId)
    }

    /// Degree of a router.
    ///
    /// # Panics
    /// Panics if `r` is out of range (ids come from this topology, so an
    /// out-of-range id is a logic error).
    #[inline]
    pub fn degree(&self, r: RouterId) -> usize {
        self.adj[r.index()].len()
    }

    /// Neighbors (with link latencies) of a router, sorted by id.
    #[inline]
    pub fn neighbors(&self, r: RouterId) -> &[Edge] {
        &self.adj[r.index()]
    }

    /// Whether an undirected link `{a, b}` exists.
    pub fn has_link(&self, a: RouterId, b: RouterId) -> bool {
        self.adj[a.index()]
            .binary_search_by_key(&b, |e| e.to)
            .is_ok()
    }

    /// Latency of the link `{a, b}` in microseconds, if the link exists.
    pub fn link_latency_us(&self, a: RouterId, b: RouterId) -> Option<u32> {
        self.adj[a.index()]
            .binary_search_by_key(&b, |e| e.to)
            .ok()
            .map(|i| self.adj[a.index()][i].latency_us)
    }

    /// Iterator over undirected links as `(a, b, latency_us)` with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = (RouterId, RouterId, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, edges)| {
            let a = RouterId(i as u32);
            edges
                .iter()
                .filter(move |e| a < e.to)
                .map(move |e| (a, e.to, e.latency_us))
        })
    }

    /// Optional human label of a router (presets name their routers).
    pub fn label(&self, r: RouterId) -> Option<&str> {
        self.labels
            .as_ref()
            .and_then(|l| l.get(r.index()))
            .map(String::as_str)
    }

    /// Looks a router up by label.
    pub fn router_by_label(&self, label: &str) -> Option<RouterId> {
        let labels = self.labels.as_ref()?;
        labels
            .iter()
            .position(|l| l == label)
            .map(|i| RouterId(i as u32))
    }

    /// All routers with exactly the given degree (ascending id order).
    pub fn routers_with_degree(&self, degree: usize) -> Vec<RouterId> {
        self.routers()
            .filter(|&r| self.degree(r) == degree)
            .collect()
    }

    /// All degree-1 routers — the attachment points the paper uses for peers.
    pub fn access_routers(&self) -> Vec<RouterId> {
        self.routers_with_degree(1)
    }

    /// Routers whose degree lies in `[lo, hi]` (inclusive) — the paper's
    /// "medium-size degree" routers where landmarks attach.
    pub fn routers_with_degree_between(&self, lo: usize, hi: usize) -> Vec<RouterId> {
        self.routers()
            .filter(|&r| {
                let d = self.degree(r);
                d >= lo && d <= hi
            })
            .collect()
    }

    /// Classifies every router as core / aggregation / access.
    ///
    /// Core = membership in the maximum k-core (the paper's "network core",
    /// justified by the betweenness-centrality argument it cites); access =
    /// degree 1; everything else is aggregation. For degenerate graphs where
    /// the maximum core is the whole graph (e.g. a ring), routers of degree 1
    /// still classify as access.
    pub fn classify(&self) -> Vec<RouterClass> {
        let core_numbers = crate::analysis::k_core_numbers(self);
        let max_core = core_numbers.iter().copied().max().unwrap_or(0);
        self.routers()
            .map(|r| {
                if self.degree(r) <= 1 {
                    RouterClass::Access
                } else if core_numbers[r.index()] == max_core && max_core >= 2 {
                    RouterClass::Core
                } else {
                    RouterClass::Aggregation
                }
            })
            .collect()
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.n_links() as f64 / self.n_routers() as f64
        }
    }

    /// Largest degree in the graph (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::TopologyBuilder;

    use super::*;

    fn triangle_plus_leaf() -> Topology {
        // 0-1-2 triangle, 3 hangs off 0.
        let mut b = TopologyBuilder::new();
        let n: Vec<RouterId> = (0..4).map(|_| b.add_router()).collect();
        b.link(n[0], n[1], 1000).unwrap();
        b.link(n[1], n[2], 1000).unwrap();
        b.link(n[0], n[2], 1000).unwrap();
        b.link(n[0], n[3], 2000).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let t = triangle_plus_leaf();
        assert_eq!(t.n_routers(), 4);
        assert_eq!(t.n_links(), 4);
        assert_eq!(t.degree(RouterId(0)), 3);
        assert_eq!(t.degree(RouterId(3)), 1);
        assert_eq!(t.mean_degree(), 2.0);
        assert_eq!(t.max_degree(), 3);
    }

    #[test]
    fn link_queries() {
        let t = triangle_plus_leaf();
        assert!(t.has_link(RouterId(0), RouterId(1)));
        assert!(t.has_link(RouterId(1), RouterId(0)));
        assert!(!t.has_link(RouterId(1), RouterId(3)));
        assert_eq!(t.link_latency_us(RouterId(0), RouterId(3)), Some(2000));
        assert_eq!(t.link_latency_us(RouterId(1), RouterId(3)), None);
    }

    #[test]
    fn links_iterator_is_undirected_once() {
        let t = triangle_plus_leaf();
        let links: Vec<_> = t.links().collect();
        assert_eq!(links.len(), 4);
        for (a, b, _) in links {
            assert!(a < b);
        }
    }

    #[test]
    fn degree_selectors() {
        let t = triangle_plus_leaf();
        assert_eq!(t.access_routers(), vec![RouterId(3)]);
        assert_eq!(
            t.routers_with_degree_between(2, 3),
            vec![RouterId(0), RouterId(1), RouterId(2)]
        );
    }

    #[test]
    fn classification_of_triangle_leaf() {
        let t = triangle_plus_leaf();
        let classes = t.classify();
        assert_eq!(classes[3], RouterClass::Access);
        // Triangle nodes form the 2-core.
        assert_eq!(classes[0], RouterClass::Core);
        assert_eq!(classes[1], RouterClass::Core);
        assert_eq!(classes[2], RouterClass::Core);
    }
}
