//! Property tests over the topology generators: every family must uphold
//! the invariants downstream crates rely on, for arbitrary configs/seeds.

use nearpeer_topology::analysis::{connected_components, is_connected, k_core_numbers};
use nearpeer_topology::generators::{
    barabasi_albert, glp, mapper, transit_stub, waxman, BaConfig, GlpConfig, MapperConfig,
    TransitStubConfig, WaxmanConfig,
};
use nearpeer_topology::{RouterId, Topology};
use proptest::prelude::*;

fn check_basic_invariants(topo: &Topology) {
    // Symmetric adjacency with consistent latencies, no self-loops.
    for (a, b, lat) in topo.links() {
        assert_ne!(a, b);
        assert!(topo.has_link(b, a));
        assert_eq!(topo.link_latency_us(b, a), Some(lat));
        assert!(lat > 0, "zero-latency link {a}-{b}");
    }
    // Degree sum identity.
    let degree_sum: usize = topo.routers().map(|r| topo.degree(r)).sum();
    assert_eq!(degree_sum, 2 * topo.n_links());
    // Core numbers never exceed degree.
    let cores = k_core_numbers(topo);
    for r in topo.routers() {
        assert!(cores[r.index()] <= topo.degree(r));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ba_invariants(n in 10usize..200, m in 1usize..4, seed in 0u64..1000) {
        prop_assume!(n > m + 1);
        let topo = barabasi_albert(&BaConfig { n, m }, seed).unwrap();
        check_basic_invariants(&topo);
        prop_assert!(is_connected(&topo));
        prop_assert_eq!(topo.n_routers(), n);
        for r in topo.routers() {
            prop_assert!(topo.degree(r) >= m);
        }
    }

    #[test]
    fn glp_invariants(n in 10usize..200, p in 0.0f64..0.9, beta in -1.0f64..0.99, seed in 0u64..1000) {
        let topo = glp(&GlpConfig { n, m: 1, p, beta }, seed).unwrap();
        check_basic_invariants(&topo);
        prop_assert!(is_connected(&topo));
        prop_assert_eq!(topo.n_routers(), n);
    }

    #[test]
    fn waxman_invariants(n in 5usize..120, alpha in 0.05f64..1.0, beta in 0.05f64..1.0, seed in 0u64..1000) {
        let topo = waxman(&WaxmanConfig { n, alpha, beta }, seed).unwrap();
        check_basic_invariants(&topo);
        prop_assert!(is_connected(&topo), "stitching must always connect");
        prop_assert_eq!(topo.n_routers(), n);
    }

    #[test]
    fn mapper_invariants(core in 5usize..80, access in 0usize..120, chain in 0usize..4, seed in 0u64..1000) {
        let cfg = MapperConfig {
            core_size: core,
            access_count: access,
            max_chain: chain,
            glp_p: 0.4695,
            glp_beta: 0.6447,
        };
        let topo = mapper(&cfg, seed).unwrap();
        check_basic_invariants(&topo);
        prop_assert!(is_connected(&topo));
        prop_assert!(topo.access_routers().len() >= access);
        // The core ids come first and are untouched by leaf attachment.
        prop_assert!(topo.n_routers() >= core + access);
    }

    #[test]
    fn transit_stub_invariants(
        domains in 1usize..4,
        tsize in 1usize..5,
        stubs in 1usize..3,
        ssize in 1usize..4,
        seed in 0u64..1000,
    ) {
        let cfg = TransitStubConfig {
            transit_domains: domains,
            transit_size: tsize,
            stubs_per_transit_router: stubs,
            stub_size: ssize,
            extra_edge_prob: 0.3,
            access_per_stub: 1,
        };
        let topo = transit_stub(&cfg, seed).unwrap();
        check_basic_invariants(&topo);
        let (_, components) = connected_components(&topo);
        prop_assert_eq!(components, 1);
    }

    #[test]
    fn classification_is_total_and_consistent(core in 5usize..50, access in 5usize..60, seed in 0u64..500) {
        let topo = mapper(&MapperConfig::with_access(core, access), seed).unwrap();
        let classes = topo.classify();
        prop_assert_eq!(classes.len(), topo.n_routers());
        for r in topo.routers() {
            if topo.degree(r) <= 1 {
                prop_assert_eq!(
                    classes[r.index()],
                    nearpeer_topology::RouterClass::Access
                );
            }
        }
    }

    #[test]
    fn io_round_trip_any_mapper(core in 5usize..40, access in 0usize..50, seed in 0u64..200) {
        let topo = mapper(&MapperConfig::with_access(core, access), seed).unwrap();
        let json = nearpeer_topology::io::to_json(&topo);
        let back = nearpeer_topology::io::from_json(&json).unwrap();
        prop_assert_eq!(&topo, &back);
        let edges = nearpeer_topology::io::to_edge_list(&topo);
        let back2 = nearpeer_topology::io::from_edge_list(&edges).unwrap();
        prop_assert_eq!(topo.n_links(), back2.n_links());
        for (a, b, lat) in topo.links() {
            prop_assert_eq!(back2.link_latency_us(a, b), Some(lat));
        }
    }
}

#[test]
fn mapper_core_ids_precede_fringe() {
    let cfg = MapperConfig::with_access(30, 40);
    let topo = mapper(&cfg, 3).unwrap();
    // Core routers are ids 0..core_size by construction; each must have at
    // least one link (GLP is connected).
    for i in 0..30u32 {
        assert!(topo.degree(RouterId(i)) >= 1);
    }
}
