//! Named (x, y) series with CSV export — the figure-regeneration format.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One named trace of (x, y) points, e.g. `D/Dclosest` versus peer count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Y value at the given x, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    /// Largest y value, if any.
    pub fn y_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }

    /// Smallest y value, if any.
    pub fn y_min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.min(y))))
    }
}

/// A set of series sharing an x axis — one figure.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesSet {
    /// Axis label for x.
    pub x_label: String,
    /// Axis label for y.
    pub y_label: String,
    /// The traces.
    pub series: Vec<Series>,
}

impl SeriesSet {
    /// Creates an empty figure with axis labels.
    pub fn new(x_label: impl Into<String>, y_label: impl Into<String>) -> Self {
        Self {
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series and returns a mutable handle to it.
    pub fn add(&mut self, name: impl Into<String>) -> &mut Series {
        self.series.push(Series::new(name));
        self.series.last_mut().expect("just pushed")
    }

    /// Finds a series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders the set as CSV: header `x,<name1>,<name2>,...`, one row per
    /// distinct x (union of all series), empty cells where a series has no
    /// point at that x.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name.replace(',', ";"));
        }
        out.push('\n');
        for x in xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                out.push(',');
                if let Some(y) = s.y_at(x) {
                    let _ = write!(out, "{y}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a crude ASCII plot (one char per cell), good enough to eyeball
    /// trends in terminal output: rows are y buckets, columns x points.
    pub fn to_ascii_plot(&self, width: usize, height: usize) -> String {
        let width = width.max(8);
        let height = height.max(4);
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if all.is_empty() {
            return String::from("(empty plot)\n");
        }
        let (mut x_min, mut x_max, mut y_min, mut y_max) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for (x, y) in &all {
            x_min = x_min.min(*x);
            x_max = x_max.max(*x);
            y_min = y_min.min(*y);
            y_max = y_max.max(*y);
        }
        let x_span = if x_max > x_min { x_max - x_min } else { 1.0 };
        let y_span = if y_max > y_min { y_max - y_min } else { 1.0 };
        let mut grid = vec![vec![' '; width]; height];
        let marks = ['*', '+', 'o', 'x', '#', '@'];
        for (si, s) in self.series.iter().enumerate() {
            let mark = marks[si % marks.len()];
            for (x, y) in &s.points {
                let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
                let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
                grid[height - 1 - row][col] = mark;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} (y: {:.3}..{:.3})", self.y_label, y_min, y_max);
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        let _ = writeln!(out, "+{}", "-".repeat(width));
        let _ = writeln!(out, " {} (x: {:.0}..{:.0})", self.x_label, x_min, x_max);
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "   {} = {}", marks[si % marks.len()], s.name);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> SeriesSet {
        let mut set = SeriesSet::new("n", "ratio");
        let a = set.add("D/Dclosest");
        a.push(600.0, 1.2);
        a.push(800.0, 1.25);
        let b = set.add("Drandom/Dclosest");
        b.push(600.0, 2.3);
        b.push(800.0, 2.25);
        set
    }

    #[test]
    fn csv_round_shape() {
        let csv = sample_set().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,D/Dclosest,Drandom/Dclosest");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("600,1.2,"));
    }

    #[test]
    fn csv_handles_missing_points() {
        let mut set = sample_set();
        set.add("sparse").push(700.0, 9.9);
        let csv = set.to_csv();
        // 700 row exists with empty cells for the other two series.
        assert!(
            csv.lines().any(|l| l.starts_with("700,,,9.9")),
            "csv:\n{csv}"
        );
    }

    #[test]
    fn lookup_helpers() {
        let set = sample_set();
        let a = set.get("D/Dclosest").unwrap();
        assert_eq!(a.y_at(600.0), Some(1.2));
        assert_eq!(a.y_max(), Some(1.25));
        assert_eq!(a.y_min(), Some(1.2));
        assert!(set.get("nope").is_none());
    }

    #[test]
    fn ascii_plot_mentions_series() {
        let s = sample_set().to_ascii_plot(40, 10);
        assert!(s.contains("D/Dclosest"));
        assert!(s.contains('*'));
    }

    #[test]
    fn commas_in_names_are_sanitised() {
        let mut set = SeriesSet::new("x,axis", "y");
        set.add("a,b").push(1.0, 2.0);
        let csv = set.to_csv();
        assert!(csv.starts_with("x;axis,a;b\n"));
    }
}
