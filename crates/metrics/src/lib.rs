//! Statistics and reporting primitives for `nearpeer` experiments.
//!
//! Every experiment in the reproduction reduces to collections of scalar
//! samples (hop distances, ratios, latencies, probe counts). This crate
//! provides the small, dependency-light toolkit that the benchmark harness
//! and the examples use to summarise those samples and render them in the
//! same form the paper reports:
//!
//! * [`Summary`] / [`OnlineStats`] — batch and streaming moments,
//! * [`Cdf`] — empirical distribution functions,
//! * [`ConfidenceInterval`] — normal-approximation and bootstrap intervals,
//! * [`Table`] — fixed-width ASCII tables (the "rows the paper reports"),
//! * [`Series`] — named (x, y) traces with CSV export (the paper's figure).
//!
//! The crate is deliberately free of experiment-specific logic so that it can
//! be reused by any crate in the workspace (and in doctests) without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod ci;
mod online;
mod series;
mod summary;
mod table;

pub use cdf::Cdf;
pub use ci::{bootstrap_mean_ci, normal_mean_ci, ConfidenceInterval};
pub use online::OnlineStats;
pub use series::{Series, SeriesSet};
pub use summary::Summary;
pub use table::{Align, Table};

/// Computes the ratio of two sums, returning `None` when the denominator is
/// zero (e.g. `D / Dclosest` in the paper's Figure 2).
///
/// ```
/// assert_eq!(nearpeer_metrics::ratio(6.0, 3.0), Some(2.0));
/// assert_eq!(nearpeer_metrics::ratio(6.0, 0.0), None);
/// ```
pub fn ratio(numerator: f64, denominator: f64) -> Option<f64> {
    if denominator == 0.0 {
        None
    } else {
        Some(numerator / denominator)
    }
}

/// Arithmetic mean of a slice; `None` when empty.
///
/// ```
/// assert_eq!(nearpeer_metrics::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(nearpeer_metrics::mean(&[]), None);
/// ```
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}
