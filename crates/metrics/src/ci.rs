//! Confidence intervals for experiment means.

use serde::{Deserialize, Serialize};

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Nominal confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower && x <= self.upper
    }
}

/// z value for common two-sided confidence levels; falls back to 1.96.
fn z_for_level(level: f64) -> f64 {
    // Hard-coding the handful of levels experiments actually use avoids an
    // inverse-erf implementation.
    if (level - 0.90).abs() < 1e-9 {
        1.6449
    } else if (level - 0.95).abs() < 1e-9 {
        1.9600
    } else if (level - 0.99).abs() < 1e-9 {
        2.5758
    } else {
        1.9600
    }
}

/// Normal-approximation CI for the mean of `samples`.
///
/// Returns `None` for fewer than 2 samples (no variance estimate).
pub fn normal_mean_ci(samples: &[f64], level: f64) -> Option<ConfidenceInterval> {
    if samples.len() < 2 || samples.iter().any(|x| x.is_nan()) {
        return None;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let se = (var / n).sqrt();
    let z = z_for_level(level);
    Some(ConfidenceInterval {
        estimate: mean,
        lower: mean - z * se,
        upper: mean + z * se,
        level,
    })
}

/// Percentile-bootstrap CI for the mean, using a deterministic xorshift
/// resampler seeded by `seed` (so experiment reports are reproducible without
/// pulling `rand` into this crate).
pub fn bootstrap_mean_ci(
    samples: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfidenceInterval> {
    if samples.len() < 2 || samples.iter().any(|x| x.is_nan()) || resamples == 0 {
        return None;
    }
    let n = samples.len();
    let mut state = seed.max(1); // xorshift64 must not start at 0
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            let idx = (next() % n as u64) as usize;
            sum += samples[idx];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * resamples as f64) as usize).min(resamples - 1);
    let hi_idx = (((1.0 - alpha) * resamples as f64) as usize).min(resamples - 1);
    let mean = samples.iter().sum::<f64>() / n as f64;
    Some(ConfidenceInterval {
        estimate: mean,
        lower: means[lo_idx],
        upper: means[hi_idx],
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_ci_brackets_mean() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ci = normal_mean_ci(&xs, 0.95).unwrap();
        assert!(ci.contains(ci.estimate));
        assert!((ci.estimate - 49.5).abs() < 1e-12);
        assert!(ci.lower < 49.5 && ci.upper > 49.5);
    }

    #[test]
    fn wider_level_wider_interval() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let ci90 = normal_mean_ci(&xs, 0.90).unwrap();
        let ci99 = normal_mean_ci(&xs, 0.99).unwrap();
        assert!(ci99.half_width() > ci90.half_width());
    }

    #[test]
    fn bootstrap_is_deterministic_and_sane() {
        let xs: Vec<f64> = (0..40).map(|i| ((i * 37) % 11) as f64).collect();
        let a = bootstrap_mean_ci(&xs, 0.95, 500, 42).unwrap();
        let b = bootstrap_mean_ci(&xs, 0.95, 500, 42).unwrap();
        assert_eq!(a, b);
        assert!(a.lower <= a.estimate && a.estimate <= a.upper);
    }

    #[test]
    fn too_few_samples() {
        assert!(normal_mean_ci(&[1.0], 0.95).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 100, 1).is_none());
    }
}
