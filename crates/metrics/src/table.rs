//! Fixed-width ASCII table rendering for experiment reports.

use std::fmt;

/// Column alignment in a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// A simple fixed-width ASCII table.
///
/// Experiment binaries print these so that "the rows the paper reports" are
/// directly visible in terminal output and in CI logs.
///
/// ```
/// use nearpeer_metrics::{Align, Table};
/// let mut t = Table::new(vec!["n".into(), "D/Dclosest".into()]);
/// t.align(vec![Align::Right, Align::Right]);
/// t.row(vec!["600".into(), "1.21".into()]);
/// let out = t.to_string();
/// assert!(out.contains("D/Dclosest"));
/// assert!(out.contains("1.21"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    align: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header cells.
    pub fn new(header: Vec<String>) -> Self {
        let n = header.len();
        Self {
            header,
            align: vec![Align::Left; n],
            rows: Vec::new(),
        }
    }

    /// Sets per-column alignment; extra entries are ignored, missing ones
    /// default to left.
    pub fn align(&mut self, align: Vec<Align>) -> &mut Self {
        for (i, a) in align.into_iter().enumerate().take(self.header.len()) {
            self.align[i] = a;
        }
        self
    }

    /// Appends a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows are truncated.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of floats rendered with `prec` decimals,
    /// prefixed by a label cell.
    pub fn row_f64(&mut self, label: &str, values: &[f64], prec: usize) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.prec$}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                match self.align[i] {
                    Align::Left => write!(f, " {:<w$} |", cell, w = widths[i])?,
                    Align::Right => write!(f, " {:>w$} |", cell, w = widths[i])?,
                }
            }
            writeln!(f)
        };
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        rule(f)?;
        render(f, &self.header)?;
        rule(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        rule(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_alignment_and_padding() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.align(vec![Align::Left, Align::Right]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("| a         |     1 |"), "got:\n{s}");
        assert!(s.contains("| long-name |    22 |"), "got:\n{s}");
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.n_rows(), 2);
        let s = t.to_string();
        assert!(!s.contains('3'));
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new(vec!["k".into(), "v1".into(), "v2".into()]);
        t.row_f64("r", &[1.23456, 2.0], 2);
        let s = t.to_string();
        assert!(s.contains("1.23"));
        assert!(s.contains("2.00"));
    }
}
