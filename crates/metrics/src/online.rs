//! Streaming (Welford) statistics for metrics accumulated during simulation.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance accumulator (Welford's
/// algorithm), plus min/max tracking.
///
/// Used inside the simulator where storing every sample would be wasteful
/// (e.g. per-message latencies over millions of deliveries).
///
/// ```
/// use nearpeer_metrics::OnlineStats;
/// let mut st = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     st.push(x);
/// }
/// assert_eq!(st.count(), 3);
/// assert_eq!(st.mean(), 4.0);
/// assert_eq!(st.min(), Some(2.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample. NaN samples are ignored (and not counted) so that a
    /// single bad measurement cannot poison a whole run.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of samples pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples so far (0 if none).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample seen, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Sum of samples seen.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_summary() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut st = OnlineStats::new();
        for &x in &xs {
            st.push(x);
        }
        assert_eq!(st.count(), 8);
        assert!((st.mean() - 5.0).abs() < 1e-12);
        assert!((st.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(st.min(), Some(2.0));
        assert_eq!(st.max(), Some(9.0));
    }

    #[test]
    fn nan_is_skipped() {
        let mut st = OnlineStats::new();
        st.push(1.0);
        st.push(f64::NAN);
        st.push(3.0);
        assert_eq!(st.count(), 2);
        assert_eq!(st.mean(), 2.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 5.0);
    }
}
