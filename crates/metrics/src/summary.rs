//! Batch summary statistics over a sample vector.

use serde::{Deserialize, Serialize};

/// A batch summary of a set of scalar samples.
///
/// Construction sorts a copy of the input once; percentile queries are then
/// O(1). NaN samples are rejected at construction so the ordering is total.
///
/// ```
/// use nearpeer_metrics::Summary;
/// let s = Summary::new(&[4.0, 1.0, 3.0, 2.0]).unwrap();
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.median(), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Summary {
    /// Builds a summary; returns `None` for an empty slice or if any sample
    /// is NaN.
    pub fn new(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let variance = if sorted.len() < 2 {
            0.0
        } else {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        };
        Some(Self {
            sorted,
            mean,
            variance,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: empty summaries cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for a single sample).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`; values outside the
    /// range are clamped.
    pub fn percentile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 100.0);
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = rank - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// The 50th percentile.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean * self.sorted.len() as f64
    }

    /// The sorted samples backing this summary.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }

    /// One-line human rendering: `mean ± std [min, max] (n)`.
    pub fn display_line(&self) -> String {
        format!(
            "{:.4} ± {:.4} [{:.4}, {:.4}] (n={})",
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Summary::new(&[]).is_none());
        assert!(Summary::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::new(&[7.0]).unwrap();
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.percentile(0.0), 7.0);
        assert_eq!(s.percentile(100.0), 7.0);
        assert_eq!(s.median(), 7.0);
    }

    #[test]
    fn known_variance() {
        // Samples 2,4,4,4,5,5,7,9: mean 5, population var 4, sample var 32/7.
        let s = Summary::new(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolation() {
        let s = Summary::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        // rank = 0.5*(3) = 1.5 → halfway between 20 and 30.
        assert_eq!(s.median(), 25.0);
        // Clamping out-of-range p.
        assert_eq!(s.percentile(-5.0), 10.0);
        assert_eq!(s.percentile(150.0), 40.0);
    }

    #[test]
    fn sum_matches() {
        let s = Summary::new(&[1.5, 2.5, 3.0]).unwrap();
        assert!((s.sum() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn display_line_contains_count() {
        let s = Summary::new(&[1.0, 2.0]).unwrap();
        assert!(s.display_line().contains("n=2"));
    }
}
