//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// `eval(x)` returns the fraction of samples `<= x`; `quantile(q)` inverts it.
/// Both are O(log n) after the one-time sort at construction.
///
/// ```
/// use nearpeer_metrics::Cdf;
/// let cdf = Cdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.5);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF; `None` for an empty slice or NaN samples.
    pub fn new(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        Some(Self { sorted })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x via binary search.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Value below which a `q` fraction of the samples fall (`q` clamped to
    /// `[0, 1]`); the empirical quantile (inverse CDF, right-continuous).
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.sorted[0];
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Renders the CDF as `points` evenly spaced (value, fraction) pairs,
    /// suitable for plotting.
    pub fn points(&self, points: usize) -> Vec<(f64, f64)> {
        let points = points.max(2);
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_behaviour() {
        let cdf = Cdf::new(&[1.0, 1.0, 2.0, 5.0]).unwrap();
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(1.0), 0.5);
        assert_eq!(cdf.eval(1.5), 0.5);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(5.0), 1.0);
    }

    #[test]
    fn quantile_inverts() {
        let cdf = Cdf::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(0.25), 10.0);
        assert_eq!(cdf.quantile(0.5), 20.0);
        assert_eq!(cdf.quantile(1.0), 40.0);
    }

    #[test]
    fn points_cover_range() {
        let cdf = Cdf::new(&[0.0, 10.0]).unwrap();
        let pts = cdf.points(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[4], (10.0, 1.0));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cdf::new(&[]).is_none());
        assert!(Cdf::new(&[f64::NAN]).is_none());
    }
}
