//! Property tests for the statistics toolkit.

use nearpeer_metrics::{bootstrap_mean_ci, normal_mean_ci, Cdf, OnlineStats, Summary};
use proptest::prelude::*;

fn finite_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn online_matches_batch(samples in finite_samples(200)) {
        let batch = Summary::new(&samples).unwrap();
        let mut online = OnlineStats::new();
        for &x in &samples {
            online.push(x);
        }
        prop_assert_eq!(online.count() as usize, samples.len());
        prop_assert!((online.mean() - batch.mean()).abs() <= 1e-6 * (1.0 + batch.mean().abs()));
        prop_assert!(
            (online.variance() - batch.variance()).abs()
                <= 1e-6 * (1.0 + batch.variance().abs())
        );
        prop_assert_eq!(online.min().unwrap(), batch.min());
        prop_assert_eq!(online.max().unwrap(), batch.max());
    }

    #[test]
    fn merge_any_split_matches(samples in finite_samples(100), split in any::<prop::sample::Index>()) {
        let cut = split.index(samples.len());
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &samples[..cut] {
            left.push(x);
        }
        for &x in &samples[cut..] {
            right.push(x);
        }
        let mut whole = OnlineStats::new();
        for &x in &samples {
            whole.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
    }

    #[test]
    fn percentiles_are_monotone(samples in finite_samples(150), a in 0.0f64..100.0, b in 0.0f64..100.0) {
        let s = Summary::new(&samples).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(s.percentile(lo) <= s.percentile(hi));
        prop_assert!(s.percentile(0.0) == s.min());
        prop_assert!(s.percentile(100.0) == s.max());
        prop_assert!(s.min() <= s.mean() && s.mean() <= s.max());
    }

    #[test]
    fn cdf_is_monotone_and_bounded(samples in finite_samples(150), xs in prop::collection::vec(-1e6f64..1e6, 2..10)) {
        let cdf = Cdf::new(&samples).unwrap();
        let mut sorted = xs.clone();
        sorted.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let values: Vec<f64> = sorted.iter().map(|&x| cdf.eval(x)).collect();
        prop_assert!(values.windows(2).all(|w| w[0] <= w[1]));
        for v in values {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // Quantile inverts within the sample set.
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let x = cdf.quantile(q);
            prop_assert!(samples.contains(&x));
        }
    }

    #[test]
    fn cis_contain_the_sample_mean(samples in prop::collection::vec(-1e3f64..1e3, 3..80)) {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        if let Some(ci) = normal_mean_ci(&samples, 0.95) {
            prop_assert!(ci.contains(mean));
            prop_assert!(ci.lower <= ci.upper);
        }
        if let Some(ci) = bootstrap_mean_ci(&samples, 0.95, 200, 7) {
            prop_assert!((ci.estimate - mean).abs() < 1e-9);
            prop_assert!(ci.lower <= ci.upper);
        }
    }
}
