//! Crash-restart soak: the durability pipeline's CI guard.
//!
//! Three stages, each fatal on failure:
//!
//! 1. the **fault matrix** — recovery driven through every
//!    [`nearpeer_core::FaultPlan`] arm (truncated/bit-rotted snapshot,
//!    torn/corrupted journal, writer killed between batches), asserting
//!    fail-closed or last-consistent-point per class;
//! 2. the **kill/rejoin soak** — churn a federation while one region's
//!    ops stream through the background writer, kill it mid-load,
//!    verify queries route around the hole, rejoin it from the durable
//!    bytes, and gate on zero counter drift between the dead server and
//!    its recovery plus the conservation/tombstone gates;
//! 3. optionally (`--throughput`), an **A/B pair** with the kill
//!    disabled: the same workload with the writer on vs off, reporting
//!    the snapshotting overhead ratio.
//!
//! Run in release mode.
//!
//! ```sh
//! cargo run --release -p nearpeer-bench --bin restart_soak -- \
//!     [--peers N] [--regions N] [--epochs N] [--kill-at E] [--down E] \
//!     [--throughput] [--json] [--budget-secs S] [--seed S]
//! ```

use nearpeer_bench::experiments::restart::{
    check_restart_soak, run_fault_matrix, run_restart_soak, RestartSoakConfig, RestartSoakResult,
};
use std::time::Instant;

struct Args {
    peers: usize,
    regions: usize,
    epochs: u64,
    kill_at: u64,
    down: u64,
    throughput: bool,
    json: bool,
    budget_secs: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let smoke = RestartSoakConfig::smoke();
    let mut out = Args {
        peers: smoke.peers,
        regions: smoke.regions,
        epochs: smoke.epochs,
        kill_at: smoke.kill_at_epoch,
        down: smoke.down_epochs,
        throughput: false,
        json: false,
        budget_secs: 0,
        seed: 42,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--peers" => {
                let v = value("--peers")?;
                out.peers = v.parse().map_err(|_| format!("bad --peers value {v}"))?;
            }
            "--regions" => {
                let v = value("--regions")?;
                out.regions = v.parse().map_err(|_| format!("bad --regions value {v}"))?;
            }
            "--epochs" => {
                let v = value("--epochs")?;
                out.epochs = v.parse().map_err(|_| format!("bad --epochs value {v}"))?;
            }
            "--kill-at" => {
                let v = value("--kill-at")?;
                out.kill_at = v.parse().map_err(|_| format!("bad --kill-at value {v}"))?;
            }
            "--down" => {
                let v = value("--down")?;
                out.down = v.parse().map_err(|_| format!("bad --down value {v}"))?;
            }
            "--throughput" => out.throughput = true,
            "--json" => out.json = true,
            "--budget-secs" => {
                let v = value("--budget-secs")?;
                out.budget_secs = v
                    .parse()
                    .map_err(|_| format!("bad --budget-secs value {v}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                out.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: [--peers N] [--regions N] [--epochs N] [--kill-at E] [--down E] \
                     [--throughput] [--json] [--budget-secs S] [--seed S]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(out)
}

fn config_for(args: &Args) -> RestartSoakConfig {
    RestartSoakConfig {
        peers: args.peers,
        regions: args.regions,
        n_landmarks: args.regions * 2,
        epochs: args.epochs,
        kill_at_epoch: args.kill_at,
        down_epochs: args.down,
        ..RestartSoakConfig::smoke()
    }
}

fn print_result(label: &str, r: &RestartSoakResult) {
    let c = r.counters;
    println!(
        "restart_soak[{label}]: {} regions x {} leases x {} epochs: {} events in {:.2}s = {:.0} events/sec",
        r.config.regions, r.config.peers, c.epochs_run, c.events, r.elapsed_secs, r.events_per_sec,
    );
    println!(
        "  joins {} / leaves {} / expired {} / heartbeats {} / handovers {} / forwards {}",
        c.joins, c.leaves, c.expired, c.heartbeats, c.handovers, c.forward_moves
    );
    if r.killed {
        println!(
            "  kill@{}: drift {} / journal {} records ({} bytes, torn {}) / dropped {}+{}+{} / fallback {}/{}",
            r.config.kill_at_epoch,
            r.recovered_drift,
            r.recovery_journal_records,
            r.recovery_journal_bytes,
            r.recovery_torn_tail,
            c.dropped_joins,
            c.dropped_leaves,
            c.dropped_heartbeats,
            c.fallback_answered,
            c.fallback_queries,
        );
    }
    println!(
        "  peak population {} / final {} / residual tombstones {} / snapshots {} (+{} rate-limited) / writer records {}",
        r.peak_population,
        r.final_population,
        r.final_tombstones,
        r.snapshots_written,
        r.snapshots_skipped,
        r.writer_records,
    );
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let t0 = Instant::now();

    // Stage 1: the fault matrix.
    let matrix = run_fault_matrix();
    let mut matrix_ok = true;
    for case in &matrix {
        println!(
            "restart_soak[faults]: {:<18} {} — {}",
            case.name,
            if case.passed { "ok" } else { "FAILED" },
            case.detail
        );
        matrix_ok &= case.passed;
    }
    if !matrix_ok {
        eprintln!("restart_soak: FAILED: fault matrix");
        std::process::exit(1);
    }

    // Stage 2: the kill/rejoin gate.
    let cfg = config_for(&args);
    let result = match run_restart_soak(&cfg, args.seed) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("restart_soak: FAILED: {msg}");
            std::process::exit(1);
        }
    };
    print_result("kill+rejoin", &result);
    if let Err(msg) = check_restart_soak(&result) {
        eprintln!("restart_soak: FAILED: {msg}");
        std::process::exit(1);
    }
    if args.json {
        println!("{}", serde_json::to_string_pretty(&result).unwrap());
    }

    // Stage 3: snapshotting-overhead A/B (kill disabled, identical
    // workloads, writer on vs off).
    if args.throughput {
        let durable_cfg = RestartSoakConfig {
            kill_at_epoch: u64::MAX,
            ..cfg.clone()
        };
        let baseline_cfg = RestartSoakConfig {
            durability: false,
            ..durable_cfg.clone()
        };
        let durable = run_restart_soak(&durable_cfg, args.seed).expect("durable run");
        let baseline = run_restart_soak(&baseline_cfg, args.seed).expect("baseline run");
        for r in [&durable, &baseline] {
            if let Err(msg) = check_restart_soak(r) {
                eprintln!("restart_soak: FAILED: throughput run: {msg}");
                std::process::exit(1);
            }
        }
        let ratio = durable.events_per_sec / baseline.events_per_sec.max(1e-9);
        print_result("durable", &durable);
        print_result("baseline", &baseline);
        println!(
            "restart_soak[throughput]: durable {:.0} ev/s vs baseline {:.0} ev/s = {:.1}% of baseline",
            durable.events_per_sec,
            baseline.events_per_sec,
            ratio * 100.0
        );
        if ratio < 0.9 {
            eprintln!(
                "restart_soak: FAILED: snapshotting costs {:.1}% > 10% of churn throughput",
                (1.0 - ratio) * 100.0
            );
            std::process::exit(1);
        }
    }

    let total = t0.elapsed();
    if args.budget_secs > 0 && total.as_secs() > args.budget_secs {
        eprintln!(
            "restart_soak: took {:.2?}, budget {}s — the restart cycle regressed",
            total, args.budget_secs
        );
        std::process::exit(1);
    }
    println!("restart_soak: OK ({:.2?} total)", total);
}
