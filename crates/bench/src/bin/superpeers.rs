//! Experiment W2 — super-peer promotion thresholds and delegation.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::superpeers::{self, SuperPeerStudyConfig};
use nearpeer_bench::ExperimentWriter;

fn main() {
    let args = CommonArgs::parse();
    let config = if args.quick {
        SuperPeerStudyConfig::quick()
    } else {
        SuperPeerStudyConfig::standard()
    };
    println!("W2 — super-peers");
    println!(
        "{} peers, {} landmarks, regions at depth {} below the landmark\n",
        config.n_peers, config.n_landmarks, config.region_depth
    );

    let result = superpeers::run(&config, 42);
    print!("{}", result.table());

    if let Ok(writer) = ExperimentWriter::new("superpeers") {
        let _ = writer.write_json("result.json", &result);
        println!("artifacts: {}", writer.dir().display());
    }
}
