//! Federation soak: replay a region-biased churn + mobility trace
//! through an N-region federation — cross-region handovers plant
//! forwarding tombstones, federation-aware expiry distinguishes "moved"
//! from "silent", and the run fails if population conservation breaks or
//! any tombstone leaks past the drain.
//!
//! This is the CI guard for the federation subsystem, mirroring the
//! `churn_soak` gate: peers use synthetic tree-consistent paths
//! (`SyntheticJoins`), the directory under test is the production one.
//! Run in release mode.
//!
//! ```sh
//! cargo run --release -p nearpeer-bench --bin federation_soak -- \
//!     [--regions N] [--peers N] [--events N] [--fanout N] [--adaptive] \
//!     [--budget-secs S] [--seed S]
//! ```

use nearpeer_bench::experiments::federation::{
    check_federation_soak, run_federation_soak, FederationSoakConfig, FederationSoakResult,
};
use nearpeer_core::AdaptiveLeaseConfig;
use std::time::Instant;

struct Args {
    regions: usize,
    peers: usize,
    events: u64,
    fanout: Option<usize>,
    adaptive: bool,
    budget_secs: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        regions: 4,
        peers: 25_000,
        events: 0,
        fanout: None,
        adaptive: false,
        budget_secs: 0,
        seed: 42,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--regions" => {
                let v = value("--regions")?;
                out.regions = v.parse().map_err(|_| format!("bad --regions value {v}"))?;
            }
            "--peers" => {
                let v = value("--peers")?;
                out.peers = v.parse().map_err(|_| format!("bad --peers value {v}"))?;
            }
            "--events" => {
                let v = value("--events")?;
                out.events = v.parse().map_err(|_| format!("bad --events value {v}"))?;
            }
            "--fanout" => {
                let v = value("--fanout")?;
                out.fanout = Some(v.parse().map_err(|_| format!("bad --fanout value {v}"))?);
            }
            "--adaptive" => out.adaptive = true,
            "--budget-secs" => {
                let v = value("--budget-secs")?;
                out.budget_secs = v
                    .parse()
                    .map_err(|_| format!("bad --budget-secs value {v}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                out.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: [--regions N] [--peers N] [--events N] [--fanout N] \
                     [--adaptive] [--budget-secs S] [--seed S]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(out)
}

fn config_for(args: &Args) -> FederationSoakConfig {
    // A cycle is roughly 2·peers churn events plus the mobility moves;
    // `--events` asks for enough cycles to cover it.
    let per_cycle = (args.peers as u64) * 2;
    let cycles = if args.events == 0 {
        1
    } else {
        (args.events.div_ceil(per_cycle)).max(1) as usize
    };
    let mut cfg = FederationSoakConfig {
        regions: args.regions,
        peers: args.peers,
        cycles,
        // Landmarks scale with regions (2 per region, like the smoke
        // shape); arrival horizon ~100s regardless of population.
        n_landmarks: args.regions * 2,
        arrival_rate: (args.peers as f64 / 100.0).max(10.0),
        fanout: args.fanout,
        ..FederationSoakConfig::smoke()
    };
    if args.adaptive {
        // The floor must outlast the heartbeat stride, or live peers
        // expire between renewals (see AdaptiveLeaseConfig::min_age).
        cfg.adaptive = Some(AdaptiveLeaseConfig {
            ewma_shift: 1,
            margin: 1,
            min_age: cfg.heartbeat_every as u32 + 1,
            max_age: cfg.max_age as u32,
            max_tracked: 65_536,
        });
    }
    cfg
}

fn print_result(r: &FederationSoakResult) {
    let c = r.counters;
    println!(
        "federation_soak: {} regions x {} peers x {} cycle(s), fanout {:?}, adaptive {}: \
         {} events in {:.2}s = {:.0} events/sec",
        r.config.regions,
        r.config.peers,
        r.config.cycles,
        r.config.fanout,
        r.config.adaptive.is_some(),
        c.events,
        r.elapsed_secs,
        r.events_per_sec,
    );
    println!(
        "  joins {} / renewals {} / comebacks {} / moves {} ({} cross-region, {} skipped)",
        c.joins, c.renewals, c.comeback_handovers, c.moves, c.cross_region_moves, c.skipped_moves
    );
    println!(
        "  heartbeats {} / leaves {} / fails {} / expired {} / tombstones swept {}",
        c.heartbeats, c.leaves, c.fails, c.expired, c.moved_swept
    );
    println!(
        "  peak population {} / final {} {:?} / residual tombstones {} / epochs {}",
        r.peak_population, r.final_population, r.final_per_region, r.final_tombstones, c.epochs
    );
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let t0 = Instant::now();
    let cfg = config_for(&args);
    let result = run_federation_soak(&cfg, args.seed);
    print_result(&result);
    if let Err(msg) = check_federation_soak(&result) {
        eprintln!("federation_soak: FAILED: {msg}");
        std::process::exit(1);
    }
    let total = t0.elapsed();
    if args.budget_secs > 0 && total.as_secs() > args.budget_secs {
        eprintln!(
            "federation_soak: took {:.2?}, budget {}s — the federated replay regressed",
            total, args.budget_secs
        );
        std::process::exit(1);
    }
    println!("federation_soak: OK ({:.2?} total)", total);
}
