//! `nearpeerd` — the discovery server on a real socket.
//!
//! Serves the actorized plane ([`nearpeer_core::ActorServer`], or an
//! [`nearpeer_core::ActorFederation`] with `--regions > 1`) over TCP:
//! one thread per connection runs a frame-reassembly loop and feeds
//! decoded messages to the shared [`nearpeer_core::WireService`]. The
//! world is the synthetic landmark layout (`--landmarks N` routers, all
//! 4 hops apart), matching what `wire_loadgen` mirrors locally.
//!
//! Transport rules (see [`nearpeer_bench::wire::serve_connection`]):
//! partial reads reassemble; a malformed frame is skipped (the codec
//! consumed it); an oversized length prefix drops the connection; idle
//! eviction counts byte progress, not completed frames; standing
//! subscriptions get server-initiated `DeltaPush` frames on their own
//! connection; a `Shutdown` frame is acked, then the daemon stops
//! accepting, drains every open connection (granting in-flight partial
//! frames a bounded grace) and exits.

use nearpeer_bench::wire::{build_service, serve_connection};
use nearpeer_core::ServerConfig;
use std::io::{self, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    landmarks: usize,
    regions: usize,
    neighbor_count: usize,
    /// Seconds a connection may sit idle (no complete frame) before the
    /// daemon evicts it; `0` disables the deadline.
    idle_secs: u64,
    /// Dump a compact registry snapshot to stderr every N seconds;
    /// `0` disables the dumps.
    stats_every: u64,
    /// Queries at or above this many µs land in the slow-query log;
    /// `0` keeps the log disabled.
    slow_query_us: u64,
    /// Disable latency timing (counters still count) — the A/B switch
    /// for measuring telemetry overhead.
    no_timing: bool,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut out = Self {
            listen: "127.0.0.1:4700".into(),
            landmarks: 8,
            regions: 1,
            neighbor_count: 5,
            idle_secs: 300,
            stats_every: 0,
            slow_query_us: 0,
            no_timing: false,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            let mut value = |flag: &str| iter.next().ok_or(format!("{flag} needs a value"));
            match arg.as_str() {
                "--listen" => out.listen = value("--listen")?,
                "--landmarks" => {
                    let v = value("--landmarks")?;
                    out.landmarks = v.parse().map_err(|_| format!("bad --landmarks {v}"))?;
                }
                "--regions" => {
                    let v = value("--regions")?;
                    out.regions = v.parse().map_err(|_| format!("bad --regions {v}"))?;
                }
                "--neighbor-count" => {
                    let v = value("--neighbor-count")?;
                    out.neighbor_count =
                        v.parse().map_err(|_| format!("bad --neighbor-count {v}"))?;
                }
                "--idle-secs" => {
                    let v = value("--idle-secs")?;
                    out.idle_secs = v.parse().map_err(|_| format!("bad --idle-secs {v}"))?;
                }
                "--stats-every" => {
                    let v = value("--stats-every")?;
                    out.stats_every = v.parse().map_err(|_| format!("bad --stats-every {v}"))?;
                }
                "--slow-query-us" => {
                    let v = value("--slow-query-us")?;
                    out.slow_query_us =
                        v.parse().map_err(|_| format!("bad --slow-query-us {v}"))?;
                }
                "--no-timing" => out.no_timing = true,
                "--help" | "-h" => {
                    return Err(
                        "usage: nearpeerd [--listen ADDR] [--landmarks N] [--regions N] \
                         [--neighbor-count K] [--idle-secs S] [--stats-every S] \
                         [--slow-query-us U] [--no-timing]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        if out.landmarks == 0 || out.regions == 0 {
            return Err("--landmarks and --regions must be >= 1".into());
        }
        if out.regions > out.landmarks {
            return Err("--regions cannot exceed --landmarks".into());
        }
        Ok(out)
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let config = ServerConfig {
        neighbor_count: args.neighbor_count,
        ..ServerConfig::default()
    };
    let service = match build_service(args.landmarks, args.regions, config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("nearpeerd: cannot build serving plane: {e}");
            std::process::exit(2);
        }
    };
    let telemetry = service.telemetry();
    if let Some(reg) = &telemetry {
        if args.no_timing {
            reg.set_timing(false);
        }
        if args.slow_query_us > 0 {
            reg.slow().set_threshold_us(args.slow_query_us);
        }
    }
    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("nearpeerd: cannot bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    let local = listener.local_addr().expect("bound socket has an address");
    // The readiness line scripts wait for (stdout, flushed).
    println!(
        "nearpeerd listening on {local} landmarks={} regions={} k={}",
        args.landmarks, args.regions, args.neighbor_count
    );
    io::stdout().flush().ok();

    let shutdown = Arc::new(AtomicBool::new(false));
    if args.stats_every > 0 {
        if let Some(reg) = telemetry {
            let shutdown = Arc::clone(&shutdown);
            let every = Duration::from_secs(args.stats_every);
            // Exits with the process: the dump loop polls the shutdown
            // flag every second, and main does not join it.
            std::thread::spawn(move || {
                let mut since = Duration::ZERO;
                loop {
                    std::thread::sleep(Duration::from_secs(1));
                    if shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    since += Duration::from_secs(1);
                    if since >= every {
                        since = Duration::ZERO;
                        eprintln!("nearpeerd: stats {}", reg.snapshot().compact_line());
                    }
                }
            });
        }
    }
    let mut handles = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let idle = (args.idle_secs > 0).then(|| Duration::from_secs(args.idle_secs));
        handles.push(std::thread::spawn(move || {
            serve_connection(stream, service, shutdown, local, idle)
        }));
    }
    // Drain: every live connection loop notices the flag within its read
    // timeout and exits; queued writes finish because the actors' drop
    // path joins their workers after the mailboxes disconnect.
    for handle in handles {
        let _ = handle.join();
    }
    eprintln!("nearpeerd: drained, exiting");
}
