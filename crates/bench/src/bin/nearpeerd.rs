//! `nearpeerd` — the discovery server on a real socket.
//!
//! Serves the actorized plane ([`nearpeer_core::ActorServer`], or an
//! [`nearpeer_core::ActorFederation`] with `--regions > 1`) over TCP:
//! one thread per connection runs a frame-reassembly loop and feeds
//! decoded messages to the shared [`nearpeer_core::WireService`]. The
//! world is the synthetic landmark layout (`--landmarks N` routers, all
//! 4 hops apart), matching what `wire_loadgen` mirrors locally.
//!
//! Transport rules: partial reads reassemble; a malformed frame is
//! skipped (the codec consumed it); an oversized length prefix drops the
//! connection; a `Shutdown` frame is acked, then the daemon stops
//! accepting, drains every open connection and exits.

use nearpeer_bench::wire::{build_service, FrameConn};
use nearpeer_core::protocol::Message;
use nearpeer_core::{ServerConfig, WireService};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    listen: String,
    landmarks: usize,
    regions: usize,
    neighbor_count: usize,
    /// Seconds a connection may sit idle (no complete frame) before the
    /// daemon evicts it; `0` disables the deadline.
    idle_secs: u64,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut out = Self {
            listen: "127.0.0.1:4700".into(),
            landmarks: 8,
            regions: 1,
            neighbor_count: 5,
            idle_secs: 300,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            let mut value = |flag: &str| iter.next().ok_or(format!("{flag} needs a value"));
            match arg.as_str() {
                "--listen" => out.listen = value("--listen")?,
                "--landmarks" => {
                    let v = value("--landmarks")?;
                    out.landmarks = v.parse().map_err(|_| format!("bad --landmarks {v}"))?;
                }
                "--regions" => {
                    let v = value("--regions")?;
                    out.regions = v.parse().map_err(|_| format!("bad --regions {v}"))?;
                }
                "--neighbor-count" => {
                    let v = value("--neighbor-count")?;
                    out.neighbor_count =
                        v.parse().map_err(|_| format!("bad --neighbor-count {v}"))?;
                }
                "--idle-secs" => {
                    let v = value("--idle-secs")?;
                    out.idle_secs = v.parse().map_err(|_| format!("bad --idle-secs {v}"))?;
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: nearpeerd [--listen ADDR] [--landmarks N] [--regions N] \
                         [--neighbor-count K] [--idle-secs S]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        if out.landmarks == 0 || out.regions == 0 {
            return Err("--landmarks and --regions must be >= 1".into());
        }
        if out.regions > out.landmarks {
            return Err("--regions cannot exceed --landmarks".into());
        }
        Ok(out)
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let config = ServerConfig {
        neighbor_count: args.neighbor_count,
        ..ServerConfig::default()
    };
    let service = match build_service(args.landmarks, args.regions, config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("nearpeerd: cannot build serving plane: {e}");
            std::process::exit(2);
        }
    };
    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("nearpeerd: cannot bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    let local = listener.local_addr().expect("bound socket has an address");
    // The readiness line scripts wait for (stdout, flushed).
    println!(
        "nearpeerd listening on {local} landmarks={} regions={} k={}",
        args.landmarks, args.regions, args.neighbor_count
    );
    io::stdout().flush().ok();

    let shutdown = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let idle = (args.idle_secs > 0).then(|| Duration::from_secs(args.idle_secs));
        handles.push(std::thread::spawn(move || {
            serve_connection(stream, service, shutdown, local, idle)
        }));
    }
    // Drain: every live connection loop notices the flag within its read
    // timeout and exits; queued writes finish because the actors' drop
    // path joins their workers after the mailboxes disconnect.
    for handle in handles {
        let _ = handle.join();
    }
    eprintln!("nearpeerd: drained, exiting");
}

/// One connection's serve loop: reassemble frames, answer requests.
fn serve_connection(
    stream: TcpStream,
    service: Arc<dyn WireService>,
    shutdown: Arc<AtomicBool>,
    local: SocketAddr,
    idle_deadline: Option<Duration>,
) {
    let peer = stream.peer_addr().ok();
    let mut conn = match FrameConn::new(stream) {
        Ok(conn) => conn,
        Err(_) => return,
    };
    // A bounded read lets the loop observe a shutdown requested on
    // another connection without dropping a frame mid-reassembly — and,
    // stacked up, gives the idle deadline its resolution.
    if conn
        .set_read_timeout(Some(Duration::from_millis(250)))
        .is_err()
    {
        return;
    }
    let mut last_frame = Instant::now();
    loop {
        match conn.recv() {
            Ok(Some(msg)) => {
                last_frame = Instant::now();
                let stop = matches!(msg, Message::Shutdown { .. });
                if let Some(reply) = service.handle(msg) {
                    if conn.send(&reply).is_err() {
                        return;
                    }
                }
                if stop {
                    shutdown.store(true, Ordering::Release);
                    // Unblock the accept loop so it observes the flag.
                    let _ = TcpStream::connect(local);
                    return;
                }
            }
            // Clean close on a frame boundary.
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(limit) = idle_deadline {
                    let idle = last_frame.elapsed();
                    if idle >= limit {
                        // A client that stopped talking without closing
                        // would otherwise pin this thread (and its fd)
                        // forever.
                        match peer {
                            Some(addr) => eprintln!(
                                "nearpeerd: evicting idle connection {addr} \
                                 ({}s without a frame)",
                                idle.as_secs()
                            ),
                            None => eprintln!(
                                "nearpeerd: evicting idle connection \
                                 ({}s without a frame)",
                                idle.as_secs()
                            ),
                        }
                        return;
                    }
                }
            }
            // Oversized frame or transport error: the stream position is
            // untrustworthy, drop the connection.
            Err(_) => return,
        }
    }
}
