//! Subscription soak: sustain standing "watch my k nearest" queries over
//! a replayed churn trace, verifying every pushed delta against a
//! re-polled answer, and write `BENCH_subs.json`.
//!
//! Two phases run back to back on the in-process [`ManagementServer`]:
//! the **soak** (drain every window, parity-check every delta, measure
//! events/sec and the delta-latency CDF) and a **storm** (no drains until
//! the replay ends, so the whole trace must coalesce into at most one
//! pending delta per subscriber — pinning the coalescing counters and
//! the queue-depth bound). Exit codes gate CI: parity mismatches, a
//! dropped subscriber, missing coalescing evidence, or a throughput
//! floor violation all fail the run.
//!
//! ```sh
//! cargo run --release -p nearpeer-bench --bin sub_soak -- \
//!     [--subs N] [--churners N] [--k K] [--min-interval-ms MS] \
//!     [--min-events-per-sec N] [--budget-secs S] [--seed S] [--quick]
//! ```
//!
//! [`ManagementServer`]: nearpeer_core::ManagementServer

use nearpeer_bench::experiments::subs::{run_sub_soak, SubSoakConfig, SubSoakResult};
use nearpeer_bench::{subs_stats_line, ExperimentWriter};
use serde::Serialize;
use std::time::Instant;

struct Args {
    subs: usize,
    churners: usize,
    k: usize,
    min_interval_ms: u64,
    min_events_per_sec: f64,
    budget_secs: u64,
    seed: u64,
    quick: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        subs: 10_000,
        churners: 40_000,
        k: 5,
        min_interval_ms: 2_000,
        min_events_per_sec: 50_000.0,
        budget_secs: 0,
        seed: 42,
        quick: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--subs" => {
                let v = value("--subs")?;
                out.subs = v.parse().map_err(|_| format!("bad --subs value {v}"))?;
            }
            "--churners" => {
                let v = value("--churners")?;
                out.churners = v.parse().map_err(|_| format!("bad --churners value {v}"))?;
            }
            "--k" => {
                let v = value("--k")?;
                out.k = v.parse().map_err(|_| format!("bad --k value {v}"))?;
            }
            "--min-interval-ms" => {
                let v = value("--min-interval-ms")?;
                out.min_interval_ms = v
                    .parse()
                    .map_err(|_| format!("bad --min-interval-ms value {v}"))?;
            }
            "--min-events-per-sec" => {
                let v = value("--min-events-per-sec")?;
                out.min_events_per_sec = v
                    .parse()
                    .map_err(|_| format!("bad --min-events-per-sec value {v}"))?;
            }
            "--budget-secs" => {
                let v = value("--budget-secs")?;
                out.budget_secs = v
                    .parse()
                    .map_err(|_| format!("bad --budget-secs value {v}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                out.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
            }
            "--quick" => out.quick = true,
            "--help" | "-h" => {
                return Err(
                    "usage: [--subs N] [--churners N] [--k K] [--min-interval-ms MS] \
                     [--min-events-per-sec N] [--budget-secs S] [--seed S] [--quick]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(out)
}

fn config_for(args: &Args) -> SubSoakConfig {
    if args.quick {
        return SubSoakConfig::quick();
    }
    SubSoakConfig {
        subscribers: args.subs,
        churners: args.churners,
        k: args.k,
        min_interval_ms: args.min_interval_ms,
        ..SubSoakConfig::smoke()
    }
}

fn print_result(label: &str, r: &SubSoakResult) {
    println!(
        "sub_soak[{label}]: {} subs x {} churners: {} events in {:.2}s = {:.0} events/sec \
         (+{:.2}s verifying {} deltas, {} mismatches)",
        r.config.subscribers,
        r.config.churners,
        r.events,
        r.elapsed_secs,
        r.events_per_sec,
        r.verify_secs,
        r.deltas_verified,
        r.mismatches,
    );
    println!("  {}", subs_stats_line(&r.stats));
    println!(
        "  coalescing x{:.2}, delta latency p50 {}ms / p90 {}ms / p99 {}ms / max {}ms \
         over {} deltas",
        r.coalescing_ratio,
        r.latency.p50_ms,
        r.latency.p90_ms,
        r.latency.p99_ms,
        r.latency.max_ms,
        r.latency.count,
    );
}

fn check(r: &SubSoakResult, min_events_per_sec: f64) -> Result<(), String> {
    if r.mismatches != 0 {
        return Err(format!(
            "{} deltas diverged from the re-polled answers",
            r.mismatches
        ));
    }
    if r.active_subs != r.config.subscribers as u64 {
        return Err(format!(
            "{} of {} subscriptions survived the soak",
            r.active_subs, r.config.subscribers
        ));
    }
    if r.deltas_verified == 0 {
        return Err("the soak produced no deltas to verify".into());
    }
    if min_events_per_sec > 0.0 && r.events_per_sec < min_events_per_sec {
        return Err(format!(
            "{:.0} events/sec under the {:.0} floor",
            r.events_per_sec, min_events_per_sec
        ));
    }
    Ok(())
}

fn check_storm(r: &SubSoakResult) -> Result<(), String> {
    if r.mismatches != 0 {
        return Err(format!("{} storm deltas diverged", r.mismatches));
    }
    if r.stats.coalesced == 0 {
        return Err("a whole-trace storm coalesced nothing".into());
    }
    if r.stats.peak_queue_depth > r.stats.active {
        return Err(format!(
            "queue depth peaked at {} with only {} subscriptions",
            r.stats.peak_queue_depth, r.stats.active
        ));
    }
    Ok(())
}

/// The `BENCH_subs.json` shape: both phases side by side.
#[derive(Serialize)]
struct Manifest {
    soak: SubSoakResult,
    storm: SubSoakResult,
    total_secs: f64,
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let t0 = Instant::now();
    let cfg = config_for(&args);
    let soak = run_sub_soak(&cfg, args.seed);
    print_result("soak", &soak);
    if let Err(msg) = check(
        &soak,
        if args.quick {
            0.0
        } else {
            args.min_events_per_sec
        },
    ) {
        eprintln!("sub_soak: FAILED: {msg}");
        std::process::exit(1);
    }
    // The storm rides a smaller trace: its point is the coalescing
    // counters, not throughput.
    let storm_cfg = SubSoakConfig {
        storm: true,
        churners: cfg.churners / 4,
        subscribers: cfg.subscribers / 4,
        ..cfg.clone()
    };
    let storm = run_sub_soak(&storm_cfg, args.seed);
    print_result("storm", &storm);
    if let Err(msg) = check_storm(&storm) {
        eprintln!("sub_soak: FAILED: {msg}");
        std::process::exit(1);
    }
    let total = t0.elapsed();
    match ExperimentWriter::new("subs") {
        Ok(writer) => {
            let manifest = Manifest {
                soak,
                storm,
                total_secs: total.as_secs_f64(),
            };
            match writer.write_json("BENCH_subs.json", &manifest) {
                Ok(path) => println!("sub_soak: wrote {}", path.display()),
                Err(e) => eprintln!("sub_soak: cannot write BENCH_subs.json: {e}"),
            }
        }
        Err(e) => eprintln!("sub_soak: cannot open output dir: {e}"),
    }
    if args.budget_secs > 0 && total.as_secs() > args.budget_secs {
        eprintln!(
            "sub_soak: took {:.2?}, budget {}s — the subscription plane regressed",
            total, args.budget_secs
        );
        std::process::exit(1);
    }
    println!("sub_soak: OK ({:.2?} total)", total);
}
