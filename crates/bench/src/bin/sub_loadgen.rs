//! `sub_loadgen` — standing-subscription client against a running
//! `nearpeerd` (single region: the federated front door refuses
//! subscriptions).
//!
//! Two connections:
//!
//! 1. the **subscription connection** registers `--subs` watcher peers,
//!    subscribes each (`min_interval_ms = 0`), checks every `SubAck`
//!    snapshot bit-for-bit against a local [`Mirror`], and from then on
//!    receives server-initiated `DeltaPush` frames;
//! 2. the **churn connection** replays a generated churn trace
//!    window-by-window (`JoinRequest` / fire-and-forget `Leave`; `Fail`
//!    events are skipped — no expiry sweep runs over the wire).
//!
//! After each window, a `ProbePing` on the churn connection confirms the
//! mutations are applied, then a `ProbePing` on the subscription
//! connection **fences the push channel**: the serving loop flushes every
//! queued `DeltaPush` before a reply, so reading until the pong yields
//! all deltas for the window. Each delta is applied to the client-side
//! view and the touched views are compared (as `(peer, dtree)` sets)
//! against the mirror replaying the same windows; a final sweep checks
//! every view. Exits non-zero on any parity mismatch or a replay
//! throughput below `--min-events-per-sec`.

use nearpeer_bench::wire::{world, FrameConn, Mirror};
use nearpeer_core::protocol::{Message, WireNeighbor};
use nearpeer_core::{Histogram, Neighbor, PeerId, PeerPath, ServerConfig};
use nearpeer_workloads::{ArrivalProcess, ChurnConfig, ChurnEventKind, ChurnTrace};
use std::collections::BTreeSet;
use std::io;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    landmarks: usize,
    subs: u64,
    churners: usize,
    windows: u64,
    k: usize,
    pipeline: usize,
    seed: u64,
    min_events_per_sec: f64,
    shutdown: bool,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut out = Self {
            addr: String::new(),
            landmarks: 8,
            subs: 10_000,
            churners: 20_000,
            windows: 32,
            k: 5,
            pipeline: 256,
            seed: 42,
            min_events_per_sec: 0.0,
            shutdown: false,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            let mut value = |flag: &str| iter.next().ok_or(format!("{flag} needs a value"));
            fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String> {
                v.parse().map_err(|_| format!("bad {flag} value {v}"))
            }
            match arg.as_str() {
                "--addr" => out.addr = value("--addr")?,
                "--landmarks" => out.landmarks = num("--landmarks", value("--landmarks")?)?,
                "--subs" => out.subs = num("--subs", value("--subs")?)?,
                "--churners" => out.churners = num("--churners", value("--churners")?)?,
                "--windows" => out.windows = num("--windows", value("--windows")?)?,
                "--k" => out.k = num("--k", value("--k")?)?,
                "--pipeline" => out.pipeline = num("--pipeline", value("--pipeline")?)?,
                "--seed" => out.seed = num("--seed", value("--seed")?)?,
                "--min-events-per-sec" => {
                    out.min_events_per_sec =
                        num("--min-events-per-sec", value("--min-events-per-sec")?)?
                }
                "--shutdown" => out.shutdown = true,
                "--help" | "-h" => {
                    return Err(
                        "usage: sub_loadgen --addr HOST:PORT [--landmarks N] [--subs N] \
                         [--churners N] [--windows N] [--k K] [--pipeline W] [--seed S] \
                         [--min-events-per-sec F] [--shutdown]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        if out.addr.is_empty() {
            return Err("--addr is required".into());
        }
        if out.subs == 0 || out.windows == 0 || out.k == 0 || out.pipeline == 0 {
            return Err("--subs, --windows, --k and --pipeline must be >= 1".into());
        }
        Ok(out)
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("sub_loadgen: {msg}");
    std::process::exit(1);
}

/// Connects with capped backoff — the daemon may still be binding.
fn connect_with_backoff(addr: &str) -> io::Result<FrameConn> {
    const ATTEMPTS: u32 = 12;
    let mut delay = Duration::from_millis(25);
    for attempt in 0.. {
        match FrameConn::connect(addr) {
            Ok(conn) => return Ok(conn),
            Err(e) if attempt + 1 >= ATTEMPTS => return Err(e),
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_secs(1));
            }
        }
    }
    unreachable!("loop returns")
}

/// Keeps up to `window` requests in flight; the server answers one
/// connection's frames in order, so reply `i` matches request `i`.
fn pipelined(
    conn: &mut FrameConn,
    total: u64,
    window: usize,
    mut make: impl FnMut(u64) -> Message,
    mut on_reply: impl FnMut(u64, Message),
) -> io::Result<()> {
    let mut sent = 0u64;
    let mut recvd = 0u64;
    while recvd < total {
        while sent < total && sent - recvd < window as u64 {
            conn.send(&make(sent))?;
            sent += 1;
        }
        match conn.recv()? {
            Some(msg) => {
                on_reply(recvd, msg);
                recvd += 1;
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed with replies outstanding",
                ))
            }
        }
    }
    Ok(())
}

/// The client-side contract for applying a delta to a view: drop
/// `removed`, then upsert `added`.
fn apply(view: &mut Vec<Neighbor>, added: &[WireNeighbor], removed: &[PeerId]) {
    view.retain(|n| !removed.contains(&n.peer));
    for a in added {
        match view.iter_mut().find(|n| n.peer == a.peer) {
            Some(n) => n.dtree = a.dtree,
            None => view.push(Neighbor {
                peer: a.peer,
                dtree: a.dtree,
            }),
        }
    }
}

/// Delta-applied views are unordered; answers compare as
/// `(peer, dtree)` sets.
fn same_set(view: &[Neighbor], mut want: Vec<Neighbor>) -> bool {
    let mut got = view.to_vec();
    got.sort_unstable_by_key(|n| n.peer);
    want.sort_unstable_by_key(|n| n.peer);
    got == want
}

fn same_snapshot(wire: &[WireNeighbor], local: &[Neighbor]) -> bool {
    wire.len() == local.len()
        && wire
            .iter()
            .zip(local)
            .all(|(w, n)| w.peer == n.peer && w.dtree == n.dtree)
}

/// Fences the push channel: every `DeltaPush` the server queued before
/// handling this ping arrives before the pong. Returns the push count.
fn fence_pushes(
    conn: &mut FrameConn,
    nonce: u64,
    mut on_push: impl FnMut(PeerId, Vec<WireNeighbor>, Vec<PeerId>),
) -> io::Result<u64> {
    conn.send(&Message::ProbePing { nonce })?;
    let mut pushes = 0u64;
    loop {
        match conn.recv()? {
            Some(Message::DeltaPush {
                peer,
                added,
                removed,
                ..
            }) => {
                pushes += 1;
                on_push(peer, added, removed);
            }
            Some(Message::ProbePong { nonce: n }) if n == nonce => return Ok(pushes),
            Some(other) => fail(&format!(
                "unexpected {} on the subscription connection",
                other.kind_name()
            )),
            None => fail("server closed the subscription connection"),
        }
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let joins = world(args.landmarks);
    let config = ServerConfig {
        neighbor_count: args.k,
        ..ServerConfig::default()
    };
    // Single-region mirror: subscriptions only exist there (the federated
    // front door refuses them, and so will the daemon if started with
    // --regions > 1 — surfaced below as a subscribe error).
    let mut mirror = Mirror::build(args.landmarks, 1, config)
        .unwrap_or_else(|e| fail(&format!("cannot build mirror: {e}")));
    let mut conn_subs = connect_with_backoff(&args.addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {}: {e}", args.addr)));
    let mut conn_churn = connect_with_backoff(&args.addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {}: {e}", args.addr)));

    // Watcher population: ids disjoint from the churn trace's 0..churners.
    let sub_ids: Vec<PeerId> = (0..args.subs)
        .map(|i| PeerId(args.churners as u64 + i))
        .collect();
    let k = args.k.min(u16::MAX as usize) as u16;
    pipelined(
        &mut conn_subs,
        args.subs,
        args.pipeline,
        |i| {
            let (peer, path) = joins.join(sub_ids[i as usize].0);
            Message::JoinRequest { peer, path }
        },
        |_, msg| match msg {
            Message::JoinReply { .. } => {}
            Message::JoinError { peer, reason } => {
                fail(&format!("watcher {peer} refused: {reason}"))
            }
            other => fail(&format!(
                "unexpected {} to a watcher join",
                other.kind_name()
            )),
        },
    )
    .unwrap_or_else(|e| fail(&format!("watcher registration: {e}")));
    let items: Vec<(PeerId, PeerPath)> = sub_ids.iter().map(|p| joins.join(p.0)).collect();
    let joined = mirror.register_all(items);
    if joined as u64 != args.subs {
        fail(&format!(
            "mirror registered {joined} of {} watchers",
            args.subs
        ));
    }

    // Subscribe every watcher; the SubAck snapshot must equal the mirror
    // answer bit-for-bit (the directory is a pure function of the
    // registered set, and nothing else is in flight yet).
    let mut views: Vec<Vec<Neighbor>> = vec![Vec::new(); args.subs as usize];
    let mut initial_mismatches = 0u64;
    pipelined(
        &mut conn_subs,
        args.subs,
        args.pipeline,
        |i| Message::Subscribe {
            nonce: i,
            peer: sub_ids[i as usize],
            k,
            min_interval_ms: 0,
        },
        |i, msg| match msg {
            Message::SubAck {
                nonce, neighbors, ..
            } => {
                assert_eq!(nonce, i, "pipelined acks arrive in order");
                let peer = sub_ids[i as usize];
                let want = mirror.closest_to_path(&joins.path(peer.0), args.k, Some(peer));
                if !same_snapshot(&neighbors, &want) {
                    initial_mismatches += 1;
                    if initial_mismatches <= 5 {
                        eprintln!(
                            "sub_loadgen: initial snapshot of {peer} was {neighbors:?}, \
                             expected {want:?}"
                        );
                    }
                }
                views[i as usize] = neighbors
                    .iter()
                    .map(|w| Neighbor {
                        peer: w.peer,
                        dtree: w.dtree,
                    })
                    .collect();
            }
            Message::JoinError { peer, reason } => {
                fail(&format!("subscribe {peer} refused: {reason}"))
            }
            other => fail(&format!("unexpected {} to a subscribe", other.kind_name())),
        },
    )
    .unwrap_or_else(|e| fail(&format!("subscribe phase: {e}")));

    // Churn replay, one wire window at a time.
    let trace = ChurnTrace::generate(
        &ChurnConfig {
            peers: args.churners,
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: 2_000.0,
            },
            mean_lifetime_secs: Some(30.0),
            failure_fraction: 0.2,
        },
        args.seed,
    );
    let width = (trace.span_us() / args.windows).max(1);
    let view_of = |peer: PeerId| (peer.0 - args.churners as u64) as usize;
    let mut events = 0u64;
    let mut deltas = 0u64;
    let mut mismatches = 0u64;
    let mut join_errors = 0u64;
    let fence_latency = Histogram::new();
    let mut harness_time = Duration::ZERO;
    let t0 = Instant::now();
    for (idx, window) in trace.windows(width) {
        let mut batch_joins: Vec<(PeerId, PeerPath)> = Vec::new();
        let mut batch_leaves: Vec<PeerId> = Vec::new();
        for ev in window {
            match ev.kind {
                ChurnEventKind::Join => batch_joins.push(joins.join(ev.peer as u64)),
                ChurnEventKind::Leave => batch_leaves.push(PeerId(ev.peer as u64)),
                // No expiry sweep runs over the wire; skipping the event
                // on both sides keeps the mirror in lockstep.
                ChurnEventKind::Fail => {}
            }
        }
        events += (batch_joins.len() + batch_leaves.len()) as u64;
        let n_joins = batch_joins.len() as u64;
        pipelined(
            &mut conn_churn,
            n_joins,
            args.pipeline,
            |i| {
                let (peer, path) = batch_joins[i as usize].clone();
                Message::JoinRequest { peer, path }
            },
            |_, msg| match msg {
                Message::JoinReply { .. } => {}
                Message::JoinError { .. } => join_errors += 1,
                other => fail(&format!("unexpected {} to a churn join", other.kind_name())),
            },
        )
        .unwrap_or_else(|e| fail(&format!("churn window {idx}: {e}")));
        for &peer in &batch_leaves {
            conn_churn
                .send(&Message::Leave { peer })
                .unwrap_or_else(|e| fail(&format!("churn window {idx}: {e}")));
        }
        // Churn fence: the pong proves every mutation above is applied
        // (and its deltas queued) before we fence the push channel.
        conn_churn
            .send(&Message::ProbePing { nonce: idx })
            .unwrap_or_else(|e| fail(&format!("churn fence {idx}: {e}")));
        match conn_churn.recv() {
            Ok(Some(Message::ProbePong { nonce })) if nonce == idx => {}
            other => fail(&format!("churn fence {idx} broken: {other:?}")),
        }

        let mut touched: BTreeSet<PeerId> = BTreeSet::new();
        let fence_start = Instant::now();
        deltas += fence_pushes(&mut conn_subs, idx, |peer, added, removed| {
            apply(&mut views[view_of(peer)], &added, &removed);
            touched.insert(peer);
        })
        .unwrap_or_else(|e| fail(&format!("push fence {idx}: {e}")));
        // Client-observed delta delivery: the fence round-trip covers
        // flushing every queued push for the window plus the pong.
        fence_latency.record(fence_start.elapsed().as_micros() as u64);

        // Mirror the window and verify the touched views (harness work,
        // excluded from the replay throughput).
        let tv = Instant::now();
        mirror.register_all(batch_joins);
        mirror.leave_all(&batch_leaves);
        for &peer in &touched {
            let want = mirror.closest_to_path(&joins.path(peer.0), args.k, Some(peer));
            if !same_set(&views[view_of(peer)], want) {
                mismatches += 1;
                if mismatches <= 5 {
                    eprintln!("sub_loadgen: window {idx}: view of {peer} diverged");
                }
            }
        }
        harness_time += tv.elapsed();
    }
    let replay_secs = t0.elapsed().saturating_sub(harness_time).as_secs_f64();
    let events_per_sec = events as f64 / replay_secs.max(1e-9);

    // Final sweep: every view must equal a fresh mirror query — catches a
    // delta that never arrived for an otherwise-untouched view.
    let mut final_mismatches = 0u64;
    for (i, &peer) in sub_ids.iter().enumerate() {
        let want = mirror.closest_to_path(&joins.path(peer.0), args.k, Some(peer));
        if !same_set(&views[i], want) {
            final_mismatches += 1;
            if final_mismatches <= 5 {
                eprintln!("sub_loadgen: final view of {peer} diverged");
            }
        }
    }

    // Unsubscribe everyone (empty acks), exercising the teardown path.
    pipelined(
        &mut conn_subs,
        args.subs,
        args.pipeline,
        |i| Message::Unsubscribe {
            nonce: i,
            peer: sub_ids[i as usize],
        },
        |i, msg| match msg {
            Message::SubAck {
                nonce, neighbors, ..
            } => {
                assert_eq!(nonce, i);
                assert!(neighbors.is_empty(), "unsubscribe acks are empty");
            }
            other => fail(&format!(
                "unexpected {} to an unsubscribe",
                other.kind_name()
            )),
        },
    )
    .unwrap_or_else(|e| fail(&format!("unsubscribe phase: {e}")));

    if args.shutdown {
        drop(conn_churn);
        conn_subs
            .send(&Message::Shutdown { nonce: 99 })
            .unwrap_or_else(|e| fail(&format!("shutdown send: {e}")));
        match conn_subs.recv() {
            Ok(Some(Message::ProbePong { nonce: 99 })) => {}
            other => fail(&format!("shutdown not acknowledged: {other:?}")),
        }
    }

    let fence = fence_latency.snapshot();
    println!(
        "{{\"addr\":\"{}\",\"landmarks\":{},\"subs\":{},\"churners\":{},\"windows\":{},\"k\":{},\
         \"events\":{},\"deltas\":{},\"replay_secs\":{:.3},\"events_per_sec\":{:.0},\
         \"fence_p50_us\":{},\"fence_p95_us\":{},\"fence_p99_us\":{},\"fence_max_us\":{},\
         \"initial_mismatches\":{},\"window_mismatches\":{},\"final_mismatches\":{},\
         \"join_errors\":{}}}",
        args.addr,
        args.landmarks,
        args.subs,
        args.churners,
        args.windows,
        args.k,
        events,
        deltas,
        replay_secs,
        events_per_sec,
        fence.quantile(0.5),
        fence.quantile(0.95),
        fence.quantile(0.99),
        fence.max,
        initial_mismatches,
        mismatches,
        final_mismatches,
        join_errors,
    );
    let bad = initial_mismatches + mismatches + final_mismatches;
    if bad > 0 {
        fail(&format!("{bad} views diverged from the mirror"));
    }
    if deltas == 0 {
        fail("the replay pushed no deltas at all");
    }
    if events_per_sec < args.min_events_per_sec {
        eprintln!(
            "sub_loadgen: FAILED — {events_per_sec:.0} events/s below the \
             --min-events-per-sec {} floor",
            args.min_events_per_sec
        );
        std::process::exit(3);
    }
    eprintln!(
        "sub_loadgen: OK — {} subs, {events} churn events at {events_per_sec:.0}/s, \
         {deltas} deltas, every view matches the mirror",
        args.subs
    );
}
