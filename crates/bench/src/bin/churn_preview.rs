//! Previews a churn workload before spending simulation time on it:
//! prints the event schedule summary, an ASCII population-over-time
//! curve, session-length statistics, and what bootstrapping the peak
//! population costs (trace/register phase split plus the route oracle's
//! tree accounting). The trace uses the suite's fixed seed (42, like the
//! other binaries); `--quick` shrinks the population.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::{oracle_stats_line, Swarm, SwarmConfig};
use nearpeer_metrics::Summary;
use nearpeer_topology::generators::{mapper, MapperConfig};
use nearpeer_workloads::{ArrivalProcess, ChurnConfig, ChurnEventKind, ChurnTrace};
use std::collections::HashMap;

const SEED: u64 = 42;

fn main() {
    let args = CommonArgs::parse();
    let peers = if args.quick { 50 } else { 500 };
    let config = ChurnConfig {
        peers,
        arrivals: ArrivalProcess::Poisson { rate_per_sec: 20.0 },
        mean_lifetime_secs: Some(10.0),
        failure_fraction: 0.3,
    };
    let trace = ChurnTrace::generate(&config, SEED);

    let (mut joins, mut leaves, mut fails) = (0usize, 0usize, 0usize);
    let mut join_at: HashMap<usize, u64> = HashMap::new();
    let mut sessions_secs: Vec<f64> = Vec::new();
    for ev in &trace.events {
        match ev.kind {
            ChurnEventKind::Join => {
                joins += 1;
                join_at.insert(ev.peer, ev.time_us);
            }
            ChurnEventKind::Leave | ChurnEventKind::Fail => {
                if ev.kind == ChurnEventKind::Leave {
                    leaves += 1;
                } else {
                    fails += 1;
                }
                if let Some(&t0) = join_at.get(&ev.peer) {
                    sessions_secs.push((ev.time_us - t0) as f64 / 1e6);
                }
            }
        }
    }
    let horizon = trace.events.last().map_or(0, |e| e.time_us);
    println!(
        "churn preview: {joins} joins, {leaves} graceful leaves, {fails} silent \
         failures over {:.1}s (seed {SEED})",
        horizon as f64 / 1e6,
    );
    println!("peak population: {}", trace.peak_population());

    if let Some(s) = Summary::new(&sessions_secs) {
        println!(
            "session length: mean {:.2}s, p50 {:.2}s, p95 {:.2}s (configured mean {}s)",
            s.mean(),
            s.percentile(50.0),
            s.percentile(95.0),
            config.mean_lifetime_secs.unwrap_or(f64::NAN),
        );
    }

    // Population curve, 60 buckets wide.
    println!("\npopulation over time:");
    let peak = trace.peak_population().max(1);
    const BUCKETS: usize = 60;
    for row in (0..10).rev() {
        let threshold = peak as f64 * (row as f64 + 0.5) / 10.0;
        let line: String = (0..BUCKETS)
            .map(|b| {
                let t = horizon * b as u64 / BUCKETS as u64;
                if trace.population_at(t) as f64 >= threshold {
                    '#'
                } else {
                    ' '
                }
            })
            .collect();
        println!("{:>4} |{line}", ((row + 1) * peak).div_ceil(10));
    }
    println!("     +{}", "-".repeat(BUCKETS));
    println!("      0s{:>55.1}s", horizon as f64 / 1e6);

    // What bootstrapping this population costs: build a swarm of the peak
    // size over a small representative map and report the phase split plus
    // the oracle's tree accounting (the default trace path runs entirely
    // out of the landmark arena — zero lazy trees).
    let bootstrap_peers = trace.peak_population().max(10);
    let topo = mapper(
        &MapperConfig::with_access(200, bootstrap_peers + bootstrap_peers / 5 + 20),
        SEED,
    )
    .expect("mapper topology");
    let swarm_cfg = SwarmConfig {
        n_peers: bootstrap_peers,
        n_landmarks: 4,
        ..SwarmConfig::default()
    };
    match Swarm::build(&topo, &swarm_cfg, SEED) {
        Ok(swarm) => {
            println!(
                "\nbootstrap cost at peak ({bootstrap_peers} peers): trace {:.2?} \
                 ({} threads) / register {:.2?}",
                swarm.phases.trace, swarm.phases.trace_threads, swarm.phases.register,
            );
            println!("{}", oracle_stats_line(&swarm.phases.oracle));
        }
        Err(e) => println!("\nbootstrap cost preview skipped: {e}"),
    }
}
