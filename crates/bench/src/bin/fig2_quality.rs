//! Experiment F2 — regenerates the paper's data figure:
//! `D/Dclosest` and `Drandom/Dclosest` versus the number of peers.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::quality::{self, QualityConfig};
use nearpeer_bench::ExperimentWriter;

fn main() {
    let args = CommonArgs::parse();
    let config = if args.quick {
        QualityConfig::quick()
    } else {
        QualityConfig::paper(args.seeds)
    };
    println!("F2 — neighbor quality vs number of peers");
    println!(
        "map: nem-like mapper (core {}), landmarks: {} ({}), k = {}, seeds = {}\n",
        config.core_size,
        config.n_landmarks,
        config.placement.name(),
        config.k,
        config.seeds
    );

    let result = quality::run(&config, args.threads);
    print!("{}", result.table());
    let series = result.series();
    println!("\n{}", series.to_ascii_plot(64, 16));

    match ExperimentWriter::new("fig2_quality") {
        Ok(writer) => {
            let _ = writer.write_text("figure2.csv", &series.to_csv());
            let _ = writer.write_json("result.json", &result);
            println!("artifacts: {}", writer.dir().display());
        }
        Err(e) => eprintln!("could not write artifacts: {e}"),
    }

    // Headline check mirrored from the paper: the algorithm is stable in n
    // and beats random.
    let stable = result
        .points
        .iter()
        .all(|p| p.d_ratio_mean < p.random_ratio_mean);
    println!(
        "\npaper shape {}: D/Dclosest below Drandom/Dclosest at every n",
        if stable { "HOLDS" } else { "VIOLATED" }
    );
}
