//! Churn soak: replay a W3 join/leave/fail trace at 10⁵–10⁶ peers through
//! the directory's batched lease path — slab-backed lease arenas, renewal
//! piggybacked on `register_batch_renewing`, `leave_batch` departures and
//! epoch-bucketed `expire_stale_batch` sweeps — and report sustained
//! events/sec.
//!
//! This is the CI guard for the million-peer churn refactor: if lease
//! bookkeeping regresses to per-peer full-map behaviour (quadratic
//! sweeps, probe-chain rot in the open-addressed peer table, arena
//! growth without slot reuse), the wall-clock budget blows and CI goes
//! red. Peers use synthetic tree-consistent paths (tracing at these
//! populations would take hours; see `SyntheticJoins`) — the directory
//! under test is exactly the production one. Run in release mode.
//!
//! ```sh
//! cargo run --release -p nearpeer-bench --bin churn_soak -- \
//!     [--peers N] [--events N] [--mode seq|batch|parallel] \
//!     [--expire-every K] [--sweep-expiry] [--budget-secs S] [--seed S]
//! ```

use nearpeer_bench::experiments::churn::{
    run_soak, ChurnReplayMode, ChurnSoakConfig, ChurnSoakResult,
};
use nearpeer_core::AdaptiveLeaseConfig;
use std::time::Instant;

struct Args {
    peers: usize,
    events: u64,
    mode: ChurnReplayMode,
    expire_every: u64,
    sweep_expiry: bool,
    adaptive: bool,
    budget_secs: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        peers: 100_000,
        events: 200_000,
        mode: ChurnReplayMode::Batched,
        expire_every: 4,
        sweep_expiry: false,
        adaptive: false,
        budget_secs: 0,
        seed: 42,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--peers" => {
                let v = value("--peers")?;
                out.peers = v.parse().map_err(|_| format!("bad --peers value {v}"))?;
            }
            "--events" => {
                let v = value("--events")?;
                out.events = v.parse().map_err(|_| format!("bad --events value {v}"))?;
            }
            "--mode" => {
                out.mode = match value("--mode")?.as_str() {
                    "seq" | "sequential" => ChurnReplayMode::Sequential,
                    "batch" | "batched" => ChurnReplayMode::Batched,
                    "parallel" | "shard-parallel" => ChurnReplayMode::ShardParallel,
                    other => return Err(format!("unknown --mode {other}")),
                };
            }
            "--expire-every" => {
                let v = value("--expire-every")?;
                out.expire_every = v
                    .parse()
                    .map_err(|_| format!("bad --expire-every value {v}"))?;
                if out.expire_every == 0 {
                    return Err("--expire-every must be >= 1".into());
                }
            }
            "--sweep-expiry" => out.sweep_expiry = true,
            "--adaptive" => out.adaptive = true,
            "--budget-secs" => {
                let v = value("--budget-secs")?;
                out.budget_secs = v
                    .parse()
                    .map_err(|_| format!("bad --budget-secs value {v}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                out.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: [--peers N] [--events N] [--mode seq|batch|parallel] \
                            [--expire-every K] [--sweep-expiry] [--adaptive] \
                            [--budget-secs S] [--seed S]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(out)
}

fn config_for(args: &Args) -> ChurnSoakConfig {
    // One trace cycle is 2·peers events (every peer joins once and
    // departs once); `--events` asks for enough cycles to cover it.
    let per_cycle = (args.peers as u64) * 2;
    let cycles = (args.events.div_ceil(per_cycle)).max(1) as usize;
    let mut cfg = ChurnSoakConfig {
        peers: args.peers,
        cycles,
        // Keep the arrival horizon ~100s regardless of population so the
        // steady-state share of live peers is scale-independent.
        arrival_rate: (args.peers as f64 / 100.0).max(10.0),
        expire_every: args.expire_every,
        mode: args.mode,
        ..ChurnSoakConfig::smoke()
    };
    if args.adaptive {
        // The floor must outlast the heartbeat stride, or live peers
        // expire between renewals (see AdaptiveLeaseConfig::min_age).
        cfg.adaptive = Some(AdaptiveLeaseConfig {
            ewma_shift: 1,
            margin: 1,
            min_age: cfg.heartbeat_every as u32 + 1,
            max_age: cfg.max_age as u32,
            max_tracked: 65_536,
        });
    }
    cfg
}

fn mode_name(mode: ChurnReplayMode) -> &'static str {
    match mode {
        ChurnReplayMode::Sequential => "sequential",
        ChurnReplayMode::Batched => "batched",
        ChurnReplayMode::ShardParallel => "shard-parallel",
    }
}

fn print_result(r: &ChurnSoakResult) {
    let c = r.counters;
    println!(
        "churn_soak: {} peers x {} cycle(s), {} mode, expire every {} epochs: \
         {} events in {:.2}s = {:.0} events/sec",
        r.config.peers,
        r.config.cycles,
        mode_name(r.config.mode),
        r.config.expire_every,
        c.events,
        r.elapsed_secs,
        r.events_per_sec,
    );
    println!(
        "  joins {} / renewals {} / heartbeats {} / leaves {} / fails {} / expired {}",
        c.joins, c.renewals, c.heartbeats, c.leaves, c.fails, c.expired
    );
    println!(
        "  peak population {} / final {} / epochs {} / sweep cost {} entries over {} buckets",
        r.peak_population, r.final_population, c.epochs, r.sweep_entries, r.sweep_buckets
    );
}

fn check(r: &ChurnSoakResult) -> Result<(), String> {
    let c = r.counters;
    if c.rejected != 0 {
        return Err(format!("{} join items rejected", c.rejected));
    }
    if c.joins != c.leaves + c.expired + r.final_population as u64 {
        return Err(format!(
            "population leak: {} joins vs {} leaves + {} expired + {} residual",
            c.joins, c.leaves, c.expired, r.final_population
        ));
    }
    // Linearity guard: the epoch-bucketed sweep must touch only noted
    // lease activity (opens + renewals, re-notes bounded by sweeps) — a
    // regression to full-table scans shows up here long before the
    // wall-clock budget.
    let noted = c.joins + c.renewals + c.heartbeats;
    if r.sweep_entries > 2 * noted {
        return Err(format!(
            "expiry sweeps touched {} entries for {} noted renewals — not linear",
            r.sweep_entries, noted
        ));
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let t0 = Instant::now();
    let base = config_for(&args);

    let runs: Vec<ChurnSoakConfig> = if args.sweep_expiry {
        [1u64, 4, 16]
            .iter()
            .map(|&e| ChurnSoakConfig {
                expire_every: e,
                ..base.clone()
            })
            .collect()
    } else {
        vec![base]
    };

    for cfg in &runs {
        let result = run_soak(cfg, args.seed);
        print_result(&result);
        if let Err(msg) = check(&result) {
            eprintln!("churn_soak: FAILED: {msg}");
            std::process::exit(1);
        }
    }

    let total = t0.elapsed();
    if args.budget_secs > 0 && total.as_secs() > args.budget_secs {
        eprintln!(
            "churn_soak: took {:.2?}, budget {}s — the batched lease path regressed",
            total, args.budget_secs
        );
        std::process::exit(1);
    }
    println!("churn_soak: OK ({:.2?} total)", total);
}
