//! Experiment W1 — landmark count × placement policy sweep.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::landmark_policies::{self, LandmarkStudyConfig};
use nearpeer_bench::ExperimentWriter;

fn main() {
    let args = CommonArgs::parse();
    let config = if args.quick {
        LandmarkStudyConfig::quick()
    } else {
        LandmarkStudyConfig::standard(args.seeds)
    };
    println!("W1 — landmark management policies");
    println!(
        "{} peers, k = {}, seeds = {} (cells are D/Dclosest; lower is better)\n",
        config.n_peers, config.k, config.seeds
    );

    let result = landmark_policies::run(&config, args.threads);
    print!("{}", result.table());
    let series = result.series();
    println!("\n{}", series.to_ascii_plot(60, 14));

    if let Ok(writer) = ExperimentWriter::new("landmark_policies") {
        let _ = writer.write_text("sweep.csv", &series.to_csv());
        let _ = writer.write_json("result.json", &result);
        println!("artifacts: {}", writer.dir().display());
    }
}
