//! Experiment W4 — the "decreased" traceroute ablation.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::decreased::{self, DecreasedConfig};
use nearpeer_bench::ExperimentWriter;

fn main() {
    let args = CommonArgs::parse();
    let config = if args.quick {
        DecreasedConfig::quick()
    } else {
        DecreasedConfig::standard(args.seeds)
    };
    println!("W4 — decreased traceroute: probe budget vs neighbor quality");
    println!(
        "{} peers, {} landmarks, k = {}, seeds = {}\n",
        config.n_peers, config.n_landmarks, config.k, config.seeds
    );

    let result = decreased::run(&config, args.threads);
    print!("{}", result.table());

    if let Ok(writer) = ExperimentWriter::new("decreased_traceroute") {
        let _ = writer.write_json("result.json", &result);
        println!("artifacts: {}", writer.dir().display());
    }
}
