//! Experiments C1/C2 — the §2 complexity claims: `O(log n)` insertion,
//! `O(1)` query.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::complexity::{self, ComplexityConfig};
use nearpeer_bench::ExperimentWriter;

fn main() {
    let args = CommonArgs::parse();
    let config = if args.quick {
        ComplexityConfig::quick()
    } else {
        ComplexityConfig::standard()
    };
    println!("C1/C2 — RouterIndex insertion and query scaling");
    println!(
        "synthetic landmark tree: branching {}, depth {}, {} queries/point\n",
        config.branching, config.depth, config.queries
    );

    let result = complexity::run(&config);
    print!("{}", result.table());

    let flat = result.query_is_flat(2.0);
    println!(
        "\nC2 {}: query cost flat while population grows {}x per step",
        if flat { "HOLDS" } else { "VIOLATED" },
        config
            .populations
            .windows(2)
            .map(|w| w[1] / w[0].max(1))
            .max()
            .unwrap_or(1)
    );

    if let Ok(writer) = ExperimentWriter::new("complexity_scaling") {
        let _ = writer.write_json("result.json", &result);
        println!("artifacts: {}", writer.dir().display());
    }
}
