//! Exports one generated topology per family as JSON, edge-list and DOT
//! under the experiment output directory, so external tools (graph
//! viewers, other simulators) can consume the exact maps the experiments
//! run on. Generation uses the suite's fixed seed (42, like the other
//! binaries); `--quick` shrinks the maps.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::ExperimentWriter;
use nearpeer_topology::generators::{
    BaConfig, GlpConfig, MapperConfig, TopologySpec, TransitStubConfig, WaxmanConfig,
};
use nearpeer_topology::io;

fn families(quick: bool) -> Vec<(&'static str, TopologySpec)> {
    let n = if quick { 150 } else { 600 };
    vec![
        (
            "mapper",
            TopologySpec::Mapper(MapperConfig::with_access(n, n / 2)),
        ),
        ("ba", TopologySpec::Ba(BaConfig { n, m: 2 })),
        ("glp", TopologySpec::Glp(GlpConfig::default_with_n(n))),
        (
            "waxman",
            TopologySpec::Waxman(WaxmanConfig {
                n,
                alpha: 0.12,
                beta: 0.12,
            }),
        ),
        (
            "transit-stub",
            TopologySpec::TransitStub(TransitStubConfig {
                transit_domains: 3,
                transit_size: 6,
                stubs_per_transit_router: 3,
                stub_size: 4,
                extra_edge_prob: 0.25,
                access_per_stub: 2,
            }),
        ),
    ]
}

const SEED: u64 = 42;

fn main() {
    let args = CommonArgs::parse();
    let seed = SEED;
    let writer = ExperimentWriter::new("map_export").expect("output directory");
    println!("exporting one map per family (seed {seed})");

    for (name, spec) in families(args.quick) {
        let topo = match spec.generate(seed) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{name}: generation failed: {e}");
                continue;
            }
        };
        let json = writer
            .write_text(&format!("{name}.json"), &io::to_json(&topo))
            .expect("write json");
        writer
            .write_text(&format!("{name}.edges"), &io::to_edge_list(&topo))
            .expect("write edge list");
        writer
            .write_text(&format!("{name}.dot"), &io::to_dot(&topo))
            .expect("write dot");
        println!(
            "{name:>12}: {} routers, {} links -> {}",
            topo.n_routers(),
            topo.n_links(),
            json.display()
        );
    }
    println!("artifacts: {}", writer.dir().display());
}
