//! Experiment A2 — end-to-end live-streaming setup delay with path-tree vs
//! random neighbors.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::setup_delay::{self, SetupDelayConfig};
use nearpeer_bench::ExperimentWriter;

fn main() {
    let args = CommonArgs::parse();
    let config = if args.quick {
        SetupDelayConfig::quick()
    } else {
        SetupDelayConfig::standard()
    };
    println!("A2 — streaming setup delay per neighbor policy");
    println!(
        "{} peers, k = {}, {} chunks at {} ms\n",
        config.n_peers,
        config.k,
        config.chunks,
        config.chunk_interval_us / 1_000
    );

    let result = setup_delay::run(&config, 42);
    print!("{}", result.table());

    if let (Some(pt), Some(rnd)) = (result.policy("path-tree"), result.policy("random")) {
        println!(
            "\nproximity neighbors change mean setup delay by {:+.1}% vs random",
            (pt.setup_delay_ms_mean / rnd.setup_delay_ms_mean - 1.0) * 100.0
        );
    }

    if let Ok(writer) = ExperimentWriter::new("setup_delay") {
        let _ = writer.write_json("result.json", &result);
        println!("artifacts: {}", writer.dir().display());
    }
}
