//! Runs every experiment in sequence and prints each paper-style table —
//! the one-command regeneration of the whole evaluation. `--quick` uses
//! each experiment's reduced configuration (the CI smoke setting).

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::{
    churn, complexity, convergence, decreased, dtree, landmark_policies, mapping, quality,
    setup_delay, superpeers,
};
use nearpeer_bench::{oracle_stats_line, ExperimentWriter, Swarm, SwarmConfig};
use nearpeer_topology::generators::{mapper, MapperConfig};

const SEED: u64 = 42;

fn section(id: &str, title: &str) {
    println!("\n=== {id} — {title} ===");
}

fn main() {
    let args = CommonArgs::parse();
    let q = args.quick;
    println!(
        "nearpeer experiment suite ({} configs, seed {SEED})",
        if q { "quick" } else { "standard" }
    );

    // A representative swarm build up front, so every suite run leads with
    // the route oracle's tree accounting (the one-tree-per-trace invariant
    // scale_smoke gates in CI).
    let peers = if q { 200 } else { 2_000 };
    let topo =
        mapper(&MapperConfig::with_access(400, peers + peers / 5), SEED).expect("mapper topology");
    let swarm_cfg = SwarmConfig {
        n_peers: peers,
        n_landmarks: 4,
        ..SwarmConfig::default()
    };
    match Swarm::build(&topo, &swarm_cfg, SEED) {
        Ok(swarm) => {
            println!(
                "reference swarm ({peers} peers): trace {:.2?} ({} threads) / register {:.2?}",
                swarm.phases.trace, swarm.phases.trace_threads, swarm.phases.register,
            );
            println!("{}", oracle_stats_line(&swarm.phases.oracle));
        }
        Err(e) => println!("reference swarm skipped: {e}"),
    }

    section("F2", "neighbor quality vs population");
    let quality_cfg = if q {
        quality::QualityConfig::quick()
    } else {
        quality::QualityConfig::paper(args.seeds)
    };
    print!("{}", quality::run(&quality_cfg, args.threads).table());

    section("C1/C2", "insertion/query complexity scaling");
    let complexity_cfg = if q {
        complexity::ComplexityConfig::quick()
    } else {
        complexity::ComplexityConfig::standard()
    };
    print!("{}", complexity::run(&complexity_cfg).table());

    section("C3", "probes-to-accuracy convergence race");
    let convergence_cfg = if q {
        convergence::ConvergenceConfig::quick()
    } else {
        convergence::ConvergenceConfig::standard()
    };
    print!("{}", convergence::run(&convergence_cfg, SEED).table());

    section("W1", "landmark count x placement policy");
    let landmark_cfg = if q {
        landmark_policies::LandmarkStudyConfig::quick()
    } else {
        landmark_policies::LandmarkStudyConfig::standard(args.seeds)
    };
    print!(
        "{}",
        landmark_policies::run(&landmark_cfg, args.threads).table()
    );

    section("W2", "super-peer delegation coverage");
    let superpeer_cfg = if q {
        superpeers::SuperPeerStudyConfig::quick()
    } else {
        superpeers::SuperPeerStudyConfig::standard()
    };
    print!("{}", superpeers::run(&superpeer_cfg, SEED).table());

    section("W3", "staleness and quality under churn");
    let churn_cfg = if q {
        churn::ChurnStudyConfig::quick()
    } else {
        churn::ChurnStudyConfig::standard()
    };
    print!("{}", churn::run(&churn_cfg, SEED).table());

    section("W4", "probe budget vs neighbor quality");
    let decreased_cfg = if q {
        decreased::DecreasedConfig::quick()
    } else {
        decreased::DecreasedConfig::standard(args.seeds)
    };
    print!("{}", decreased::run(&decreased_cfg, args.threads).table());

    section("A1", "P[dtree = d] per topology family");
    let dtree_cfg = if q {
        dtree::DtreeConfig::quick()
    } else {
        dtree::DtreeConfig::standard(args.seeds)
    };
    print!("{}", dtree::run(&dtree_cfg, args.threads).table());

    section("A2", "streaming setup delay per policy");
    let setup_cfg = if q {
        setup_delay::SetupDelayConfig::quick()
    } else {
        setup_delay::SetupDelayConfig::standard()
    };
    print!("{}", setup_delay::run(&setup_cfg, SEED).table());

    section("MAP", "map-statistics validation");
    let mapping_cfg = if q {
        mapping::MappingConfig::quick()
    } else {
        mapping::MappingConfig::standard()
    };
    print!("{}", mapping::run(&mapping_cfg, SEED, args.threads).table());

    if let Ok(writer) = ExperimentWriter::new("run_all") {
        let _ = writer.write_text(
            "manifest.txt",
            &format!(
                "suite={} seed={SEED} seeds_per_point={} threads={}\n",
                if q { "quick" } else { "standard" },
                args.seeds,
                args.threads
            ),
        );
        println!("\nartifacts: {}", writer.dir().display());
    }
}
