//! `wire_loadgen` — drives a running `nearpeerd` and checks its answers.
//!
//! Three phases over `--conns` pipelined connections:
//!
//! 1. **register** — every peer `0..--peers` joins over the wire
//!    (partitioned across connections; join answers are not compared —
//!    under concurrent registration they depend on arrival order);
//! 2. **query** (timed) — `--queries` pipelined `QueryRequest`s; every
//!    reply is then checked **bit-for-bit** against a local synchronous
//!    mirror of the server (the final directory state is a pure function
//!    of the registered set, so the mirror agrees no matter how the wire
//!    registrations interleaved);
//! 3. **handover** — `--handovers` mobility moves on one connection (the
//!    server handles one connection's frames in order), each answer
//!    checked against the mirror applying the same moves in the same
//!    order.
//!
//! Prints a JSON result line and exits non-zero on any answer mismatch,
//! join error, or a query rate below `--min-qps`.

use nearpeer_bench::wire::{world, FrameConn, Mirror};
use nearpeer_core::protocol::{Message, WireNeighbor};
use nearpeer_core::telemetry::find_metric;
use nearpeer_core::{
    Histogram, HistogramSnapshot, LandmarkId, Neighbor, PeerId, PeerPath, ServerConfig,
};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Connection attempts retried across the whole run (initial connects and
/// mid-phase reconnects), reported in the JSON summary.
static CONNECT_RETRIES: AtomicU64 = AtomicU64::new(0);

struct Args {
    addr: String,
    landmarks: usize,
    regions: usize,
    peers: u64,
    queries: u64,
    conns: usize,
    k: usize,
    handovers: u64,
    min_qps: f64,
    window: usize,
    shutdown: bool,
    /// Pull the server's telemetry over the wire after the query phase
    /// and cross-check it against the client's own counts.
    scrape: bool,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut out = Self {
            addr: String::new(),
            landmarks: 8,
            regions: 1,
            peers: 100_000,
            queries: 50_000,
            conns: 4,
            k: 5,
            handovers: 1_000,
            min_qps: 0.0,
            window: 256,
            shutdown: false,
            scrape: false,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            let mut value = |flag: &str| iter.next().ok_or(format!("{flag} needs a value"));
            fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String> {
                v.parse().map_err(|_| format!("bad {flag} value {v}"))
            }
            match arg.as_str() {
                "--addr" => out.addr = value("--addr")?,
                "--landmarks" => out.landmarks = num("--landmarks", value("--landmarks")?)?,
                "--regions" => out.regions = num("--regions", value("--regions")?)?,
                "--peers" => out.peers = num("--peers", value("--peers")?)?,
                "--queries" => out.queries = num("--queries", value("--queries")?)?,
                "--conns" => out.conns = num("--conns", value("--conns")?)?,
                "--k" => out.k = num("--k", value("--k")?)?,
                "--handovers" => out.handovers = num("--handovers", value("--handovers")?)?,
                "--min-qps" => out.min_qps = num("--min-qps", value("--min-qps")?)?,
                "--window" => out.window = num("--window", value("--window")?)?,
                "--shutdown" => out.shutdown = true,
                "--scrape" => out.scrape = true,
                "--help" | "-h" => {
                    return Err(
                        "usage: wire_loadgen --addr HOST:PORT [--landmarks N] [--regions N] \
                         [--peers N] [--queries N] [--conns N] [--k K] [--handovers N] \
                         [--min-qps Q] [--window W] [--shutdown] [--scrape]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        if out.addr.is_empty() {
            return Err("--addr is required".into());
        }
        if out.peers == 0 || out.conns == 0 || out.window == 0 || out.k == 0 {
            return Err("--peers, --conns, --window and --k must be >= 1".into());
        }
        Ok(out)
    }
}

/// Connects with capped exponential backoff plus jitter instead of
/// aborting on the first refusal — the daemon may still be binding its
/// socket, or restarting after a crash. Every retry counts toward the
/// summary's `connect_retries`.
fn connect_with_backoff(addr: &str) -> io::Result<FrameConn> {
    const ATTEMPTS: u32 = 12;
    let mut delay = Duration::from_millis(25);
    let cap = Duration::from_secs(1);
    let mut attempt = 0u32;
    loop {
        match FrameConn::connect(addr) {
            Ok(conn) => return Ok(conn),
            Err(e) if attempt + 1 >= ATTEMPTS => return Err(e),
            Err(_) => {
                attempt += 1;
                CONNECT_RETRIES.fetch_add(1, Ordering::Relaxed);
                // Jitter without an RNG dependency: the clock's
                // sub-millisecond bits de-synchronize workers that would
                // otherwise retry in lockstep.
                let nanos = SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.subsec_nanos())
                    .unwrap_or(0);
                let jitter = delay.mul_f64(f64::from(nanos % 997) / 997.0 * 0.25);
                std::thread::sleep(delay + jitter);
                delay = (delay * 2).min(cap);
            }
        }
    }
}

/// Keeps up to `window` requests in flight on one connection; the server
/// answers a connection's frames in order, so the `i`-th reply matches
/// the `i`-th request.
///
/// Crash tolerance: a transport error mid-phase reconnects (same capped
/// backoff as the initial connect) and resumes from the last acknowledged
/// reply, replaying the unacknowledged window. Replayed replies reach
/// `on_reply` with the `resent` flag up — a join the server applied just
/// before the connection died bounces off its replay as a duplicate,
/// which is a delivery confirmation, not a failure.
fn run_pipelined(
    conn: &mut FrameConn,
    addr: &str,
    total: u64,
    window: usize,
    mut make: impl FnMut(u64) -> Message,
    mut on_reply: impl FnMut(u64, Message, bool),
) -> io::Result<()> {
    const MAX_RECONNECTS: u32 = 5;
    let mut sent = 0u64;
    let mut recvd = 0u64;
    let mut resent_below = 0u64;
    let mut reconnects = 0u32;
    loop {
        let outcome: io::Result<()> = (|| {
            while recvd < total {
                while sent < total && sent - recvd < window as u64 {
                    conn.send(&make(sent))?;
                    sent += 1;
                }
                match conn.recv()? {
                    Some(msg) => {
                        on_reply(recvd, msg, recvd < resent_below);
                        recvd += 1;
                    }
                    None => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed with replies outstanding",
                        ))
                    }
                }
            }
            Ok(())
        })();
        match outcome {
            Ok(()) => return Ok(()),
            Err(e) => {
                reconnects += 1;
                if reconnects > MAX_RECONNECTS {
                    return Err(e);
                }
                eprintln!(
                    "wire_loadgen: connection lost ({e}); reconnecting \
                     ({reconnects}/{MAX_RECONNECTS})"
                );
                *conn = connect_with_backoff(addr)?;
                // In-flight replies died with the socket: replay the
                // unacknowledged requests on the fresh connection.
                resent_below = sent;
                sent = recvd;
            }
        }
    }
}

/// Splits `0..total` into `parts` contiguous ranges.
fn ranges(total: u64, parts: usize) -> Vec<(u64, u64)> {
    let chunk = total.div_ceil(parts as u64).max(1);
    (0..parts as u64)
        .map(|t| ((t * chunk).min(total), ((t + 1) * chunk).min(total)))
        .collect()
}

fn same_answer(wire: &[WireNeighbor], local: &[Neighbor]) -> bool {
    wire.len() == local.len()
        && wire
            .iter()
            .zip(local)
            .all(|(w, n)| w.peer == n.peer && w.dtree == n.dtree)
}

fn fail(msg: &str) -> ! {
    eprintln!("wire_loadgen: {msg}");
    std::process::exit(1);
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let joins = world(args.landmarks);
    let config = ServerConfig {
        neighbor_count: args.k,
        ..ServerConfig::default()
    };
    let window = args.window;
    let n_landmarks = args.landmarks as u32;

    let mut conns = Vec::with_capacity(args.conns);
    for _ in 0..args.conns {
        match connect_with_backoff(&args.addr) {
            Ok(conn) => conns.push(conn),
            Err(e) => fail(&format!("cannot connect to {}: {e}", args.addr)),
        }
    }

    // Phase 1: register every peer over the wire, conns in parallel.
    let reg_start = Instant::now();
    let mut workers = Vec::new();
    for (mut conn, (lo, hi)) in conns.into_iter().zip(ranges(args.peers, args.conns)) {
        let addr = args.addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut errors = 0u64;
            run_pipelined(
                &mut conn,
                &addr,
                hi - lo,
                window,
                |i| {
                    let (peer, path) = joins.join(lo + i);
                    Message::JoinRequest { peer, path }
                },
                |_, msg, resent| match msg {
                    Message::JoinReply { .. } => {}
                    // A replayed join bouncing off as an error means the
                    // pre-crash send was already applied; only a refusal
                    // on a first delivery is a real error.
                    Message::JoinError { .. } if resent => {}
                    Message::JoinError { peer, reason } => {
                        eprintln!("wire_loadgen: join {peer} refused: {reason}");
                        errors += 1;
                    }
                    other => fail(&format!("unexpected {} to a join", other.kind_name())),
                },
            )
            .unwrap_or_else(|e| fail(&format!("register phase: {e}")));
            (conn, errors)
        }));
    }
    let mut conns = Vec::with_capacity(args.conns);
    let mut join_errors = 0u64;
    for worker in workers {
        let (conn, errors) = worker
            .join()
            .unwrap_or_else(|_| fail("register worker died"));
        conns.push(conn);
        join_errors += errors;
    }
    let register_secs = reg_start.elapsed().as_secs_f64();

    // The local mirror: same world, same config, registered as one
    // batch — order-independent, so it matches whatever interleaving the
    // wire registrations landed in.
    let mut mirror = Mirror::build(args.landmarks, args.regions, config)
        .unwrap_or_else(|e| fail(&format!("cannot build mirror: {e}")));
    let items: Vec<_> = (0..args.peers).map(|p| joins.join(p)).collect();
    let joined = mirror.register_all(items);
    if joined as u64 + join_errors != args.peers {
        fail(&format!(
            "mirror joined {joined} peers but the wire joined {}",
            args.peers - join_errors
        ));
    }

    // Phase 2 (timed): pipelined queries, replies collected raw and
    // verified after the clock stops.
    let query_start = Instant::now();
    let peers = args.peers;
    let k = args.k.min(u16::MAX as usize) as u16;
    let mut workers = Vec::new();
    for (mut conn, (lo, hi)) in conns.into_iter().zip(ranges(args.queries, args.conns)) {
        let addr = args.addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut replies: Vec<(u64, Vec<WireNeighbor>)> = Vec::with_capacity((hi - lo) as usize);
            // Client-observed latency: send instant per request index
            // (indexed, not FIFO, so a reconnect replay re-stamps its
            // window instead of pairing replies with dead sends).
            let latency = Histogram::new();
            let sent_at: std::cell::RefCell<Vec<Instant>> =
                std::cell::RefCell::new(Vec::with_capacity((hi - lo) as usize));
            run_pipelined(
                &mut conn,
                &addr,
                hi - lo,
                window,
                |i| {
                    let now = Instant::now();
                    let mut sent_at = sent_at.borrow_mut();
                    match sent_at.get_mut(i as usize) {
                        Some(slot) => *slot = now,
                        None => sent_at.push(now),
                    }
                    let peer = (lo + i) % peers;
                    Message::QueryRequest {
                        nonce: lo + i,
                        path: joins.path(peer),
                        k,
                        exclude: Some(PeerId(peer)),
                    }
                },
                |i, msg, _resent| match msg {
                    Message::QueryReply { nonce, neighbors } => {
                        assert_eq!(nonce, lo + i, "pipelined replies arrive in order");
                        latency.record(sent_at.borrow()[i as usize].elapsed().as_micros() as u64);
                        replies.push((nonce, neighbors));
                    }
                    other => fail(&format!("unexpected {} to a query", other.kind_name())),
                },
            )
            .unwrap_or_else(|e| fail(&format!("query phase: {e}")));
            (conn, replies, latency.snapshot())
        }));
    }
    let mut conns = Vec::with_capacity(args.conns);
    let mut replies = Vec::with_capacity(args.queries as usize);
    let mut latency = HistogramSnapshot::default();
    for worker in workers {
        let (conn, mut part, lat) = worker.join().unwrap_or_else(|_| fail("query worker died"));
        conns.push(conn);
        replies.append(&mut part);
        latency.merge(&lat);
    }
    let query_secs = query_start.elapsed().as_secs_f64();
    let qps = if query_secs > 0.0 {
        args.queries as f64 / query_secs
    } else {
        f64::INFINITY
    };

    // Verify every reply bit-for-bit against the mirror (distinct queried
    // peers repeat every `peers` queries; cache their expected answer).
    let mut expected: HashMap<u64, Vec<Neighbor>> = HashMap::new();
    let mut query_mismatches = 0u64;
    for (nonce, neighbors) in &replies {
        let peer = nonce % peers;
        let want = expected.entry(peer).or_insert_with(|| {
            mirror.closest_to_path(&joins.path(peer), k as usize, Some(PeerId(peer)))
        });
        if !same_answer(neighbors, want) {
            query_mismatches += 1;
            if query_mismatches <= 5 {
                eprintln!(
                    "wire_loadgen: query {nonce} (peer {peer}) answered {neighbors:?}, expected {want:?}"
                );
            }
        }
    }

    // Mid-run scrape: pull the server's registry over the wire and
    // cross-check the served-query counter against what this client just
    // verified. The query replies above all arrived, so the server must
    // have counted exactly that many query-request frames.
    let mut scrape_p99_us = 0u64;
    if args.scrape {
        let conn = &mut conns[0];
        conn.send(&Message::StatsRequest { nonce: 7777 })
            .unwrap_or_else(|e| fail(&format!("scrape send: {e}")));
        let text = match conn.recv() {
            Ok(Some(Message::StatsReply { nonce: 7777, text })) => text,
            other => fail(&format!("scrape not answered: {other:?}")),
        };
        let served = find_metric(&text, "wire_frames_total{kind=\"query-request\"}")
            .unwrap_or_else(|| fail("scrape: wire_frames_total{kind=\"query-request\"} missing"));
        if served != replies.len() as u64 {
            fail(&format!(
                "scrape: server served {served} query frames, client verified {}",
                replies.len()
            ));
        }
        scrape_p99_us = find_metric(
            &text,
            "wire_serve_us{kind=\"query-request\",quantile=\"0.99\"}",
        )
        .unwrap_or_else(|| fail("scrape: wire_serve_us p99 missing"));
        if scrape_p99_us == 0 {
            // Zero p99 over thousands of directory queries means the
            // server timed nothing — `--scrape` against `--no-timing`.
            fail("scrape: serve p99 is zero (is the server running --no-timing?)");
        }
        eprintln!(
            "wire_loadgen: scrape OK — server counted {served} served queries \
             (serve p99 {scrape_p99_us}us, exposition {} bytes)",
            text.len()
        );
    }

    // Phase 3: handovers on one connection, mirrored move-by-move.
    let handovers = args.handovers.min(args.peers);
    let mut handover_mismatches = 0u64;
    let handover_start = Instant::now();
    {
        let conn = &mut conns[0];
        // Precomputed so the send and verify closures share it read-only.
        let moves: Vec<(PeerId, PeerPath)> = (0..handovers)
            .map(|i| {
                let dest = LandmarkId((joins.landmark_of(i).0 + 1) % n_landmarks);
                joins.join_to(i, dest)
            })
            .collect();
        run_pipelined(
            conn,
            &args.addr,
            handovers,
            window,
            |i| {
                let (peer, path) = moves[i as usize].clone();
                Message::HandoverRequest { peer, path }
            },
            |i, msg, _resent| match msg {
                Message::JoinReply { peer, neighbors, .. } => {
                    let (sent_peer, path) = moves[i as usize].clone();
                    assert_eq!(peer, sent_peer, "replies arrive in order");
                    let want = mirror
                        .handover(peer, path)
                        .unwrap_or_else(|e| fail(&format!("mirror refused handover: {e}")));
                    if !same_answer(&neighbors, &want) {
                        handover_mismatches += 1;
                        if handover_mismatches <= 5 {
                            eprintln!(
                                "wire_loadgen: handover {peer} answered {neighbors:?}, expected {want:?}"
                            );
                        }
                    }
                }
                Message::JoinError { peer, reason } => {
                    fail(&format!("handover {peer} refused: {reason}"))
                }
                other => fail(&format!("unexpected {} to a handover", other.kind_name())),
            },
        )
        .unwrap_or_else(|e| fail(&format!("handover phase: {e}")));
    }
    let handover_secs = handover_start.elapsed().as_secs_f64();

    // Optionally stop the daemon: close the idle connections first so it
    // can drain, then ask the last one to shut down and wait for the ack.
    if args.shutdown {
        let mut conn = conns.pop().expect("at least one connection");
        drop(conns);
        conn.send(&Message::Shutdown { nonce: 99 })
            .unwrap_or_else(|e| fail(&format!("shutdown send: {e}")));
        match conn.recv() {
            Ok(Some(Message::ProbePong { nonce: 99 })) => {}
            other => fail(&format!("shutdown not acknowledged: {other:?}")),
        }
    }

    let mismatches = query_mismatches + handover_mismatches;
    println!(
        "{{\"addr\":\"{}\",\"landmarks\":{},\"regions\":{},\"peers\":{},\"conns\":{},\"k\":{},\
         \"window\":{},\"register_secs\":{:.3},\"register_rate\":{:.0},\"queries\":{},\
         \"query_secs\":{:.3},\"qps\":{:.0},\"query_p50_us\":{},\"query_p95_us\":{},\
         \"query_p99_us\":{},\"query_max_us\":{},\"scrape_p99_us\":{},\"handovers\":{},\
         \"handover_secs\":{:.3},\"join_errors\":{},\"query_mismatches\":{},\
         \"handover_mismatches\":{},\"connect_retries\":{}}}",
        args.addr,
        args.landmarks,
        args.regions,
        args.peers,
        args.conns,
        args.k,
        args.window,
        register_secs,
        args.peers as f64 / register_secs.max(1e-9),
        args.queries,
        query_secs,
        qps,
        latency.quantile(0.5),
        latency.quantile(0.95),
        latency.quantile(0.99),
        latency.max,
        scrape_p99_us,
        handovers,
        handover_secs,
        join_errors,
        query_mismatches,
        handover_mismatches,
        CONNECT_RETRIES.load(Ordering::Relaxed),
    );
    if mismatches > 0 || join_errors > 0 {
        eprintln!(
            "wire_loadgen: FAILED — {mismatches} mismatched answers, {join_errors} join errors"
        );
        std::process::exit(1);
    }
    if qps < args.min_qps {
        eprintln!(
            "wire_loadgen: FAILED — {qps:.0} queries/s below the --min-qps {} floor",
            args.min_qps
        );
        std::process::exit(3);
    }
    eprintln!(
        "wire_loadgen: OK — {} peers, {} queries at {qps:.0}/s, {handovers} handovers, all answers bit-identical",
        args.peers, args.queries
    );
}
