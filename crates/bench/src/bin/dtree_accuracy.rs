//! Experiment A1 — how often the inferred tree distance equals the true
//! shortest path, per topology family.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::dtree::{self, DtreeConfig};
use nearpeer_bench::ExperimentWriter;

fn main() {
    let args = CommonArgs::parse();
    let config = if args.quick {
        DtreeConfig::quick()
    } else {
        DtreeConfig::standard(args.seeds)
    };
    println!("A1 — dtree accuracy: P[dtree = d] and stretch per family");
    println!(
        "{} peers, {} landmarks, {} sampled pairs, seeds = {}\n",
        config.n_peers, config.n_landmarks, config.pairs, config.seeds
    );

    let result = dtree::run(&config, args.threads);
    print!("{}", result.table());
    println!(
        "\nThe paper's assumption (most pairs verify d = dtree) should hold \
         on the heavy-tailed families (mapper/ba/glp) and weaken on waxman."
    );

    if let Ok(writer) = ExperimentWriter::new("dtree_accuracy") {
        let _ = writer.write_json("result.json", &result);
        println!("artifacts: {}", writer.dir().display());
    }
}
