//! Experiment W3 — churn (faulty peers) and mobility handover.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::churn::{self, ChurnStudyConfig};
use nearpeer_bench::ExperimentWriter;

fn main() {
    let args = CommonArgs::parse();
    let config = if args.quick {
        ChurnStudyConfig::quick()
    } else {
        ChurnStudyConfig::standard()
    };
    println!("W3 — churn, faulty peers and handover");
    println!(
        "{} peers over the trace, mean lifetime {:.0}s, {} handovers\n",
        config.n_peers, config.mean_lifetime_secs, config.handovers
    );

    let result = churn::run(&config, 42);
    print!("{}", result.table());
    println!(
        "\nhandover: fresh neighbor sets cost {:.2}x the stale ones \
         (over {} handovers; < 1 means re-registration restored locality)",
        result.handover_improvement, result.handovers_measured
    );

    if let Ok(writer) = ExperimentWriter::new("churn_handover") {
        let _ = writer.write_json("result.json", &result);
        println!("artifacts: {}", writer.dir().display());
    }
}
