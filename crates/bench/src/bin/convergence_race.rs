//! Experiment C3 — the "quicker" claim: probes until a newcomer picks good
//! neighbors, path-tree vs Vivaldi vs GNP.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::convergence::{self, ConvergenceConfig};
use nearpeer_bench::ExperimentWriter;

fn main() {
    let args = CommonArgs::parse();
    let config = if args.quick {
        ConvergenceConfig::quick()
    } else {
        ConvergenceConfig::standard()
    };
    println!("C3 — measurement effort until accurate neighbor selection");
    println!(
        "{} peers, {} landmarks, k = {}\n",
        config.n_peers, config.n_landmarks, config.k
    );

    let result = convergence::run(&config, 42);
    print!("{}", result.table());
    let series = result.series();
    println!("\n{}", series.to_ascii_plot(64, 14));

    if let Some(pt) = result.path_tree_point() {
        match result.vivaldi_probes_to_reach(pt.d_ratio) {
            Some(probes) => println!(
                "Vivaldi needs ≈{probes:.0} probes/peer to match the path-tree \
                 quality obtained with {:.1} probes ({}x more measurement)",
                pt.probes_per_peer,
                (probes / pt.probes_per_peer).round()
            ),
            None => println!(
                "Vivaldi never reaches the path-tree quality ({:.3}) within the \
                 measured rounds",
                pt.d_ratio
            ),
        }
    }

    if let Ok(writer) = ExperimentWriter::new("convergence_race") {
        let _ = writer.write_text("race.csv", &series.to_csv());
        let _ = writer.write_json("result.json", &result);
        println!("artifacts: {}", writer.dir().display());
    }
}
