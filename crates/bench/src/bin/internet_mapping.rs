//! Map validation — verifies that every substitute topology family exhibits
//! the structural statistics the paper's argument depends on.

use nearpeer_bench::cli::CommonArgs;
use nearpeer_bench::experiments::mapping::{self, MappingConfig};
use nearpeer_bench::ExperimentWriter;

fn main() {
    let args = CommonArgs::parse();
    let config = if args.quick {
        MappingConfig::quick()
    } else {
        MappingConfig::standard()
    };
    println!("Map validation — substitute for the nem IR map (DESIGN.md §3)");
    println!("target size ≈ {} routers per family\n", config.size);

    let result = mapping::run(&config, 42, args.threads);
    print!("{}", result.table());
    println!(
        "\nExpected signatures: mapper/ba/glp heavy-tailed (alpha ≈ 2–3, large \
         max degree, k-core ≥ 2); waxman Poisson-like; transit-stub hierarchical."
    );

    if let Ok(writer) = ExperimentWriter::new("internet_mapping") {
        let _ = writer.write_json("result.json", &result);
        println!("artifacts: {}", writer.dir().display());
    }
}
