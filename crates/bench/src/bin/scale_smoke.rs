//! Scale smoke test: build a 10k-peer swarm through the batched,
//! shard-parallel directory path inside a wall-clock budget.
//!
//! This is the CI guard for the sharded-server refactor: if shard-parallel
//! construction regresses (accidental serialisation, quadratic descent,
//! lost batching), the budget blows and CI goes red. Run it in release
//! mode; the budget is generous on purpose — it catches order-of-magnitude
//! regressions, not noise.
//!
//! ```sh
//! cargo run --release -p nearpeer-bench --bin scale_smoke -- [--peers N] [--budget-secs S]
//! ```

use nearpeer_bench::{BuildStrategy, Swarm, SwarmConfig};
use nearpeer_topology::generators::{mapper, MapperConfig};
use std::time::Instant;

struct Args {
    peers: usize,
    budget_secs: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        peers: 10_000,
        budget_secs: 120,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--peers" => {
                let v = iter.next().ok_or("--peers needs a value")?;
                out.peers = v.parse().map_err(|_| format!("bad --peers value {v}"))?;
            }
            "--budget-secs" => {
                let v = iter.next().ok_or("--budget-secs needs a value")?;
                out.budget_secs = v
                    .parse()
                    .map_err(|_| format!("bad --budget-secs value {v}"))?;
            }
            "--help" | "-h" => return Err("usage: [--peers N] [--budget-secs S]".into()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let t0 = Instant::now();
    // Enough degree-1 access routers for every peer, plus headroom for the
    // RNG to shuffle over.
    let topo = mapper(
        &MapperConfig::with_access(2_000, args.peers + args.peers / 10),
        42,
    )
    .expect("mapper topology");
    let topo_elapsed = t0.elapsed();

    let config = SwarmConfig {
        n_peers: args.peers,
        n_landmarks: 8,
        build: BuildStrategy::ShardParallel,
        ..SwarmConfig::default()
    };
    let t1 = Instant::now();
    let swarm = match Swarm::build(&topo, &config, 1) {
        Ok(swarm) => swarm,
        Err(e) => {
            eprintln!("scale_smoke: swarm build failed: {e}");
            std::process::exit(1);
        }
    };
    let build_elapsed = t1.elapsed();

    let report = swarm.server.report();
    println!(
        "scale_smoke: topology {} routers in {:.2?}, {}-peer swarm built shard-parallel in {:.2?}",
        topo.n_routers(),
        topo_elapsed,
        swarm.peers.len(),
        build_elapsed,
    );
    println!("{report}");
    let interned: usize = swarm
        .server
        .shards()
        .iter()
        .map(|s| s.path_store().distinct())
        .sum();
    println!(
        "interned paths: {interned} distinct across {} shards",
        swarm.server.shards().len()
    );

    if report.peers != args.peers {
        eprintln!(
            "scale_smoke: expected {} registered peers, server holds {}",
            args.peers, report.peers
        );
        std::process::exit(1);
    }
    if report.stats.queries != args.peers as u64 {
        eprintln!(
            "scale_smoke: expected one join answer per peer, counted {}",
            report.stats.queries
        );
        std::process::exit(1);
    }
    let total = t0.elapsed();
    if total.as_secs() > args.budget_secs {
        eprintln!(
            "scale_smoke: took {:.2?}, budget {}s — shard-parallel construction regressed",
            total, args.budget_secs
        );
        std::process::exit(1);
    }
    println!(
        "scale_smoke: OK ({:.2?} total, budget {}s)",
        total, args.budget_secs
    );
}
