//! Scale smoke test: build a 10k-peer swarm — parallel round-1 tracing
//! through the shared route oracle, then the batched, shard-parallel
//! directory path — inside a wall-clock budget.
//!
//! This is the CI guard for the scaling refactors: if shard-parallel
//! construction or parallel tracing regresses (accidental serialisation,
//! quadratic descent, lost batching), the budget blows and CI goes red. The
//! trace-phase vs register-phase wall-clock split is printed so a regression
//! report says *which* round slowed down, and the oracle's tree accounting
//! is both printed and asserted: the default trace path must build
//! O(landmarks) trees — `lazy_trees_built == 0` — and the trace phase must
//! fit its own (generous) wall-clock budget. Run it in release mode; the
//! budgets catch order-of-magnitude regressions, not noise. Both parallel
//! paths degrade gracefully to their sequential equivalents on a
//! single-core runner.
//!
//! ```sh
//! cargo run --release -p nearpeer-bench --bin scale_smoke -- \
//!     [--peers N] [--budget-secs S] [--trace-budget-secs S] [--trace-threads T]
//! ```

use nearpeer_bench::{oracle_stats_line, BuildStrategy, Swarm, SwarmConfig};
use nearpeer_topology::generators::{mapper, MapperConfig};
use std::time::Instant;

struct Args {
    peers: usize,
    budget_secs: u64,
    trace_budget_secs: Option<u64>,
    trace_threads: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        peers: 10_000,
        budget_secs: 120,
        trace_budget_secs: None,
        trace_threads: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--peers" => {
                let v = iter.next().ok_or("--peers needs a value")?;
                out.peers = v.parse().map_err(|_| format!("bad --peers value {v}"))?;
            }
            "--budget-secs" => {
                let v = iter.next().ok_or("--budget-secs needs a value")?;
                out.budget_secs = v
                    .parse()
                    .map_err(|_| format!("bad --budget-secs value {v}"))?;
            }
            "--trace-budget-secs" => {
                let v = iter.next().ok_or("--trace-budget-secs needs a value")?;
                out.trace_budget_secs = Some(
                    v.parse()
                        .map_err(|_| format!("bad --trace-budget-secs value {v}"))?,
                );
            }
            "--trace-threads" => {
                let v = iter.next().ok_or("--trace-threads needs a value")?;
                let t: usize = v
                    .parse()
                    .map_err(|_| format!("bad --trace-threads value {v}"))?;
                if t == 0 {
                    return Err("--trace-threads must be >= 1".into());
                }
                out.trace_threads = Some(t);
            }
            "--help" | "-h" => return Err(
                "usage: [--peers N] [--budget-secs S] [--trace-budget-secs S] [--trace-threads T]"
                    .into(),
            ),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let t0 = Instant::now();
    // Enough degree-1 access routers for every peer, plus headroom for the
    // RNG to shuffle over.
    let topo = mapper(
        &MapperConfig::with_access(2_000, args.peers + args.peers / 10),
        42,
    )
    .expect("mapper topology");
    let topo_elapsed = t0.elapsed();

    let config = SwarmConfig {
        n_peers: args.peers,
        n_landmarks: 8,
        build: BuildStrategy::ShardParallel,
        trace_threads: args.trace_threads,
        ..SwarmConfig::default()
    };
    let t1 = Instant::now();
    let swarm = match Swarm::build(&topo, &config, 1) {
        Ok(swarm) => swarm,
        Err(e) => {
            eprintln!("scale_smoke: swarm build failed: {e}");
            std::process::exit(1);
        }
    };
    let build_elapsed = t1.elapsed();

    let report = swarm.server.report();
    println!(
        "scale_smoke: topology {} routers in {:.2?}, {}-peer swarm built shard-parallel in {:.2?}",
        topo.n_routers(),
        topo_elapsed,
        swarm.peers.len(),
        build_elapsed,
    );
    println!(
        "phase split: trace {:.2?} ({} threads) / register {:.2?} — trace share {:.0}%",
        swarm.phases.trace,
        swarm.phases.trace_threads,
        swarm.phases.register,
        100.0 * swarm.phases.trace.as_secs_f64() / build_elapsed.as_secs_f64().max(1e-9),
    );
    println!("{}", oracle_stats_line(&swarm.phases.oracle));
    println!("{report}");
    let interned: usize = swarm
        .server
        .shards()
        .iter()
        .map(|s| s.path_store().distinct())
        .sum();
    println!(
        "interned paths: {interned} distinct across {} shards",
        swarm.server.shards().len()
    );

    if report.peers != args.peers {
        eprintln!(
            "scale_smoke: expected {} registered peers, server holds {}",
            args.peers, report.peers
        );
        std::process::exit(1);
    }
    if report.stats.queries != args.peers as u64 {
        eprintln!(
            "scale_smoke: expected one join answer per peer, counted {}",
            report.stats.queries
        );
        std::process::exit(1);
    }
    // The default trace path prices every hop off the landmark arena: a
    // single lazily built tree means someone reintroduced a per-hop (or
    // otherwise off-arena) oracle call into round 1.
    if swarm.phases.oracle.lazy_trees_built != 0 {
        eprintln!(
            "scale_smoke: default trace path built {} lazy trees (expected 0 — \
             round 1 must run out of the O(landmarks) arena)",
            swarm.phases.oracle.lazy_trees_built
        );
        std::process::exit(1);
    }
    if let Some(trace_budget) = args.trace_budget_secs {
        if swarm.phases.trace.as_secs() > trace_budget {
            eprintln!(
                "scale_smoke: trace phase took {:.2?}, budget {trace_budget}s — \
                 round-1 tracing regressed",
                swarm.phases.trace
            );
            std::process::exit(1);
        }
    }
    let total = t0.elapsed();
    if total.as_secs() > args.budget_secs {
        eprintln!(
            "scale_smoke: took {:.2?}, budget {}s — shard-parallel construction regressed",
            total, args.budget_secs
        );
        std::process::exit(1);
    }
    println!(
        "scale_smoke: OK ({:.2?} total, budget {}s)",
        total, args.budget_secs
    );
}
