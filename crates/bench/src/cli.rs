//! Minimal argument parsing shared by the experiment binaries.

/// Options every experiment binary understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonArgs {
    /// Reduced sweep for smoke-testing (`--quick`).
    pub quick: bool,
    /// Seeds per parameter point (`--seeds N`).
    pub seeds: u64,
    /// Worker threads (`--threads N`; default = available parallelism).
    pub threads: usize,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            quick: false,
            seeds: 3,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

impl CommonArgs {
    /// Parses from an iterator of arguments (without the program name).
    /// Unknown flags abort with a usage message listing them.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--seeds" => {
                    let v = iter.next().ok_or("--seeds needs a value")?;
                    out.seeds = v.parse().map_err(|_| format!("bad --seeds value {v}"))?;
                    if out.seeds == 0 {
                        return Err("--seeds must be >= 1".into());
                    }
                }
                "--threads" => {
                    let v = iter.next().ok_or("--threads needs a value")?;
                    out.threads = v.parse().map_err(|_| format!("bad --threads value {v}"))?;
                    if out.threads == 0 {
                        return Err("--threads must be >= 1".into());
                    }
                }
                "--help" | "-h" => return Err("usage: [--quick] [--seeds N] [--threads N]".into()),
                other => return Err(format!("unknown argument {other}")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with the message on error.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonArgs, String> {
        CommonArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert!(!a.quick);
        assert_eq!(a.seeds, 3);
        assert!(a.threads >= 1);
    }

    #[test]
    fn flags() {
        let a = parse(&["--quick", "--seeds", "7", "--threads", "2"]).unwrap();
        assert!(a.quick);
        assert_eq!(a.seeds, 7);
        assert_eq!(a.threads, 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--seeds"]).is_err());
        assert!(parse(&["--seeds", "x"]).is_err());
        assert!(parse(&["--seeds", "0"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
