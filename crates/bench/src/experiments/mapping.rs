//! Map validation — the §3 substitution check.
//!
//! The paper relies on an IR-level map from the *nem* mapper. Our
//! substitute generators must exhibit the same statistics the algorithm
//! depends on; this experiment prints them per family so DESIGN.md §3's
//! claim ("our generators reproduce exactly those properties") is
//! verifiable output, not prose.

use crate::runner::run_parallel;
use nearpeer_metrics::Table;
use nearpeer_topology::analysis::{
    double_sweep_diameter_lower_bound, global_clustering_coefficient, is_connected,
    max_core_number, DegreeStats,
};
use nearpeer_topology::generators::{
    BaConfig, GlpConfig, MapperConfig, TopologySpec, TransitStubConfig, WaxmanConfig,
};
use nearpeer_topology::RouterId;
use serde::{Deserialize, Serialize};

/// Map-validation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappingConfig {
    /// Approximate router count per generated map.
    pub size: usize,
}

impl MappingConfig {
    /// Standard size (comparable to nem-era maps).
    pub fn standard() -> Self {
        Self { size: 4_000 }
    }

    /// Reduced size for `--quick` and tests.
    pub fn quick() -> Self {
        Self { size: 400 }
    }

    /// The families to validate.
    pub fn families(&self) -> Vec<(String, TopologySpec)> {
        let n = self.size.max(60);
        vec![
            (
                "mapper".into(),
                TopologySpec::Mapper(MapperConfig::with_access(n / 3, n / 2)),
            ),
            ("ba".into(), TopologySpec::Ba(BaConfig { n, m: 2 })),
            (
                "glp".into(),
                TopologySpec::Glp(GlpConfig::default_with_n(n)),
            ),
            (
                "waxman".into(),
                TopologySpec::Waxman(WaxmanConfig {
                    n,
                    alpha: 0.1,
                    beta: 0.15,
                }),
            ),
            (
                "transit-stub".into(),
                TopologySpec::TransitStub(TransitStubConfig {
                    transit_domains: 4,
                    transit_size: 8,
                    stubs_per_transit_router: 2,
                    stub_size: (n / 150).max(2),
                    extra_edge_prob: 0.25,
                    access_per_stub: 2,
                }),
            ),
        ]
    }
}

/// One family's statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapPoint {
    /// Family name.
    pub family: String,
    /// Router count.
    pub routers: usize,
    /// Link count.
    pub links: usize,
    /// Degree-1 routers (peer attachment points).
    pub access_routers: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Max degree.
    pub max_degree: usize,
    /// Fitted power-law exponent (if the fit applies).
    pub alpha: Option<f64>,
    /// Maximum k-core.
    pub max_core: usize,
    /// Global clustering coefficient.
    pub clustering: f64,
    /// Diameter lower bound (double sweep).
    pub diameter: u32,
    /// Whether the map is connected.
    pub connected: bool,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappingResult {
    /// Configuration used.
    pub config: MappingConfig,
    /// One point per family.
    pub points: Vec<MapPoint>,
}

impl MappingResult {
    /// Paper-style rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "family".into(),
            "routers".into(),
            "links".into(),
            "access".into(),
            "mean deg".into(),
            "max deg".into(),
            "alpha".into(),
            "k-core".into(),
            "clustering".into(),
            "diam≥".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.family.clone(),
                p.routers.to_string(),
                p.links.to_string(),
                p.access_routers.to_string(),
                format!("{:.2}", p.mean_degree),
                p.max_degree.to_string(),
                p.alpha.map_or("-".into(), |a| format!("{a:.2}")),
                p.max_core.to_string(),
                format!("{:.3}", p.clustering),
                p.diameter.to_string(),
            ]);
        }
        t
    }

    /// Point lookup by family.
    pub fn family(&self, name: &str) -> Option<&MapPoint> {
        self.points.iter().find(|p| p.family == name)
    }
}

/// Validates every family at the configured size.
pub fn run(config: &MappingConfig, seed: u64, threads: usize) -> MappingResult {
    let families = config.families();
    let points = run_parallel(families, threads, move |(name, spec)| {
        let topo = spec.generate(seed).expect("valid family config");
        let stats = DegreeStats::of(&topo);
        MapPoint {
            family: name,
            routers: topo.n_routers(),
            links: topo.n_links(),
            access_routers: stats.n_access,
            mean_degree: stats.mean,
            max_degree: stats.max,
            alpha: stats.power_law_alpha,
            max_core: max_core_number(&topo),
            clustering: global_clustering_coefficient(&topo),
            diameter: double_sweep_diameter_lower_bound(&topo, RouterId(0)),
            connected: is_connected(&topo),
        }
    });
    MappingResult {
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_their_signature_statistics() {
        let result = run(&MappingConfig::quick(), 3, 4);
        assert_eq!(result.points.len(), 5);
        for p in &result.points {
            assert!(p.connected, "{} not connected", p.family);
            assert!(p.routers > 100, "{} too small", p.family);
        }
        let mapper = result.family("mapper").unwrap();
        let waxman = result.family("waxman").unwrap();
        // The nem-like profile must provide plenty of peer attachment
        // points and a heavy tail.
        assert!(mapper.access_routers >= 100);
        assert!(mapper.alpha.is_some());
        assert!(
            mapper.max_degree > waxman.max_degree,
            "mapper hubs ({}) must dwarf waxman's ({})",
            mapper.max_degree,
            waxman.max_degree
        );
        assert_eq!(result.table().n_rows(), 5);
    }
}
