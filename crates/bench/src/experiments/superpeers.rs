//! Experiment W2 — super-peers.
//!
//! The paper is "investigating the opportunity to use some super-peers".
//! This study populates a swarm with super-peer promotion enabled and
//! sweeps the promotion threshold, reporting how much of the join load a
//! super-peer tier could absorb.

use nearpeer_core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer_core::{ManagementServer, PeerId, PeerPath, ServerConfig, SuperPeerConfig};
use nearpeer_metrics::Table;
use nearpeer_probe::{TraceConfig, Tracer};
use nearpeer_routing::RouteOracle;
use nearpeer_topology::generators::{mapper, MapperConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// W2 sweep parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuperPeerStudyConfig {
    /// Promotion thresholds to sweep.
    pub thresholds: Vec<usize>,
    /// Region depth (hops below the landmark).
    pub region_depth: u32,
    /// Peers.
    pub n_peers: usize,
    /// Landmarks.
    pub n_landmarks: usize,
    /// GLP core size.
    pub core_size: usize,
}

impl SuperPeerStudyConfig {
    /// Standard sweep.
    pub fn standard() -> Self {
        Self {
            thresholds: vec![2, 4, 8, 16, 32],
            region_depth: 2,
            n_peers: 1_000,
            n_landmarks: 4,
            core_size: 800,
        }
    }

    /// Reduced sweep for `--quick` and tests.
    pub fn quick() -> Self {
        Self {
            thresholds: vec![2, 8],
            region_depth: 2,
            n_peers: 120,
            n_landmarks: 3,
            core_size: 150,
        }
    }
}

/// One threshold's outcome.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SuperPeerPoint {
    /// Promotion threshold.
    pub threshold: usize,
    /// Super-peers elected.
    pub super_peers: usize,
    /// Regions observed.
    pub regions: usize,
    /// Fraction of peers whose region has a super-peer.
    pub coverage: f64,
    /// Fraction of joins that arrived with a delegate available.
    pub delegated_joins: f64,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuperPeerStudyResult {
    /// Configuration used.
    pub config: SuperPeerStudyConfig,
    /// One point per threshold.
    pub points: Vec<SuperPeerPoint>,
}

impl SuperPeerStudyResult {
    /// Paper-style rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "threshold".into(),
            "super-peers".into(),
            "regions".into(),
            "coverage".into(),
            "delegated joins".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.threshold.to_string(),
                p.super_peers.to_string(),
                p.regions.to_string(),
                format!("{:.1}%", p.coverage * 100.0),
                format!("{:.1}%", p.delegated_joins * 100.0),
            ]);
        }
        t
    }
}

/// Runs the W2 sweep (sequential joins so delegation is observed in join
/// order, like a real deployment).
pub fn run(config: &SuperPeerStudyConfig, seed: u64) -> SuperPeerStudyResult {
    let access = (config.n_peers as f64 * 1.3) as usize + 16;
    let topo = mapper(&MapperConfig::with_access(config.core_size, access), seed)
        .expect("valid mapper config");
    let landmarks = place_landmarks(
        &topo,
        config.n_landmarks,
        PlacementPolicy::DegreeMedium,
        seed,
    );
    // Every trace targets a landmark: precompute those trees.
    let oracle = RouteOracle::with_destinations(&topo, &landmarks);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let mut routers = topo.access_routers();
    let mut rng = StdRng::seed_from_u64(seed);
    routers.shuffle(&mut rng);
    routers.truncate(config.n_peers);

    // Pre-compute every peer's path once; replay per threshold.
    let paths: Vec<PeerPath> = routers
        .iter()
        .enumerate()
        .map(|(i, &attach)| {
            let closest = landmarks
                .iter()
                .filter_map(|&lm| oracle.rtt_us(attach, lm).map(|rtt| (rtt, lm)))
                .min()
                .map(|(_, lm)| lm)
                .expect("connected map");
            let trace = tracer
                .trace(attach, closest, seed ^ i as u64)
                .expect("connected map");
            PeerPath::new(trace.router_path()).expect("traced paths are valid")
        })
        .collect();

    let points = config
        .thresholds
        .iter()
        .map(|&threshold| {
            let mut server = ManagementServer::bootstrap_with_oracle(
                &oracle,
                landmarks.clone(),
                ServerConfig {
                    neighbor_count: 5,
                    cross_landmark_fallback: true,
                    super_peers: Some(SuperPeerConfig {
                        region_depth: config.region_depth,
                        promote_threshold: threshold,
                    }),
                    adaptive_leases: None,
                },
            );
            let mut delegated = 0usize;
            for (i, path) in paths.iter().enumerate() {
                let out = server
                    .register(PeerId(i as u64), path.clone())
                    .expect("unique ids");
                if out.delegate.is_some() {
                    delegated += 1;
                }
            }
            let dir = server.super_peer_directory().expect("enabled");
            SuperPeerPoint {
                threshold,
                super_peers: dir.n_super_peers(),
                regions: dir.n_regions(),
                coverage: dir.delegation_coverage(),
                delegated_joins: delegated as f64 / paths.len().max(1) as f64,
            }
        })
        .collect();
    SuperPeerStudyResult {
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_threshold_fewer_superpeers() {
        let result = run(&SuperPeerStudyConfig::quick(), 3);
        assert_eq!(result.points.len(), 2);
        let low = &result.points[0];
        let high = &result.points[1];
        assert!(low.threshold < high.threshold);
        assert!(
            low.super_peers >= high.super_peers,
            "threshold {} elected {} but {} elected {}",
            low.threshold,
            low.super_peers,
            high.threshold,
            high.super_peers
        );
        assert!(low.coverage >= high.coverage);
        assert!(low.super_peers > 0, "tight threshold must elect someone");
        assert!(result.table().n_rows() == 2);
    }
}
