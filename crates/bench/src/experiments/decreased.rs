//! Experiment W4 — the "decreased" traceroute.
//!
//! The paper: the tool "could be a decreased version of the original one
//! because we are only interested with some routers along the path". This
//! ablation sweeps probe plans and reports what partial paths cost in
//! neighbor quality versus what they save in probes and join time.

use crate::experiments::common::measure_quality;
use crate::runner::run_parallel;
use crate::swarm::{sweep_trace_threads, Swarm, SwarmConfig};
use nearpeer_metrics::Table;
use nearpeer_probe::{ProbePlan, TraceConfig};
use nearpeer_topology::generators::{mapper, MapperConfig};
use serde::{Deserialize, Serialize};

/// W4 parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecreasedConfig {
    /// Peers.
    pub n_peers: usize,
    /// Landmarks.
    pub n_landmarks: usize,
    /// Neighbors per peer.
    pub k: usize,
    /// Seeds per plan.
    pub seeds: u64,
    /// GLP core size.
    pub core_size: usize,
    /// Peers sampled per quality measurement.
    pub sample: Option<usize>,
}

impl DecreasedConfig {
    /// Standard configuration.
    pub fn standard(seeds: u64) -> Self {
        Self {
            n_peers: 800,
            n_landmarks: 4,
            k: 5,
            seeds,
            core_size: 1_000,
            sample: Some(200),
        }
    }

    /// Reduced configuration for `--quick` and tests.
    pub fn quick() -> Self {
        Self {
            n_peers: 120,
            n_landmarks: 3,
            k: 5,
            seeds: 2,
            core_size: 150,
            sample: Some(60),
        }
    }

    /// The probe plans every run sweeps.
    pub fn plans() -> Vec<(String, ProbePlan)> {
        vec![
            ("full".into(), ProbePlan::Full),
            ("stride-2".into(), ProbePlan::Stride(2)),
            ("stride-4".into(), ProbePlan::Stride(4)),
            ("budget-4".into(), ProbePlan::Budget(4)),
            ("budget-2".into(), ProbePlan::Budget(2)),
        ]
    }
}

/// One plan's aggregated outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecreasedPoint {
    /// Plan name.
    pub plan: String,
    /// Mean `D/Dclosest`.
    pub d_ratio_mean: f64,
    /// Mean probes per join.
    pub probes_mean: f64,
    /// Mean traceroute wall-clock per join (ms).
    pub trace_ms_mean: f64,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecreasedResult {
    /// Configuration used.
    pub config: DecreasedConfig,
    /// One point per plan.
    pub points: Vec<DecreasedPoint>,
}

impl DecreasedResult {
    /// Paper-style rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "plan".into(),
            "D/Dclosest".into(),
            "probes/join".into(),
            "trace ms/join".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.plan.clone(),
                format!("{:.3}", p.d_ratio_mean),
                format!("{:.1}", p.probes_mean),
                format!("{:.1}", p.trace_ms_mean),
            ]);
        }
        t
    }
}

/// Runs the W4 ablation.
pub fn run(config: &DecreasedConfig, threads: usize) -> DecreasedResult {
    let plans = DecreasedConfig::plans();
    let jobs: Vec<(usize, u64)> = (0..plans.len())
        .flat_map(|p| (0..config.seeds).map(move |s| (p, s)))
        .collect();
    let cfg = config.clone();
    let plans_for_jobs = plans.clone();
    // run_parallel clamps its workers to the job count; budget the inner
    // tracing pools against what will actually run, not what was asked.
    let sweep_workers = threads.clamp(1, jobs.len().max(1));
    let raw = run_parallel(jobs, threads, move |(plan_idx, seed)| {
        let (_, plan) = plans_for_jobs[plan_idx];
        let access = (cfg.n_peers as f64 * 1.3) as usize + 16;
        let topo = mapper(&MapperConfig::with_access(cfg.core_size, access), seed)
            .expect("valid mapper config");
        let swarm_cfg = SwarmConfig {
            n_peers: cfg.n_peers,
            n_landmarks: cfg.n_landmarks,
            neighbor_count: cfg.k,
            trace: TraceConfig {
                plan,
                ..TraceConfig::default()
            },
            trace_threads: sweep_trace_threads(sweep_workers),
            ..Default::default()
        };
        let mut swarm = Swarm::build(&topo, &swarm_cfg, seed).expect("swarm builds");
        let q = measure_quality(&mut swarm, seed, cfg.sample);
        (
            plan_idx,
            q.d_ratio(),
            swarm.mean_probes(),
            swarm.mean_trace_elapsed_us() / 1_000.0,
        )
    });

    let points = plans
        .iter()
        .enumerate()
        .map(|(idx, (name, _))| {
            let mine: Vec<&(usize, f64, f64, f64)> = raw.iter().filter(|r| r.0 == idx).collect();
            let n = mine.len().max(1) as f64;
            DecreasedPoint {
                plan: name.clone(),
                d_ratio_mean: mine.iter().map(|r| r.1).sum::<f64>() / n,
                probes_mean: mine.iter().map(|r| r.2).sum::<f64>() / n,
                trace_ms_mean: mine.iter().map(|r| r.3).sum::<f64>() / n,
            }
        })
        .collect();
    DecreasedResult {
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decreased_plans_trade_probes_for_quality() {
        let result = run(&DecreasedConfig::quick(), 4);
        assert_eq!(result.points.len(), DecreasedConfig::plans().len());
        let full = result.points.iter().find(|p| p.plan == "full").unwrap();
        let budget2 = result.points.iter().find(|p| p.plan == "budget-2").unwrap();
        assert!(
            budget2.probes_mean < full.probes_mean,
            "budget-2 probes {} !< full {}",
            budget2.probes_mean,
            full.probes_mean
        );
        assert!(
            budget2.trace_ms_mean < full.trace_ms_mean,
            "budget-2 must be faster"
        );
        // Quality may degrade but must stay a valid ratio.
        for p in &result.points {
            assert!(p.d_ratio_mean >= 1.0, "{p:?}");
        }
        assert_eq!(result.table().n_rows(), result.points.len());
    }
}
