//! Experiments C1/C2 — the §2 complexity claims.
//!
//! C1: newcomer insertion is "`O(log n)` — the cost of inserting a new
//! element in an ordered list". C2: the closest-peer query is "`O(1)` —
//! accessing a data in a hash table". We insert populations of synthetic
//! tree-consistent paths into a [`RouterIndex`] and time both operations as
//! the population grows: insertion cost may grow slowly (log-like), query
//! cost must stay flat.

use nearpeer_core::{PeerId, PeerPath, RouterIndex};
use nearpeer_metrics::Table;
use nearpeer_topology::RouterId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::Instant;

/// C1/C2 sweep parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComplexityConfig {
    /// Populations to measure.
    pub populations: Vec<usize>,
    /// Branching factor of the synthetic landmark tree.
    pub branching: u32,
    /// Depth of the synthetic landmark tree (path length).
    pub depth: u32,
    /// Queries timed per population.
    pub queries: usize,
    /// Neighbors per query.
    pub k: usize,
}

impl ComplexityConfig {
    /// The default sweep (1k … 64k peers).
    pub fn standard() -> Self {
        Self {
            populations: vec![1_000, 4_000, 16_000, 64_000],
            branching: 4,
            depth: 10,
            queries: 2_000,
            k: 5,
        }
    }

    /// Reduced sweep for `--quick` and tests.
    pub fn quick() -> Self {
        Self {
            populations: vec![500, 2_000],
            branching: 4,
            depth: 8,
            queries: 200,
            k: 5,
        }
    }
}

/// One measured population size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ComplexityPoint {
    /// Population.
    pub n: usize,
    /// Mean nanoseconds per insertion.
    pub insert_ns: f64,
    /// Mean nanoseconds per query.
    pub query_ns: f64,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComplexityResult {
    /// The configuration used.
    pub config: ComplexityConfig,
    /// One point per population.
    pub points: Vec<ComplexityPoint>,
}

impl ComplexityResult {
    /// Paper-style rows, including the growth factor between consecutive
    /// populations (flat ≈ 1.0 for the query column).
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "peers".into(),
            "insert ns".into(),
            "insert growth".into(),
            "query ns".into(),
            "query growth".into(),
        ]);
        let mut prev: Option<&ComplexityPoint> = None;
        for p in &self.points {
            let (gi, gq) = match prev {
                Some(q) => (p.insert_ns / q.insert_ns, p.query_ns / q.query_ns),
                None => (1.0, 1.0),
            };
            t.row(vec![
                p.n.to_string(),
                format!("{:.0}", p.insert_ns),
                format!("{gi:.2}x"),
                format!("{:.0}", p.query_ns),
                format!("{gq:.2}x"),
            ]);
            prev = Some(p);
        }
        t
    }

    /// Whether the measurements support the claims: per population
    /// quadrupling, query cost must grow far slower than the population
    /// (the factor is configurable because wall-clock noise exists).
    pub fn query_is_flat(&self, max_growth_per_step: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].query_ns <= w[0].query_ns * max_growth_per_step)
    }
}

/// Deterministic synthetic path for peer `i`: a leaf-to-root walk in a
/// `branching`-ary tree of the given depth. Router ids encode (level,
/// prefix) so that peers sharing a prefix share the tree suffix — the same
/// consistency real landmark routes have.
pub fn synthetic_path(i: u64, branching: u32, depth: u32) -> PeerPath {
    let b = branching.max(2) as u64;
    let mut routers = Vec::with_capacity(depth as usize + 1);
    // Access router: unique per peer (top id range, disjoint from the
    // packed (level, prefix) ids below).
    routers.push(RouterId(u32::MAX - i as u32));
    for level in (0..depth).rev() {
        // Peers agreeing on `i mod b^level` share this router — and then
        // share the entire remaining suffix, exactly like tree-consistent
        // landmark routes.
        routers.push(level_router(level, i % b.pow(level)));
    }
    PeerPath::new(routers).expect("synthetic paths are loop-free")
}

fn level_router(level: u32, prefix: u64) -> RouterId {
    // Pack (level, prefix) into 32 bits: 5 bits of level, 27 of prefix.
    RouterId((level << 27) | (prefix as u32 & 0x07FF_FFFF))
}

/// Runs the C1/C2 measurement (single-threaded by design: wall-clock
/// timing must not fight with sibling workers for cores).
pub fn run(config: &ComplexityConfig) -> ComplexityResult {
    let mut points = Vec::with_capacity(config.populations.len());
    for &n in &config.populations {
        let paths: Vec<PeerPath> = (0..n as u64)
            .map(|i| synthetic_path(i, config.branching, config.depth))
            .collect();

        let mut index = RouterIndex::new();
        let start = Instant::now();
        for (i, path) in paths.iter().enumerate() {
            index
                .insert(PeerId(i as u64), path.clone())
                .expect("unique ids");
        }
        let insert_ns = start.elapsed().as_nanos() as f64 / n as f64;

        let exclude = HashSet::new();
        let start = Instant::now();
        let mut sink = 0usize;
        for q in 0..config.queries {
            let path = &paths[(q * 7919) % paths.len()];
            sink += index.query_nearest(path, config.k, &exclude).len();
        }
        let query_ns = start.elapsed().as_nanos() as f64 / config.queries.max(1) as f64;
        assert!(sink > 0, "queries must return results");

        points.push(ComplexityPoint {
            n,
            insert_ns,
            query_ns,
        });
    }
    ComplexityResult {
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_paths_share_suffixes() {
        // Peers 0 and 4 with branching 4: same level-0 root.
        let a = synthetic_path(0, 4, 6);
        let b = synthetic_path(4, 4, 6);
        assert_eq!(a.landmark_router(), b.landmark_router());
        assert_eq!(a.depth(), 6);
        // Distinct access routers.
        assert_ne!(a.attach(), b.attach());
        // dtree exists (they share at least the root).
        assert!(a.dtree(&b).is_some());
    }

    #[test]
    fn deep_trees_unique_leaf_routers() {
        let paths: Vec<PeerPath> = (0..100).map(|i| synthetic_path(i, 4, 8)).collect();
        let mut attach: Vec<RouterId> = paths.iter().map(|p| p.attach()).collect();
        attach.sort();
        attach.dedup();
        assert_eq!(attach.len(), 100);
    }

    #[test]
    fn quick_run_produces_flat_queries() {
        let result = run(&ComplexityConfig::quick());
        assert_eq!(result.points.len(), 2);
        for p in &result.points {
            assert!(p.insert_ns > 0.0);
            assert!(p.query_ns > 0.0);
        }
        // Generous bound: population grew 4x, query time must not.
        assert!(
            result.query_is_flat(3.0),
            "query scaling violated: {:?}",
            result.points
        );
        let t = result.table();
        assert_eq!(t.n_rows(), 2);
    }
}
