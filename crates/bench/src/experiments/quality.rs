//! Experiment F2 — the paper's data figure.
//!
//! Reproduces: x = number of peers ∈ {600 … 1400}, y = `D/Dclosest`
//! (stable, close to 1) and `Drandom/Dclosest` (far above), on a nem-like
//! router map with a few landmarks at medium-degree routers.

use crate::experiments::common::measure_quality;
use crate::runner::run_parallel;
use crate::swarm::{sweep_trace_threads, Swarm, SwarmConfig};
use nearpeer_core::landmarks::PlacementPolicy;
use nearpeer_metrics::{Series, SeriesSet, Summary, Table};
use nearpeer_topology::generators::{mapper, MapperConfig};
use serde::{Deserialize, Serialize};

/// F2 sweep parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityConfig {
    /// The x axis: population sizes.
    pub peer_counts: Vec<usize>,
    /// Landmarks ("few", per the paper).
    pub n_landmarks: usize,
    /// Landmark placement.
    pub placement: PlacementPolicy,
    /// Neighbors per peer.
    pub k: usize,
    /// Seeds per point.
    pub seeds: u64,
    /// GLP core size of the generated map.
    pub core_size: usize,
}

impl QualityConfig {
    /// The paper's sweep (600..1400 peers).
    pub fn paper(seeds: u64) -> Self {
        Self {
            peer_counts: vec![600, 800, 1000, 1200, 1400],
            n_landmarks: 4,
            placement: PlacementPolicy::DegreeMedium,
            k: 5,
            seeds,
            core_size: 1_500,
        }
    }

    /// A reduced sweep for `--quick` runs and tests.
    pub fn quick() -> Self {
        Self {
            peer_counts: vec![100, 200],
            n_landmarks: 3,
            placement: PlacementPolicy::DegreeMedium,
            k: 5,
            seeds: 2,
            core_size: 200,
        }
    }
}

/// One aggregated point of the figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityPoint {
    /// Population size.
    pub n: usize,
    /// Mean `D/Dclosest` across seeds.
    pub d_ratio_mean: f64,
    /// Std-dev of `D/Dclosest` across seeds.
    pub d_ratio_std: f64,
    /// Mean `Drandom/Dclosest` across seeds.
    pub random_ratio_mean: f64,
    /// Std-dev of `Drandom/Dclosest` across seeds.
    pub random_ratio_std: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityResult {
    /// The configuration that produced this result.
    pub config: QualityConfig,
    /// One point per population size.
    pub points: Vec<QualityPoint>,
}

impl QualityResult {
    /// Renders the figure as two named series over n.
    pub fn series(&self) -> SeriesSet {
        let mut set = SeriesSet::new("Number of peers", "ratio to Dclosest");
        let mut rnd = Series::new("Drandom / Dclosest");
        let mut dd = Series::new("D / Dclosest");
        for p in &self.points {
            rnd.push(p.n as f64, p.random_ratio_mean);
            dd.push(p.n as f64, p.d_ratio_mean);
        }
        set.series.push(rnd);
        set.series.push(dd);
        set
    }

    /// Renders the paper-style rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "peers".into(),
            "D/Dclosest".into(),
            "± std".into(),
            "Drandom/Dclosest".into(),
            "± std".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.n.to_string(),
                format!("{:.3}", p.d_ratio_mean),
                format!("{:.3}", p.d_ratio_std),
                format!("{:.3}", p.random_ratio_mean),
                format!("{:.3}", p.random_ratio_std),
            ]);
        }
        t
    }
}

/// Runs the F2 sweep on `threads` workers.
pub fn run(config: &QualityConfig, threads: usize) -> QualityResult {
    let jobs: Vec<(usize, u64)> = config
        .peer_counts
        .iter()
        .flat_map(|&n| (0..config.seeds).map(move |s| (n, s)))
        .collect();
    let cfg = config.clone();
    // run_parallel clamps its workers to the job count; budget the inner
    // tracing pools against what will actually run, not what was asked.
    let sweep_workers = threads.clamp(1, jobs.len().max(1));
    let ratios = run_parallel(jobs, threads, move |(n, seed)| {
        // Fresh map per seed; enough degree-1 routers for the population.
        let access = (n as f64 * 1.3) as usize + 16;
        let topo = mapper(&MapperConfig::with_access(cfg.core_size, access), seed)
            .expect("mapper config is valid");
        let swarm_cfg = SwarmConfig {
            n_peers: n,
            n_landmarks: cfg.n_landmarks,
            placement: cfg.placement,
            neighbor_count: cfg.k,
            // Share the machine between the sweep workers and each
            // build's round-1 tracing pool (no nested oversubscription).
            trace_threads: sweep_trace_threads(sweep_workers),
            ..Default::default()
        };
        let mut swarm = Swarm::build(&topo, &swarm_cfg, seed).expect("swarm builds");
        let q = measure_quality(&mut swarm, seed, None);
        (n, q.d_ratio(), q.random_ratio())
    });

    let points = config
        .peer_counts
        .iter()
        .map(|&n| {
            let d: Vec<f64> = ratios
                .iter()
                .filter(|&&(pn, _, _)| pn == n)
                .map(|&(_, d, _)| d)
                .collect();
            let r: Vec<f64> = ratios
                .iter()
                .filter(|&&(pn, _, _)| pn == n)
                .map(|&(_, _, r)| r)
                .collect();
            let ds = Summary::new(&d).expect("at least one seed");
            let rs = Summary::new(&r).expect("at least one seed");
            QualityPoint {
                n,
                d_ratio_mean: ds.mean(),
                d_ratio_std: ds.std_dev(),
                random_ratio_mean: rs.mean(),
                random_ratio_std: rs.std_dev(),
            }
        })
        .collect();
    QualityResult {
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_paper_shape() {
        let result = run(&QualityConfig::quick(), 4);
        assert_eq!(result.points.len(), 2);
        for p in &result.points {
            assert!(p.d_ratio_mean >= 1.0);
            assert!(
                p.d_ratio_mean < p.random_ratio_mean,
                "n={}: D ratio {} !< random {}",
                p.n,
                p.d_ratio_mean,
                p.random_ratio_mean
            );
        }
        let set = result.series();
        assert_eq!(set.series.len(), 2);
        let csv = set.to_csv();
        assert!(csv.contains("D / Dclosest"));
        let table = result.table();
        assert_eq!(table.n_rows(), 2);
    }
}
