//! Experiment W1 — landmark count and placement.
//!
//! The paper lists "various policies for the management of landmarks,
//! including the number and their placement in the network" as future work.
//! This sweep measures `D/Dclosest` across landmark counts × placement
//! policies on the same map.

use crate::experiments::common::measure_quality;
use crate::runner::run_parallel;
use crate::swarm::{sweep_trace_threads, Swarm, SwarmConfig};
use nearpeer_core::landmarks::PlacementPolicy;
use nearpeer_metrics::{Series, SeriesSet, Table};
use nearpeer_topology::generators::{mapper, MapperConfig};
use serde::{Deserialize, Serialize};

/// W1 sweep parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LandmarkStudyConfig {
    /// Landmark counts to sweep.
    pub landmark_counts: Vec<usize>,
    /// Placement policies to sweep.
    pub policies: Vec<PlacementPolicy>,
    /// Peers.
    pub n_peers: usize,
    /// Neighbors per peer.
    pub k: usize,
    /// Seeds per point.
    pub seeds: u64,
    /// GLP core size.
    pub core_size: usize,
    /// Peers sampled per quality measurement.
    pub sample: Option<usize>,
}

impl LandmarkStudyConfig {
    /// Standard sweep.
    pub fn standard(seeds: u64) -> Self {
        Self {
            landmark_counts: vec![1, 2, 4, 8, 16],
            policies: PlacementPolicy::all().to_vec(),
            n_peers: 800,
            k: 5,
            seeds,
            core_size: 1_000,
            sample: Some(200),
        }
    }

    /// Reduced sweep for `--quick` and tests.
    pub fn quick() -> Self {
        Self {
            landmark_counts: vec![1, 4],
            policies: vec![PlacementPolicy::Random, PlacementPolicy::DegreeMedium],
            n_peers: 120,
            k: 5,
            seeds: 2,
            core_size: 150,
            sample: Some(60),
        }
    }
}

/// One aggregated sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LandmarkStudyPoint {
    /// Landmark count.
    pub n_landmarks: usize,
    /// Placement policy name.
    pub policy: String,
    /// Mean `D/Dclosest` across seeds.
    pub d_ratio_mean: f64,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LandmarkStudyResult {
    /// Configuration used.
    pub config: LandmarkStudyConfig,
    /// All sweep points.
    pub points: Vec<LandmarkStudyPoint>,
}

impl LandmarkStudyResult {
    /// One series per policy over landmark count.
    pub fn series(&self) -> SeriesSet {
        let mut set = SeriesSet::new("landmarks", "D/Dclosest");
        for policy in self.config.policies.iter().map(|p| p.name()) {
            let mut s = Series::new(policy);
            for p in self.points.iter().filter(|p| p.policy == policy) {
                s.push(p.n_landmarks as f64, p.d_ratio_mean);
            }
            set.series.push(s);
        }
        set
    }

    /// Rows: landmark count × policy.
    pub fn table(&self) -> Table {
        let mut header = vec!["landmarks".to_string()];
        header.extend(self.config.policies.iter().map(|p| p.name().to_string()));
        let mut t = Table::new(header);
        for &n in &self.config.landmark_counts {
            let mut row = vec![n.to_string()];
            for policy in &self.config.policies {
                let v = self
                    .points
                    .iter()
                    .find(|p| p.n_landmarks == n && p.policy == policy.name())
                    .map(|p| format!("{:.3}", p.d_ratio_mean))
                    .unwrap_or_default();
                row.push(v);
            }
            t.row(row);
        }
        t
    }
}

/// Runs the W1 sweep.
pub fn run(config: &LandmarkStudyConfig, threads: usize) -> LandmarkStudyResult {
    let jobs: Vec<(usize, PlacementPolicy, u64)> = config
        .landmark_counts
        .iter()
        .flat_map(|&n| {
            config
                .policies
                .iter()
                .flat_map(move |&p| (0..config.seeds).map(move |s| (n, p, s)))
        })
        .collect();
    let cfg = config.clone();
    // run_parallel clamps its workers to the job count; budget the inner
    // tracing pools against what will actually run, not what was asked.
    let sweep_workers = threads.clamp(1, jobs.len().max(1));
    let results = run_parallel(jobs, threads, move |(n_landmarks, policy, seed)| {
        let access = (cfg.n_peers as f64 * 1.3) as usize + 16;
        let topo = mapper(&MapperConfig::with_access(cfg.core_size, access), seed)
            .expect("valid mapper config");
        let swarm_cfg = SwarmConfig {
            n_peers: cfg.n_peers,
            n_landmarks,
            placement: policy,
            neighbor_count: cfg.k,
            trace_threads: sweep_trace_threads(sweep_workers),
            ..Default::default()
        };
        let mut swarm = Swarm::build(&topo, &swarm_cfg, seed).expect("swarm builds");
        let q = measure_quality(&mut swarm, seed, cfg.sample);
        (n_landmarks, policy.name().to_string(), q.d_ratio())
    });

    let mut points = Vec::new();
    for &n in &config.landmark_counts {
        for policy in &config.policies {
            let rs: Vec<f64> = results
                .iter()
                .filter(|(pn, pp, _)| *pn == n && pp == policy.name())
                .map(|&(_, _, r)| r)
                .collect();
            if rs.is_empty() {
                continue;
            }
            points.push(LandmarkStudyPoint {
                n_landmarks: n,
                policy: policy.name().to_string(),
                d_ratio_mean: rs.iter().sum::<f64>() / rs.len() as f64,
            });
        }
    }
    LandmarkStudyResult {
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_grid() {
        let result = run(&LandmarkStudyConfig::quick(), 4);
        assert_eq!(result.points.len(), 2 * 2);
        for p in &result.points {
            assert!(p.d_ratio_mean >= 1.0, "{p:?}");
            assert!(p.d_ratio_mean < 10.0, "{p:?}");
        }
        assert_eq!(result.table().n_rows(), 2);
        assert_eq!(result.series().series.len(), 2);
    }
}
