//! Experiment implementations (one module per DESIGN.md §6 entry).

pub mod churn;
pub mod common;
pub mod complexity;
pub mod convergence;
pub mod decreased;
pub mod dtree;
pub mod federation;
pub mod landmark_policies;
pub mod mapping;
pub mod quality;
pub mod restart;
pub mod setup_delay;
pub mod subs;
pub mod superpeers;
