//! Federation soak: replay a region-biased churn + mobility trace
//! through a multi-region [`Federation`] at populations where the
//! single-server soak already runs — but with peers **moving between
//! regions**, driving the cross-region handover path, the forwarding
//! tombstones it plants, and the federation-aware expiry that tells
//! "peer moved" apart from "peer silent".
//!
//! Invariants the soak (and its CI gate) checks:
//!
//! * population conservation — every fresh join is accounted for by a
//!   graceful leave, a lease expiry, or the final population (handover
//!   moves a peer, it never duplicates or destroys one);
//! * no leaked leases — after the trace drains, sweeping until the
//!   tombstone count reaches zero must terminate within one lease length
//!   (a stuck tombstone would resurrect "moved" as "registered forever");
//! * moved ≠ silent — swept tombstones are reported separately from
//!   silent expiries, never mixed.

use crate::federation::{synthetic_federation, synthetic_move_landmark};
use crate::swarm::SyntheticJoins;
use nearpeer_core::federation::{Federation, FederationConfig, RegionId};
use nearpeer_core::{AdaptiveLeaseConfig, PeerId, PeerPath, ServerConfig};
use nearpeer_workloads::{
    ArrivalProcess, FederatedChurnConfig, FederatedEventKind, FederatedTrace,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Federation soak parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederationSoakConfig {
    /// Peers per trace cycle.
    pub peers: usize,
    /// Regions (the federation partitions `n_landmarks` round-robin).
    pub regions: usize,
    /// Landmarks across the whole federation.
    pub n_landmarks: usize,
    /// Full trace replays (≥ 2 drives the rejoin/comeback paths).
    pub cycles: usize,
    /// Mean session length, seconds (exponential).
    pub mean_lifetime_secs: f64,
    /// Join rate, per second (Poisson).
    pub arrival_rate: f64,
    /// Fraction of departures that fail silently.
    pub failure_fraction: f64,
    /// Home-region skew (see
    /// [`FederatedChurnConfig::home_skew`]).
    pub home_skew: f64,
    /// Fraction of peers that move during their session.
    pub mobile_fraction: f64,
    /// Mean dwell between moves, seconds.
    pub mean_dwell_secs: f64,
    /// Probability a move returns home.
    pub return_home_bias: f64,
    /// Heartbeat-epoch windows per cycle.
    pub epochs_per_cycle: usize,
    /// Expiry sweep cadence, epochs.
    pub expire_every: u64,
    /// Lease length (and tombstone retention), epochs.
    pub max_age: u64,
    /// Heartbeat stride (must be < `max_age`).
    pub heartbeat_every: u64,
    /// Query fan-out (`None` = consult every region).
    pub fanout: Option<usize>,
    /// Adaptive lease lengths for the regional servers.
    pub adaptive: Option<AdaptiveLeaseConfig>,
}

impl FederationSoakConfig {
    /// The CI smoke shape: 4 regions × 25k peers with mobility.
    pub fn smoke() -> Self {
        Self {
            peers: 25_000,
            regions: 4,
            n_landmarks: 8,
            cycles: 1,
            mean_lifetime_secs: 60.0,
            arrival_rate: 250.0,
            failure_fraction: 0.3,
            home_skew: 0.4,
            mobile_fraction: 0.2,
            mean_dwell_secs: 30.0,
            return_home_bias: 0.5,
            epochs_per_cycle: 128,
            expire_every: 4,
            max_age: 8,
            heartbeat_every: 4,
            fanout: None,
            adaptive: None,
        }
    }

    /// A reduced shape for unit tests.
    pub fn quick() -> Self {
        Self {
            peers: 400,
            regions: 3,
            n_landmarks: 6,
            cycles: 2,
            mean_lifetime_secs: 30.0,
            arrival_rate: 50.0,
            failure_fraction: 0.4,
            home_skew: 0.5,
            mobile_fraction: 0.5,
            mean_dwell_secs: 10.0,
            return_home_bias: 0.5,
            epochs_per_cycle: 24,
            expire_every: 3,
            max_age: 5,
            heartbeat_every: 2,
            fanout: None,
            adaptive: None,
        }
    }
}

/// Event dispositions accumulated over a federated soak replay.
/// Deterministic per `(config, seed)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FederationSoakCounters {
    /// Fresh registrations.
    pub joins: u64,
    /// Same-region rejoins renewed through the register path.
    pub renewals: u64,
    /// Rejoins that found the peer's lease still live in **another**
    /// region — replayed as handovers back to the home region.
    pub comeback_handovers: u64,
    /// Mobility handovers (trace `Move` events applied).
    pub moves: u64,
    /// The subset of applied events that crossed regions (tombstones
    /// planted).
    pub cross_region_moves: u64,
    /// Move events skipped because the peer's lease had already lapsed.
    pub skipped_moves: u64,
    /// Join items the federation rejected (should stay 0).
    pub rejected: u64,
    /// Graceful departures that removed a registration.
    pub leaves: u64,
    /// Silent failures (no server interaction).
    pub fails: u64,
    /// Leases expired silently by the sweeps.
    pub expired: u64,
    /// Forwarding tombstones retired by the sweeps.
    pub moved_swept: u64,
    /// Heartbeat renewals.
    pub heartbeats: u64,
    /// Heartbeat epochs driven.
    pub epochs: u64,
    /// Trace events applied.
    pub events: u64,
}

/// Federated soak output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederationSoakResult {
    /// Configuration used.
    pub config: FederationSoakConfig,
    /// Event dispositions.
    pub counters: FederationSoakCounters,
    /// Largest registered population observed at an epoch boundary.
    pub peak_population: usize,
    /// Registered peers left after the replay + drain.
    pub final_population: usize,
    /// Per-region final populations (the home skew made visible).
    pub final_per_region: Vec<usize>,
    /// Tombstones still held after the final drain (must be 0 — the
    /// "no leaked leases" gate).
    pub final_tombstones: usize,
    /// Wall-clock seconds for the replay (excluding trace generation).
    pub elapsed_secs: f64,
    /// Trace events applied per second of replay.
    pub events_per_sec: f64,
}

/// Runs a federated soak and hands back the federation for state
/// inspection (the determinism suite compares directories across runs).
pub fn run_federation_soak_with_state(
    cfg: &FederationSoakConfig,
    seed: u64,
) -> (FederationSoakResult, Federation) {
    assert!(cfg.expire_every >= 1, "expiry cadence must be >= 1 epoch");
    assert!(
        cfg.heartbeat_every >= 1 && cfg.heartbeat_every < cfg.max_age,
        "live peers must heartbeat within their lease"
    );
    let gen = SyntheticJoins::new(cfg.n_landmarks);
    let mut fed = synthetic_federation(
        &gen,
        cfg.regions,
        FederationConfig {
            fanout: cfg.fanout,
            server: ServerConfig {
                neighbor_count: 5,
                cross_landmark_fallback: true,
                super_peers: None,
                adaptive_leases: cfg.adaptive,
            },
        },
    )
    .expect("soak federation config is valid");
    let trace = FederatedTrace::generate(
        &FederatedChurnConfig {
            peers: cfg.peers,
            regions: cfg.regions,
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: cfg.arrival_rate,
            },
            mean_lifetime_secs: Some(cfg.mean_lifetime_secs),
            failure_fraction: cfg.failure_fraction,
            home_skew: cfg.home_skew,
            mobile_fraction: cfg.mobile_fraction,
            mean_dwell_secs: cfg.mean_dwell_secs,
            return_home_bias: cfg.return_home_bias,
        },
        seed,
    );
    let width = (trace.span_us() / cfg.epochs_per_cycle.max(1) as u64).max(1);
    let mut counters = FederationSoakCounters::default();
    let mut peak = 0usize;
    // Trace-driven bookkeeping, identical across runs: nominal liveness,
    // each peer's current region, and heartbeat stride groups.
    let mut alive = vec![false; cfg.peers];
    let mut current: Vec<u32> = vec![0; cfg.peers];
    let mut grouped = vec![false; cfg.peers];
    let mut groups: Vec<Vec<usize>> = (0..cfg.heartbeat_every).map(|_| Vec::new()).collect();
    let t0 = Instant::now();
    for _cycle in 0..cfg.cycles {
        for (_idx, events) in trace.windows(width) {
            fed.advance_epoch();
            counters.epochs += 1;
            counters.events += events.len() as u64;
            let mut joins: Vec<(PeerId, PeerPath)> = Vec::new();
            let mut pending_join = vec![false; cfg.peers];
            let mut leaves_by_region: Vec<Vec<PeerId>> =
                (0..cfg.regions).map(|_| Vec::new()).collect();
            // Joins are batched for throughput, but a later event in the
            // same window may depend on the join having been applied (a
            // move whose dwell is shorter than the window) — flush the
            // pending batch before such an event so the replay respects
            // the trace's time order.
            fn flush_joins(
                fed: &mut Federation,
                counters: &mut FederationSoakCounters,
                joins: &mut Vec<(PeerId, PeerPath)>,
                pending_join: &mut [bool],
            ) {
                let absorbed = fed.register_batch(std::mem::take(joins));
                counters.joins += absorbed.joined as u64;
                counters.renewals += absorbed.renewed as u64;
                counters.rejected += absorbed.rejected as u64;
                pending_join.fill(false);
            }
            for ev in events {
                let peer = PeerId(ev.peer as u64);
                match ev.kind {
                    FederatedEventKind::Join => {
                        let home = RegionId(trace.home[ev.peer]);
                        let lm = synthetic_move_landmark(&fed, ev.peer as u64, home);
                        match fed.region_of_peer(peer) {
                            // A comeback: the previous session's lease is
                            // still live in another region — the rejoin
                            // *is* a handover home.
                            Some(at) if at != home => {
                                fed.handover(peer, gen.path_to(ev.peer as u64, lm))
                                    .expect("live peer, valid landmark");
                                counters.comeback_handovers += 1;
                            }
                            // Fresh join or same-region renewal: batched.
                            _ => {
                                joins.push(gen.join_to(ev.peer as u64, lm));
                                pending_join[ev.peer] = true;
                            }
                        }
                        alive[ev.peer] = true;
                        current[ev.peer] = home.0;
                        if !grouped[ev.peer] {
                            grouped[ev.peer] = true;
                            groups[ev.peer % cfg.heartbeat_every as usize].push(ev.peer);
                        }
                    }
                    FederatedEventKind::Move { to_region } => {
                        if pending_join[ev.peer] {
                            flush_joins(&mut fed, &mut counters, &mut joins, &mut pending_join);
                        }
                        let to = RegionId(to_region);
                        if fed.region_of_peer(peer).is_some() {
                            let crossed = fed.region_of_peer(peer) != Some(to);
                            let lm = synthetic_move_landmark(&fed, ev.peer as u64, to);
                            fed.handover(peer, gen.path_to(ev.peer as u64, lm))
                                .expect("live peer, valid landmark");
                            counters.moves += 1;
                            if crossed {
                                counters.cross_region_moves += 1;
                            }
                            current[ev.peer] = to_region;
                        } else {
                            // The lease already lapsed mid-session: the
                            // peer keeps heartbeating from wherever it
                            // last was, so the region hint must not move.
                            counters.skipped_moves += 1;
                        }
                    }
                    FederatedEventKind::Leave => {
                        alive[ev.peer] = false;
                        leaves_by_region[current[ev.peer] as usize].push(peer);
                    }
                    FederatedEventKind::Fail => {
                        alive[ev.peer] = false;
                        counters.fails += 1;
                    }
                }
            }
            flush_joins(&mut fed, &mut counters, &mut joins, &mut pending_join);
            for (r, leaves) in leaves_by_region.iter().enumerate() {
                if !leaves.is_empty() {
                    counters.leaves += fed
                        .region_mut(RegionId(r as u32))
                        .server_mut()
                        .leave_batch(leaves) as u64;
                }
            }
            // Heartbeat round: this epoch's stride group of live peers
            // renews in its current region (before the sweep).
            let phase = (counters.epochs % cfg.heartbeat_every) as usize;
            let mut beats_by_region: Vec<Vec<PeerId>> =
                (0..cfg.regions).map(|_| Vec::new()).collect();
            for &p in &groups[phase] {
                if alive[p] {
                    beats_by_region[current[p] as usize].push(PeerId(p as u64));
                }
            }
            for (r, beats) in beats_by_region.iter().enumerate() {
                if !beats.is_empty() {
                    counters.heartbeats += fed
                        .region_mut(RegionId(r as u32))
                        .server_mut()
                        .renew_batch(beats) as u64;
                }
            }
            if counters.epochs % cfg.expire_every == 0 {
                let sweep = fed.expire_stale(cfg.max_age);
                counters.expired += sweep.expired.len() as u64;
                counters.moved_swept += sweep.moved_swept.len() as u64;
            }
            peak = peak.max(fed.peer_count());
        }
    }
    // Drain: after the trace ends, nobody renews — one lease length of
    // epochs retires every remaining tombstone (and the still-leased
    // silent failures). Leaked tombstones would survive this and fail the
    // gate.
    for _ in 0..=(cfg.max_age + cfg.expire_every) {
        fed.advance_epoch();
    }
    let sweep = fed.expire_stale(cfg.max_age);
    counters.expired += sweep.expired.len() as u64;
    counters.moved_swept += sweep.moved_swept.len() as u64;
    let elapsed = t0.elapsed();
    let result = FederationSoakResult {
        config: cfg.clone(),
        counters,
        peak_population: peak,
        final_population: fed.peer_count(),
        final_per_region: fed.regions().iter().map(|r| r.peer_count()).collect(),
        final_tombstones: fed.tombstone_count(),
        elapsed_secs: elapsed.as_secs_f64(),
        events_per_sec: counters.events as f64 / elapsed.as_secs_f64().max(1e-9),
    };
    (result, fed)
}

/// Runs a federated soak (see [`FederationSoakConfig`]).
pub fn run_federation_soak(cfg: &FederationSoakConfig, seed: u64) -> FederationSoakResult {
    run_federation_soak_with_state(cfg, seed).0
}

/// The soak's pass/fail gates, shared by the binary and CI.
pub fn check_federation_soak(r: &FederationSoakResult) -> Result<(), String> {
    let c = r.counters;
    if c.rejected != 0 {
        return Err(format!("{} join items rejected", c.rejected));
    }
    if c.joins != c.leaves + c.expired + r.final_population as u64 {
        return Err(format!(
            "population leak: {} joins vs {} leaves + {} expired + {} residual",
            c.joins, c.leaves, c.expired, r.final_population
        ));
    }
    if r.final_tombstones != 0 {
        return Err(format!(
            "{} forwarding tombstones leaked past the drain",
            r.final_tombstones
        ));
    }
    // Every swept tombstone traces back to a cross-region move (a peer
    // returning to a region clears its old tombstone *early*, so this is
    // an upper bound, with the leak check above closing the other side).
    if c.moved_swept > c.cross_region_moves + c.comeback_handovers {
        return Err(format!(
            "tombstone accounting: {} swept vs {} cross-region moves + {} comebacks",
            c.moved_swept, c.cross_region_moves, c.comeback_handovers
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_conserves_population_and_sweeps_every_tombstone() {
        let cfg = FederationSoakConfig::quick();
        let (result, fed) = run_federation_soak_with_state(&cfg, 11);
        check_federation_soak(&result).expect("gates hold");
        let c = result.counters;
        assert_eq!(
            c.events,
            trace_events(&cfg) * cfg.cycles as u64,
            "every event applied exactly once per cycle"
        );
        assert!(c.moves > 0, "a mobile half must move");
        assert!(c.cross_region_moves > 0, "moves must cross regions");
        assert!(c.renewals + c.comeback_handovers > 0, "cycle 2 rejoins");
        assert!(c.heartbeats > 0);
        assert!(c.expired > 0, "silent failures must lapse");
        assert_eq!(fed.peer_count(), result.final_population);
        assert_eq!(fed.tombstone_count(), 0);
        assert_eq!(
            result.final_per_region.iter().sum::<usize>(),
            result.final_population
        );
        assert!(c.moved_swept > 0, "some grace records must age out");
        // The federation's own handover counter saw every applied move.
        assert_eq!(
            fed.stats().handovers,
            c.moves + c.comeback_handovers,
            "front-door handovers"
        );
    }

    fn trace_events(cfg: &FederationSoakConfig) -> u64 {
        let trace = FederatedTrace::generate(
            &FederatedChurnConfig {
                peers: cfg.peers,
                regions: cfg.regions,
                arrivals: ArrivalProcess::Poisson {
                    rate_per_sec: cfg.arrival_rate,
                },
                mean_lifetime_secs: Some(cfg.mean_lifetime_secs),
                failure_fraction: cfg.failure_fraction,
                home_skew: cfg.home_skew,
                mobile_fraction: cfg.mobile_fraction,
                mean_dwell_secs: cfg.mean_dwell_secs,
                return_home_bias: cfg.return_home_bias,
            },
            11,
        );
        trace.events.len() as u64
    }

    #[test]
    fn adaptive_soak_holds_the_same_invariants() {
        let cfg = FederationSoakConfig {
            adaptive: Some(AdaptiveLeaseConfig::default()),
            ..FederationSoakConfig::quick()
        };
        let result = run_federation_soak(&cfg, 7);
        check_federation_soak(&result).expect("gates hold with adaptive leases");
        assert!(result.counters.expired > 0);
    }

    #[test]
    fn limited_fanout_still_conserves() {
        let cfg = FederationSoakConfig {
            fanout: Some(1),
            ..FederationSoakConfig::quick()
        };
        let result = run_federation_soak(&cfg, 5);
        check_federation_soak(&result).expect("gates hold under fanout 1");
    }
}
