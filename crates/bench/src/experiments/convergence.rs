//! Experiment C3 — "quicker": measurement effort until a newcomer can pick
//! good neighbors.
//!
//! The paper's motivation (§1): coordinate systems need substantial
//! measurement before they are accurate, while the landmark path-tree join
//! needs one (cheap) traceroute plus one server round trip. This experiment
//! races three mechanisms on the same swarm and reports *neighbor quality
//! as a function of probes spent per peer*:
//!
//! * path-tree: probes = landmark pings + traceroute probes (one point);
//! * GNP: probes = one RTT per landmark plus the embedding (one point);
//! * Vivaldi: a curve — quality after each gossip round.

use crate::swarm::{Swarm, SwarmConfig};
use nearpeer_coord::{Coord, GnpConfig, GnpLandmarkSystem, VivaldiConfig, VivaldiNode};
use nearpeer_core::PeerId;
use nearpeer_metrics::{Series, SeriesSet, Table};
use nearpeer_routing::bfs_distances;
use nearpeer_topology::generators::{mapper, MapperConfig};
use nearpeer_topology::{RouterId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// C3 parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceConfig {
    /// Peers in the swarm.
    pub n_peers: usize,
    /// Landmarks.
    pub n_landmarks: usize,
    /// Neighbors per peer.
    pub k: usize,
    /// Vivaldi gossip rounds measured (cumulative probes = round index).
    pub vivaldi_rounds: Vec<u32>,
    /// Peers sampled when pricing a neighbor policy (bounds BFS cost).
    pub sample: usize,
    /// GLP core size of the map.
    pub core_size: usize,
}

impl ConvergenceConfig {
    /// Standard configuration.
    pub fn standard() -> Self {
        Self {
            n_peers: 400,
            n_landmarks: 4,
            k: 5,
            vivaldi_rounds: vec![1, 2, 4, 8, 16, 32, 64, 128],
            sample: 120,
            core_size: 600,
        }
    }

    /// Reduced configuration for `--quick` and tests.
    pub fn quick() -> Self {
        Self {
            n_peers: 80,
            n_landmarks: 3,
            k: 4,
            vivaldi_rounds: vec![1, 4, 16],
            sample: 30,
            core_size: 120,
        }
    }
}

/// One mechanism's quality at a probe budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Mechanism name.
    pub mechanism: String,
    /// Mean probes spent per peer to reach this state.
    pub probes_per_peer: f64,
    /// `D/Dclosest` of the neighbor sets picked in this state.
    pub d_ratio: f64,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceResult {
    /// Configuration used.
    pub config: ConvergenceConfig,
    /// All measured points (path-tree and GNP once, Vivaldi per round).
    pub points: Vec<ConvergencePoint>,
}

impl ConvergenceResult {
    /// Probe-budget → quality series per mechanism.
    pub fn series(&self) -> SeriesSet {
        let mut set = SeriesSet::new("probes per peer", "D/Dclosest");
        for mech in ["path-tree", "gnp", "vivaldi"] {
            let mut s = Series::new(mech);
            for p in self.points.iter().filter(|p| p.mechanism == mech) {
                s.push(p.probes_per_peer, p.d_ratio);
            }
            if !s.points.is_empty() {
                set.series.push(s);
            }
        }
        set
    }

    /// Paper-style rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "mechanism".into(),
            "probes/peer".into(),
            "D/Dclosest".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.mechanism.clone(),
                format!("{:.1}", p.probes_per_peer),
                format!("{:.3}", p.d_ratio),
            ]);
        }
        t
    }

    /// The path-tree point (for assertions and summaries).
    pub fn path_tree_point(&self) -> Option<&ConvergencePoint> {
        self.points.iter().find(|p| p.mechanism == "path-tree")
    }

    /// Vivaldi's probes needed to reach (or beat) the given quality;
    /// `None` if it never does within the measured rounds.
    pub fn vivaldi_probes_to_reach(&self, d_ratio: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.mechanism == "vivaldi" && p.d_ratio <= d_ratio)
            .map(|p| p.probes_per_peer)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.min(x))))
    }
}

/// Prices a neighbor-choice function against the brute-force optimum over
/// a fixed sample of peers. Takes the swarm's pieces separately so callers
/// can keep a mutable borrow of the server inside `pick`.
fn quality_of_parts<F>(
    topo: &Topology,
    peers: &[PeerId],
    attachment: &HashMap<PeerId, RouterId>,
    sample: &[PeerId],
    k: usize,
    mut pick: F,
) -> f64
where
    F: FnMut(PeerId) -> Vec<PeerId>,
{
    let mut sum_d = 0u64;
    let mut sum_closest = 0u64;
    for &peer in sample {
        let dist = bfs_distances(topo, attachment[&peer]);
        let cost = |r: RouterId| dist[r.index()] as u64;
        let picked = pick(peer);
        sum_d += picked
            .iter()
            .take(k)
            .map(|p| cost(attachment[p]))
            .sum::<u64>();
        let mut all: Vec<u64> = peers
            .iter()
            .filter(|&&p| p != peer)
            .map(|p| cost(attachment[p]))
            .collect();
        all.sort_unstable();
        sum_closest += all.iter().take(k).sum::<u64>();
    }
    sum_d as f64 / sum_closest.max(1) as f64
}

fn nearest_by_coord(coords: &HashMap<PeerId, Coord>, peer: PeerId, k: usize) -> Vec<PeerId> {
    let Some(me) = coords.get(&peer) else {
        return Vec::new();
    };
    let mut ranked: Vec<(f64, PeerId)> = coords
        .iter()
        .filter(|&(&p, _)| p != peer)
        .map(|(&p, c)| (me.distance(c), p))
        .collect();
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
    ranked.truncate(k);
    ranked.into_iter().map(|(_, p)| p).collect()
}

/// Runs the convergence race.
pub fn run(config: &ConvergenceConfig, seed: u64) -> ConvergenceResult {
    let access = (config.n_peers as f64 * 1.3) as usize + 16;
    let topology = mapper(&MapperConfig::with_access(config.core_size, access), seed)
        .expect("mapper config is valid");
    let swarm_cfg = SwarmConfig {
        n_peers: config.n_peers,
        n_landmarks: config.n_landmarks,
        neighbor_count: config.k,
        ..Default::default()
    };
    let mut swarm = Swarm::build(&topology, &swarm_cfg, seed).expect("swarm builds");
    let topo = swarm.topo;
    // The coordinate baselines ping the landmarks from everywhere: the
    // swarm's oracle already has those trees in its arena.
    let oracle = &swarm.oracle;

    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0117);
    let mut sample = swarm.peers.clone();
    sample.shuffle(&mut rng);
    sample.truncate(config.sample.min(sample.len()));

    let mut points = Vec::new();

    // --- Path-tree: probes = landmark pings + traceroute probes. ---
    let probes_pt = config.n_landmarks as f64 + swarm.mean_probes();
    let peers = swarm.peers.clone();
    let attachment = swarm.attachment.clone();
    let k = config.k;
    let server = &mut swarm.server;
    let d_pt = quality_of_parts(topo, &peers, &attachment, &sample, k, |peer| {
        server
            .neighbors_of(peer, k)
            .map(|ns| ns.into_iter().map(|n| n.peer).collect())
            .unwrap_or_default()
    });
    points.push(ConvergencePoint {
        mechanism: "path-tree".into(),
        probes_per_peer: probes_pt,
        d_ratio: d_pt,
    });

    // --- GNP: landmark fit + one probe per landmark per peer. ---
    let lm_routers = swarm.landmarks.clone();
    let n_lm = lm_routers.len();
    let lm_rtt: Vec<Vec<f64>> = lm_routers
        .iter()
        .map(|&a| {
            lm_routers
                .iter()
                .map(|&b| oracle.rtt_us(a, b).unwrap_or(0) as f64)
                .collect()
        })
        .collect();
    let gnp_cfg = GnpConfig {
        dimensions: n_lm.saturating_sub(1).clamp(2, 3),
        ..Default::default()
    };
    if let Some(gnp) = GnpLandmarkSystem::fit(&lm_rtt, &gnp_cfg) {
        let coords: HashMap<PeerId, Coord> = peers
            .iter()
            .map(|&p| {
                let rtts: Vec<f64> = lm_routers
                    .iter()
                    .map(|&lm| oracle.rtt_us(attachment[&p], lm).unwrap_or(0) as f64)
                    .collect();
                let (coord, _) = gnp.embed_host(&rtts).expect("length matches");
                (p, coord)
            })
            .collect();
        let d_gnp = quality_of_parts(topo, &peers, &attachment, &sample, k, |peer| {
            nearest_by_coord(&coords, peer, k)
        });
        points.push(ConvergencePoint {
            mechanism: "gnp".into(),
            probes_per_peer: n_lm as f64,
            d_ratio: d_gnp,
        });
    }

    // --- Vivaldi: gossip rounds, measuring at the configured rounds. ---
    let vcfg = VivaldiConfig::default();
    let mut nodes: HashMap<PeerId, VivaldiNode> = peers
        .iter()
        .map(|&p| (p, VivaldiNode::new(&vcfg, &mut rng)))
        .collect();
    let max_round = *config.vivaldi_rounds.iter().max().unwrap_or(&0);
    for round in 1..=max_round {
        for &p in &peers {
            let q = peers[rng.gen_range(0..peers.len())];
            if p == q {
                continue;
            }
            let (qc, qe) = {
                let n = &nodes[&q];
                (n.coord().clone(), n.error())
            };
            let sample_rtt = oracle
                .rtt_us(attachment[&p], attachment[&q])
                .unwrap_or(u64::MAX / 2) as f64;
            nodes
                .get_mut(&p)
                .expect("all peers present")
                .observe(&qc, qe, sample_rtt, &mut rng);
        }
        if config.vivaldi_rounds.contains(&round) {
            let coords: HashMap<PeerId, Coord> =
                nodes.iter().map(|(&p, n)| (p, n.coord().clone())).collect();
            let d_viv = quality_of_parts(topo, &peers, &attachment, &sample, k, |peer| {
                nearest_by_coord(&coords, peer, k)
            });
            points.push(ConvergencePoint {
                mechanism: "vivaldi".into(),
                probes_per_peer: round as f64,
                d_ratio: d_viv,
            });
        }
    }

    ConvergenceResult {
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_tree_is_quicker_than_early_vivaldi() {
        let result = run(&ConvergenceConfig::quick(), 7);
        let pt = result.path_tree_point().expect("path-tree measured");
        assert!(pt.d_ratio >= 1.0);
        // Early Vivaldi (round 1) must be clearly worse than the path-tree
        // answer — that is the paper's whole point.
        let viv_round1 = result
            .points
            .iter()
            .find(|p| p.mechanism == "vivaldi" && p.probes_per_peer == 1.0)
            .expect("vivaldi round 1 measured");
        assert!(
            viv_round1.d_ratio > pt.d_ratio,
            "vivaldi@1 {} not worse than path-tree {}",
            viv_round1.d_ratio,
            pt.d_ratio
        );
        // Table and series render.
        assert!(result.table().n_rows() >= 3);
        assert!(result.series().series.len() >= 2);
    }
}
