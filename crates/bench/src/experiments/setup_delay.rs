//! Experiment A2 — end-to-end streaming setup delay.
//!
//! The motivating claim of §1: a shorter path to good neighbors shortens
//! the live-streaming setup delay. This experiment builds a mesh overlay
//! whose neighbor sets come either from the path-tree server or from random
//! selection, streams chunks through `nearpeer-sim` over real topology
//! latencies, and compares setup delay and continuity.

use crate::swarm::{Swarm, SwarmConfig};
use nearpeer_metrics::{Summary, Table};
use nearpeer_overlay::{OverlayMsg, SourceActor, StreamPeer, StreamStats};
use nearpeer_sim::links::TopologyLinks;
use nearpeer_sim::{NodeId, SimTime, Simulator};
use nearpeer_topology::generators::{mapper, MapperConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// A2 parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetupDelayConfig {
    /// Streaming peers.
    pub n_peers: usize,
    /// Landmarks.
    pub n_landmarks: usize,
    /// Mesh neighbors per peer.
    pub k: usize,
    /// Chunks in the stream.
    pub chunks: u64,
    /// Chunk interval, microseconds.
    pub chunk_interval_us: u64,
    /// Chunks buffered before playback starts.
    pub startup_chunks: usize,
    /// GLP core size.
    pub core_size: usize,
}

impl SetupDelayConfig {
    /// Standard configuration.
    pub fn standard() -> Self {
        Self {
            n_peers: 80,
            n_landmarks: 4,
            k: 4,
            chunks: 150,
            chunk_interval_us: 20_000,
            startup_chunks: 4,
            core_size: 400,
        }
    }

    /// Reduced configuration for `--quick` and tests.
    pub fn quick() -> Self {
        Self {
            n_peers: 24,
            n_landmarks: 3,
            k: 3,
            chunks: 60,
            chunk_interval_us: 20_000,
            startup_chunks: 3,
            core_size: 120,
        }
    }
}

/// One policy's aggregated streaming outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetupDelayPoint {
    /// Neighbor policy name.
    pub policy: String,
    /// Mean setup delay (ms) over peers that started playback.
    pub setup_delay_ms_mean: f64,
    /// 95th-percentile setup delay (ms).
    pub setup_delay_ms_p95: f64,
    /// Mean playback continuity.
    pub continuity_mean: f64,
    /// Peers that started playback.
    pub started: usize,
    /// Peers simulated.
    pub peers: usize,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetupDelayResult {
    /// Configuration used.
    pub config: SetupDelayConfig,
    /// One point per policy.
    pub points: Vec<SetupDelayPoint>,
}

impl SetupDelayResult {
    /// Paper-style rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "policy".into(),
            "setup delay ms (mean)".into(),
            "setup delay ms (p95)".into(),
            "continuity".into(),
            "started".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.policy.clone(),
                format!("{:.1}", p.setup_delay_ms_mean),
                format!("{:.1}", p.setup_delay_ms_p95),
                format!("{:.3}", p.continuity_mean),
                format!("{}/{}", p.started, p.peers),
            ]);
        }
        t
    }

    /// Point lookup by policy.
    pub fn policy(&self, name: &str) -> Option<&SetupDelayPoint> {
        self.points.iter().find(|p| p.policy == name)
    }
}

/// Runs one streaming session with the given per-peer neighbor lists
/// (indices into the swarm's peer vector) and returns the per-peer stats.
fn stream_session(
    swarm: &Swarm<'_>,
    neighbor_lists: &[Vec<usize>],
    config: &SetupDelayConfig,
    seed: u64,
) -> Vec<StreamStats> {
    let mut links = TopologyLinks::new(swarm.topo);
    // Node 0 is the source, attached next to the first landmark; peers are
    // nodes 1..=n.
    let source_router = swarm.landmarks[0];
    let mut sim: Simulator<OverlayMsg, TopologyLinks<'_>> = {
        links.attach(NodeId(0), source_router);
        for (i, peer) in swarm.peers.iter().enumerate() {
            links.attach(NodeId(i as u32 + 1), swarm.attachment[peer]);
        }
        Simulator::new(links, seed)
    };

    // The source feeds the k peers closest to it (by hop count via the
    // server's own landmark data we don't have here — use the first k
    // registered peers, which is policy-neutral).
    let feed: Vec<NodeId> = (0..config.k.min(swarm.peers.len()))
        .map(|i| NodeId(i as u32 + 1))
        .collect();
    sim.add_actor(Box::new(SourceActor::new(
        feed,
        config.chunk_interval_us,
        config.chunks,
    )));

    let mut handles = Vec::with_capacity(swarm.peers.len());
    for (i, _) in swarm.peers.iter().enumerate() {
        let stats = Rc::new(RefCell::new(StreamStats::default()));
        // Mesh links are symmetric: neighbors of i, plus the source for the
        // first k peers.
        let mut mesh: Vec<NodeId> = neighbor_lists[i]
            .iter()
            .map(|&j| NodeId(j as u32 + 1))
            .collect();
        if i < config.k {
            mesh.push(NodeId(0));
        }
        sim.add_actor(Box::new(StreamPeer::new(
            mesh,
            64,
            config.chunk_interval_us,
            config.startup_chunks,
            config.chunks,
            stats.clone(),
        )));
        handles.push(stats);
    }

    let horizon = SimTime(config.chunks * config.chunk_interval_us * 4);
    sim.run_until(horizon);
    handles.into_iter().map(|h| h.borrow().clone()).collect()
}

/// Runs the A2 comparison.
pub fn run(config: &SetupDelayConfig, seed: u64) -> SetupDelayResult {
    let access = (config.n_peers as f64 * 1.3) as usize + 16;
    let topo = mapper(&MapperConfig::with_access(config.core_size, access), seed)
        .expect("valid mapper config");
    let swarm_cfg = SwarmConfig {
        n_peers: config.n_peers,
        n_landmarks: config.n_landmarks,
        neighbor_count: config.k,
        ..Default::default()
    };
    let swarm = Swarm::build(&topo, &swarm_cfg, seed).expect("swarm builds");

    // Path-tree neighbor lists (symmetrised: mesh links are bidirectional).
    let n = swarm.peers.len();
    let mut pathtree_lists: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let peer = swarm.peers[i];
        let neighbors = swarm
            .server
            .neighbors_of(peer, config.k)
            .expect("registered");
        for nb in neighbors {
            let j = nb.peer.0 as usize;
            if !pathtree_lists[i].contains(&j) {
                pathtree_lists[i].push(j);
            }
            if !pathtree_lists[j].contains(&i) {
                pathtree_lists[j].push(i);
            }
        }
    }
    // Standard mesh practice (and what a deployed system would do): one
    // random long link per peer keeps locality-clustered meshes connected
    // to the rest of the swarm.
    let mut link_rng = StdRng::seed_from_u64(seed ^ 0x4c494e4b);
    for i in 0..n {
        let j = link_rng.gen_range(0..n);
        if j != i {
            if !pathtree_lists[i].contains(&j) {
                pathtree_lists[i].push(j);
            }
            if !pathtree_lists[j].contains(&i) {
                pathtree_lists[j].push(i);
            }
        }
    }

    // Random neighbor lists of the same out-degree.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x52414e44);
    let mut random_lists: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let mut pool: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        pool.shuffle(&mut rng);
        for &j in pool.iter().take(config.k) {
            if !random_lists[i].contains(&j) {
                random_lists[i].push(j);
            }
            if !random_lists[j].contains(&i) {
                random_lists[j].push(i);
            }
        }
    }

    let mut points = Vec::new();
    for (name, lists) in [("path-tree", &pathtree_lists), ("random", &random_lists)] {
        let stats = stream_session(&swarm, lists, config, seed);
        let delays: Vec<f64> = stats
            .iter()
            .filter_map(|s| s.setup_delay_us().map(|d| d as f64 / 1_000.0))
            .collect();
        let continuity: Vec<f64> = stats
            .iter()
            .filter(|s| s.playback_started_at.is_some())
            .map(StreamStats::continuity)
            .collect();
        let dsum = Summary::new(&delays);
        let csum = Summary::new(&continuity);
        points.push(SetupDelayPoint {
            policy: name.into(),
            setup_delay_ms_mean: dsum.as_ref().map_or(0.0, Summary::mean),
            setup_delay_ms_p95: dsum.as_ref().map_or(0.0, |s| s.percentile(95.0)),
            continuity_mean: csum.as_ref().map_or(0.0, Summary::mean),
            started: delays.len(),
            peers: n,
        });
    }
    SetupDelayResult {
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_policies_stream_and_report() {
        let result = run(&SetupDelayConfig::quick(), 11);
        assert_eq!(result.points.len(), 2);
        let pt = result.policy("path-tree").unwrap();
        let rnd = result.policy("random").unwrap();
        // Most peers must manage to start playback under either policy.
        assert!(pt.started * 10 >= pt.peers * 7, "{pt:?}");
        assert!(rnd.started * 10 >= rnd.peers * 7, "{rnd:?}");
        assert!(pt.setup_delay_ms_mean > 0.0);
        assert!(rnd.setup_delay_ms_mean > 0.0);
        assert_eq!(result.table().n_rows(), 2);
    }
}
