//! Shared measurement: the paper's `D` metric over a populated swarm.

use crate::swarm::Swarm;
use nearpeer_routing::bfs_distances;
use nearpeer_topology::RouterId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sums of the paper's Figure-2 metric over all peers of a swarm:
/// `D = Σ hop-distance(peer, assigned neighbor)` for the path-tree scheme,
/// the random baseline and the brute-force optimum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityMeasure {
    /// Σ D for the path-tree selection.
    pub sum_d: u64,
    /// Σ D for random selection.
    pub sum_random: u64,
    /// Σ D for the brute-force closest set.
    pub sum_closest: u64,
    /// Peers measured.
    pub peers: usize,
    /// Neighbors per peer (`k`).
    pub k: usize,
}

impl QualityMeasure {
    /// `D / Dclosest` (the paper's headline curve).
    pub fn d_ratio(&self) -> f64 {
        self.sum_d as f64 / self.sum_closest.max(1) as f64
    }

    /// `Drandom / Dclosest`.
    pub fn random_ratio(&self) -> f64 {
        self.sum_random as f64 / self.sum_closest.max(1) as f64
    }
}

/// Measures neighbor-set quality over (a sample of) the swarm's peers.
///
/// For every measured peer one BFS from its access router prices all three
/// neighbor sets consistently:
/// * path-tree — the server's answer (`k` fresh neighbors);
/// * random — `k` uniform peers (deterministic per `seed`);
/// * closest — the `k` true nearest peers by hop distance.
///
/// `sample` bounds how many peers are measured (all when `None`).
pub fn measure_quality(swarm: &mut Swarm<'_>, seed: u64, sample: Option<usize>) -> QualityMeasure {
    let k = swarm.server.config().neighbor_count;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7175_616c); // "qual"
    let mut measured: Vec<_> = swarm.peers.clone();
    if let Some(limit) = sample {
        measured.shuffle(&mut rng);
        measured.truncate(limit);
    }

    let mut sum_d = 0u64;
    let mut sum_random = 0u64;
    let mut sum_closest = 0u64;
    for &peer in &measured {
        let attach = swarm.attachment[&peer];
        let dist = bfs_distances(swarm.topo, attach);
        let cost = |router: RouterId| dist[router.index()] as u64;

        // Path-tree answer.
        let neighbors = swarm
            .server
            .neighbors_of(peer, k)
            .expect("peer registered by Swarm::build");
        sum_d += neighbors
            .iter()
            .map(|n| cost(swarm.attachment[&n.peer]))
            .sum::<u64>();

        // Random baseline.
        let mut pool: Vec<_> = swarm.peers.iter().copied().filter(|&p| p != peer).collect();
        pool.shuffle(&mut rng);
        sum_random += pool
            .iter()
            .take(k)
            .map(|p| cost(swarm.attachment[p]))
            .sum::<u64>();

        // Brute-force closest.
        let mut ranked: Vec<u64> = swarm
            .peers
            .iter()
            .filter(|&&p| p != peer)
            .map(|p| cost(swarm.attachment[p]))
            .collect();
        ranked.sort_unstable();
        sum_closest += ranked.iter().take(k).sum::<u64>();
    }
    QualityMeasure {
        sum_d,
        sum_random,
        sum_closest,
        peers: measured.len(),
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swarm::SwarmConfig;
    use nearpeer_topology::generators::{mapper, MapperConfig};

    #[test]
    fn ratios_are_sane_on_a_tiny_swarm() {
        let topo = mapper(&MapperConfig::tiny(), 9).unwrap();
        let cfg = SwarmConfig {
            n_peers: 50,
            ..Default::default()
        };
        let mut swarm = Swarm::build(&topo, &cfg, 2).unwrap();
        let q = measure_quality(&mut swarm, 0, None);
        assert_eq!(q.peers, 50);
        assert!(q.sum_closest > 0);
        // The optimum lower-bounds both policies.
        assert!(q.d_ratio() >= 1.0, "D ratio {} < 1", q.d_ratio());
        assert!(q.random_ratio() >= 1.0);
        // The scheme must beat random on an Internet-like map.
        assert!(
            q.d_ratio() < q.random_ratio(),
            "path-tree {} not better than random {}",
            q.d_ratio(),
            q.random_ratio()
        );
    }

    #[test]
    fn sampling_limits_work() {
        let topo = mapper(&MapperConfig::tiny(), 9).unwrap();
        let cfg = SwarmConfig {
            n_peers: 40,
            ..Default::default()
        };
        let mut swarm = Swarm::build(&topo, &cfg, 3).unwrap();
        let q = measure_quality(&mut swarm, 1, Some(10));
        assert_eq!(q.peers, 10);
    }
}
