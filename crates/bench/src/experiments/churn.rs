//! Experiment W3 — churn, faulty peers and handover.
//!
//! The paper's future work: "the mobility will require specific algorithms,
//! managing both faulty peers and handover". This study replays churn
//! traces against the management server and measures:
//!
//! * **staleness** — the fraction of neighbors handed to a newcomer that
//!   already failed silently (graceful leavers deregister, faulty peers
//!   cannot);
//! * **handover quality** — after a mobility re-attach + handover, whether
//!   the fresh neighbor list is as good as a brand-new join's.

use nearpeer_core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer_core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer_metrics::Table;
use nearpeer_probe::{TraceConfig, Tracer};
use nearpeer_routing::{bfs_distances, RouteOracle};
use nearpeer_topology::generators::{mapper, MapperConfig};
use nearpeer_topology::RouterId;
use nearpeer_workloads::{ArrivalProcess, ChurnConfig, ChurnEventKind, ChurnTrace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// W3 parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnStudyConfig {
    /// Failure fractions to sweep (0 = all departures graceful).
    pub failure_fractions: Vec<f64>,
    /// Peers over the trace.
    pub n_peers: usize,
    /// Mean session length, seconds.
    pub mean_lifetime_secs: f64,
    /// Join rate, per second.
    pub arrival_rate: f64,
    /// Landmarks.
    pub n_landmarks: usize,
    /// Neighbors per join.
    pub k: usize,
    /// GLP core size.
    pub core_size: usize,
    /// Handovers to measure for the mobility half of the study.
    pub handovers: usize,
}

impl ChurnStudyConfig {
    /// Standard configuration.
    pub fn standard() -> Self {
        Self {
            failure_fractions: vec![0.0, 0.25, 0.5, 1.0],
            n_peers: 600,
            mean_lifetime_secs: 60.0,
            arrival_rate: 10.0,
            n_landmarks: 4,
            k: 5,
            core_size: 500,
            handovers: 100,
        }
    }

    /// Reduced configuration for `--quick` and tests.
    pub fn quick() -> Self {
        Self {
            failure_fractions: vec![0.0, 1.0],
            n_peers: 120,
            mean_lifetime_secs: 20.0,
            arrival_rate: 10.0,
            n_landmarks: 3,
            k: 4,
            core_size: 120,
            handovers: 20,
        }
    }
}

/// One failure-fraction point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChurnPoint {
    /// The swept failure fraction.
    pub failure_fraction: f64,
    /// Mean fraction of stale (silently dead) peers in join answers.
    pub staleness: f64,
    /// Joins measured.
    pub joins: usize,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnStudyResult {
    /// Configuration used.
    pub config: ChurnStudyConfig,
    /// One point per failure fraction.
    pub churn_points: Vec<ChurnPoint>,
    /// Mean `D/Dclosest`-style hop cost of neighbor sets right after a
    /// handover, divided by the cost right before it (≤ 1 means the
    /// handover improved locality, as it should after moving).
    pub handover_improvement: f64,
    /// Handovers measured.
    pub handovers_measured: usize,
}

impl ChurnStudyResult {
    /// Paper-style rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "failure fraction".into(),
            "stale neighbors".into(),
            "joins".into(),
        ]);
        for p in &self.churn_points {
            t.row(vec![
                format!("{:.0}%", p.failure_fraction * 100.0),
                format!("{:.2}%", p.staleness * 100.0),
                p.joins.to_string(),
            ]);
        }
        t
    }
}

struct TestBed {
    topo: nearpeer_topology::Topology,
    landmarks: Vec<RouterId>,
    access: Vec<RouterId>,
}

fn build_bed(config: &ChurnStudyConfig, seed: u64) -> TestBed {
    let access_count = (config.n_peers as f64 * 1.5) as usize + 32;
    let topo = mapper(
        &MapperConfig::with_access(config.core_size, access_count),
        seed,
    )
    .expect("valid mapper config");
    let landmarks = place_landmarks(
        &topo,
        config.n_landmarks,
        PlacementPolicy::DegreeMedium,
        seed,
    );
    let access = topo.access_routers();
    TestBed {
        topo,
        landmarks,
        access,
    }
}

fn trace_path(bed: &TestBed, tracer: &Tracer<'_, '_>, attach: RouterId, seed: u64) -> PeerPath {
    let closest = bed
        .landmarks
        .iter()
        .filter_map(|&lm| tracer.oracle().rtt_us(attach, lm).map(|rtt| (rtt, lm)))
        .min()
        .map(|(_, lm)| lm)
        .expect("connected map");
    let trace = tracer.trace(attach, closest, seed).expect("connected map");
    PeerPath::new(trace.router_path()).expect("traced paths are valid")
}

/// Runs the churn + handover study.
pub fn run(config: &ChurnStudyConfig, seed: u64) -> ChurnStudyResult {
    let bed = build_bed(config, seed);
    // Every (re-)trace targets a landmark: precompute those trees.
    let oracle = RouteOracle::with_destinations(&bed.topo, &bed.landmarks);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4423);

    // --- Churn staleness sweep. ---
    let mut churn_points = Vec::new();
    for &frac in &config.failure_fractions {
        let trace = ChurnTrace::generate(
            &ChurnConfig {
                peers: config.n_peers,
                arrivals: ArrivalProcess::Poisson {
                    rate_per_sec: config.arrival_rate,
                },
                mean_lifetime_secs: Some(config.mean_lifetime_secs),
                failure_fraction: frac,
            },
            seed,
        );
        let mut server = ManagementServer::bootstrap_with_oracle(
            &oracle,
            bed.landmarks.clone(),
            ServerConfig {
                neighbor_count: config.k,
                cross_landmark_fallback: true,
                super_peers: None,
                adaptive_leases: None,
            },
        );
        let mut attach_of: HashMap<usize, RouterId> = HashMap::new();
        let mut dead: HashSet<PeerId> = HashSet::new();
        let mut stale_sum = 0.0f64;
        let mut joins = 0usize;
        for event in &trace.events {
            let peer = PeerId(event.peer as u64);
            match event.kind {
                ChurnEventKind::Join => {
                    let attach = *attach_of
                        .entry(event.peer)
                        .or_insert_with(|| bed.access[rng.gen_range(0..bed.access.len())]);
                    let path = trace_path(&bed, &tracer, attach, seed ^ event.peer as u64);
                    let out = server.register(peer, path).expect("ids unique per trace");
                    if !out.neighbors.is_empty() {
                        let stale = out
                            .neighbors
                            .iter()
                            .filter(|n| dead.contains(&n.peer))
                            .count();
                        stale_sum += stale as f64 / out.neighbors.len() as f64;
                        joins += 1;
                    }
                }
                ChurnEventKind::Leave => {
                    let _ = server.deregister(peer);
                }
                ChurnEventKind::Fail => {
                    // Silent failure: the server keeps the stale record.
                    dead.insert(peer);
                }
            }
        }
        churn_points.push(ChurnPoint {
            failure_fraction: frac,
            staleness: if joins == 0 {
                0.0
            } else {
                stale_sum / joins as f64
            },
            joins,
        });
    }

    // --- Handover quality. ---
    let mut server = ManagementServer::bootstrap_with_oracle(
        &oracle,
        bed.landmarks.clone(),
        ServerConfig {
            neighbor_count: config.k,
            cross_landmark_fallback: true,
            super_peers: None,
            adaptive_leases: None,
        },
    );
    let mut pool = bed.access.clone();
    pool.shuffle(&mut rng);
    let population = config.n_peers.min(pool.len().saturating_sub(1));
    let mut attach: HashMap<PeerId, RouterId> = HashMap::new();
    for (i, &router) in pool.iter().take(population).enumerate() {
        let peer = PeerId(i as u64);
        let path = trace_path(&bed, &tracer, router, seed ^ i as u64);
        server.register(peer, path).expect("unique ids");
        attach.insert(peer, router);
    }
    let set_cost = |neighbors: &[nearpeer_core::Neighbor],
                    from: RouterId,
                    attach: &HashMap<PeerId, RouterId>|
     -> u64 {
        let dist = bfs_distances(&bed.topo, from);
        neighbors
            .iter()
            .filter_map(|n| attach.get(&n.peer))
            .map(|r| dist[r.index()] as u64)
            .sum()
    };
    let mut before_sum = 0u64;
    let mut after_sum = 0u64;
    let mut measured = 0usize;
    let spare: Vec<RouterId> = pool[population..].to_vec();
    for h in 0..config.handovers.min(population) {
        let peer = PeerId((h % population) as u64);
        if spare.is_empty() {
            break;
        }
        let new_attach = spare[rng.gen_range(0..spare.len())];
        // Cost of the old neighbor list as seen from the NEW location.
        let old_neighbors = server.neighbors_of(peer, config.k).expect("registered");
        before_sum += set_cost(&old_neighbors, new_attach, &attach);
        // Handover: re-trace from the new attachment.
        let path = trace_path(&bed, &tracer, new_attach, seed ^ (h as u64) << 32);
        let out = server.handover(peer, path).expect("registered");
        attach.insert(peer, new_attach);
        after_sum += set_cost(&out.neighbors, new_attach, &attach);
        measured += 1;
    }
    let handover_improvement = if before_sum == 0 {
        1.0
    } else {
        after_sum as f64 / before_sum as f64
    };

    ChurnStudyResult {
        config: config.clone(),
        churn_points,
        handover_improvement,
        handovers_measured: measured,
    }
}

// --- Million-peer churn soak (the batched/shard-parallel lease path). ---

use crate::swarm::{
    auto_build_threads, churn_epoch_shard_parallel, expire_stale_shard_parallel,
    renew_shard_parallel, SyntheticJoins,
};
use nearpeer_core::SweepStats;
use std::time::Instant;

/// How churn events are fed to the directory during a soak replay. All
/// three paths produce **identical directory state and counters** for the
/// same trace seed (`tests/determinism.rs` pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnReplayMode {
    /// One facade call per event — the deployed protocol's shape.
    Sequential,
    /// One `register_batch_renewing` + one `leave_batch` call per epoch
    /// window; expiry via `expire_stale_batch`.
    Batched,
    /// Per-epoch batches absorbed by each landmark shard on its own
    /// crossbeam scoped thread (adaptive: degenerates to `Batched` on
    /// single-core hosts).
    ShardParallel,
}

/// Soak parameters: a W3 churn trace replayed onto a synthetic swarm at
/// populations where simulated tracing is prohibitive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnSoakConfig {
    /// Peers per trace cycle.
    pub peers: usize,
    /// Full trace replays; cycles ≥ 2 make departed peers rejoin, driving
    /// the renewal-piggyback path (a silently failed peer coming back
    /// before its lease lapsed).
    pub cycles: usize,
    /// Mean session length, seconds (exponential).
    pub mean_lifetime_secs: f64,
    /// Join rate, per second (Poisson).
    pub arrival_rate: f64,
    /// Fraction of departures that fail silently instead of leaving.
    pub failure_fraction: f64,
    /// Landmarks (= directory shards).
    pub n_landmarks: usize,
    /// Epoch windows the trace is sliced into per cycle (the heartbeat
    /// grid; window width = trace span / this).
    pub epochs_per_cycle: usize,
    /// Lease expiry sweep cadence, in epochs.
    pub expire_every: u64,
    /// Lease length: a peer not seen for more than this many epochs is
    /// expired at the next sweep.
    pub max_age: u64,
    /// Heartbeat cadence: every epoch, the live peers whose id falls in
    /// the epoch's stride group renew their lease (batched through
    /// `renew_batch`). Must be < `max_age`, or live peers' leases lapse
    /// between heartbeats.
    pub heartbeat_every: u64,
    /// Replay mode.
    pub mode: ChurnReplayMode,
    /// Worker threads for [`ChurnReplayMode::ShardParallel`]; `None` picks
    /// `available_parallelism`.
    pub threads: Option<usize>,
    /// Adaptive lease lengths for the directory (per-peer `max_age` from
    /// the session EWMA, capped to the configured band); `None` = the
    /// uniform `max_age` lease.
    pub adaptive: Option<nearpeer_core::AdaptiveLeaseConfig>,
}

impl ChurnSoakConfig {
    /// The CI smoke shape: 10⁵ peers, one cycle, batched.
    pub fn smoke() -> Self {
        Self {
            peers: 100_000,
            cycles: 1,
            mean_lifetime_secs: 60.0,
            arrival_rate: 1_000.0,
            failure_fraction: 0.3,
            n_landmarks: 8,
            epochs_per_cycle: 128,
            expire_every: 4,
            max_age: 8,
            heartbeat_every: 4,
            mode: ChurnReplayMode::Batched,
            threads: None,
            adaptive: None,
        }
    }

    /// A reduced shape for unit tests.
    pub fn quick() -> Self {
        Self {
            peers: 400,
            cycles: 2,
            mean_lifetime_secs: 30.0,
            arrival_rate: 50.0,
            failure_fraction: 0.4,
            n_landmarks: 3,
            epochs_per_cycle: 24,
            expire_every: 3,
            max_age: 5,
            heartbeat_every: 2,
            mode: ChurnReplayMode::Batched,
            threads: None,
            adaptive: None,
        }
    }
}

/// Event dispositions accumulated over a soak replay. Deterministic per
/// `(config-minus-mode, seed)`: all three replay modes produce the same
/// numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnSoakCounters {
    /// Fresh registrations (lease opened).
    pub joins: u64,
    /// Rejoins renewed through the register path (lease refreshed, path
    /// kept).
    pub renewals: u64,
    /// Heartbeat renewals (batched `renew_batch` rounds).
    pub heartbeats: u64,
    /// Join items rejected (should be 0 for synthetic traces).
    pub rejected: u64,
    /// Graceful departures that found a registration to remove.
    pub leaves: u64,
    /// Silent failures (no server interaction — the lease must catch
    /// them).
    pub fails: u64,
    /// Leases expired by the sweeps.
    pub expired: u64,
    /// Heartbeat epochs driven (non-empty trace windows).
    pub epochs: u64,
    /// Trace events applied.
    pub events: u64,
}

/// Soak output: counters, population extremes, throughput and the lease
/// arena's cumulative sweep cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnSoakResult {
    /// Configuration used.
    pub config: ChurnSoakConfig,
    /// Event dispositions.
    pub counters: ChurnSoakCounters,
    /// Largest registered population observed at an epoch boundary.
    pub peak_population: usize,
    /// Registered peers left after the replay (silent failures whose
    /// lease had not yet lapsed).
    pub final_population: usize,
    /// Wall-clock seconds for the replay (excluding trace generation).
    pub elapsed_secs: f64,
    /// Trace events applied per second of replay.
    pub events_per_sec: f64,
    /// Summed per-shard expiry sweep cost — evidence the sweeps stay
    /// linear in lease activity (compare `entries_swept` against
    /// `counters.events`, not against population × epochs).
    pub sweep_entries: u64,
    /// Epoch buckets retired across all shards.
    pub sweep_buckets: u64,
}

/// Runs a churn soak and also hands back the populated server, so callers
/// (the determinism suite) can compare directory state across modes.
pub fn run_soak_with_server(
    cfg: &ChurnSoakConfig,
    seed: u64,
) -> (ChurnSoakResult, ManagementServer) {
    let gen = SyntheticJoins::new(cfg.n_landmarks);
    let mut server = gen.server(ServerConfig {
        neighbor_count: 5,
        cross_landmark_fallback: false,
        super_peers: None,
        adaptive_leases: cfg.adaptive,
    });
    let trace = ChurnTrace::generate(
        &ChurnConfig {
            peers: cfg.peers,
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: cfg.arrival_rate,
            },
            mean_lifetime_secs: Some(cfg.mean_lifetime_secs),
            failure_fraction: cfg.failure_fraction,
        },
        seed,
    );
    let width = (trace.span_us() / cfg.epochs_per_cycle.max(1) as u64).max(1);
    let threads = cfg.threads.unwrap_or_else(auto_build_threads);
    assert!(cfg.expire_every >= 1, "expiry cadence must be >= 1 epoch");
    assert!(
        cfg.heartbeat_every >= 1 && cfg.heartbeat_every < cfg.max_age,
        "live peers must heartbeat within their lease"
    );
    let mut counters = ChurnSoakCounters::default();
    let mut peak = 0usize;
    // Heartbeat bookkeeping, driven by the trace alone (identical across
    // replay modes): which peers are nominally alive, and one stride
    // group per heartbeat phase so each epoch renews ~1/stride of the
    // population.
    let mut alive = vec![false; cfg.peers];
    let mut grouped = vec![false; cfg.peers];
    let mut groups: Vec<Vec<usize>> = (0..cfg.heartbeat_every).map(|_| Vec::new()).collect();
    let t0 = Instant::now();
    for _cycle in 0..cfg.cycles {
        for (_idx, events) in trace.windows(width) {
            server.advance_epoch();
            counters.epochs += 1;
            counters.events += events.len() as u64;
            for ev in events {
                match ev.kind {
                    ChurnEventKind::Join => {
                        alive[ev.peer] = true;
                        if !grouped[ev.peer] {
                            grouped[ev.peer] = true;
                            groups[ev.peer % cfg.heartbeat_every as usize].push(ev.peer);
                        }
                    }
                    ChurnEventKind::Leave | ChurnEventKind::Fail => alive[ev.peer] = false,
                }
            }
            match cfg.mode {
                ChurnReplayMode::Sequential => {
                    for ev in events {
                        let peer = PeerId(ev.peer as u64);
                        match ev.kind {
                            ChurnEventKind::Join => {
                                let out =
                                    server.register_batch_renewing(vec![gen.join(ev.peer as u64)]);
                                counters.joins += out.joined as u64;
                                counters.renewals += out.renewed as u64;
                                counters.rejected += out.rejected as u64;
                            }
                            ChurnEventKind::Leave => {
                                counters.leaves += server.leave_batch(&[peer]) as u64;
                            }
                            ChurnEventKind::Fail => counters.fails += 1,
                        }
                    }
                }
                ChurnReplayMode::Batched | ChurnReplayMode::ShardParallel => {
                    let mut joins: Vec<(PeerId, PeerPath)> = Vec::new();
                    let mut leave_ids: Vec<PeerId> = Vec::new();
                    for ev in events {
                        match ev.kind {
                            ChurnEventKind::Join => joins.push(gen.join(ev.peer as u64)),
                            ChurnEventKind::Leave => leave_ids.push(PeerId(ev.peer as u64)),
                            ChurnEventKind::Fail => counters.fails += 1,
                        }
                    }
                    let (out, left) = if cfg.mode == ChurnReplayMode::Batched {
                        let out = server.register_batch_renewing(joins);
                        let left = server.leave_batch(&leave_ids);
                        (out, left)
                    } else {
                        churn_epoch_shard_parallel(&mut server, joins, &leave_ids, threads)
                            .expect("synthetic ids are landmark-stable")
                    };
                    counters.joins += out.joined as u64;
                    counters.renewals += out.renewed as u64;
                    counters.rejected += out.rejected as u64;
                    counters.leaves += left as u64;
                }
            }
            // Heartbeat round: this epoch's stride group of live peers
            // renews (before the sweep — a peer checking in this epoch
            // must not be expired by it).
            let phase = (counters.epochs % cfg.heartbeat_every) as usize;
            let beats: Vec<PeerId> = groups[phase]
                .iter()
                .filter(|&&p| alive[p])
                .map(|&p| PeerId(p as u64))
                .collect();
            counters.heartbeats += match cfg.mode {
                ChurnReplayMode::Sequential => beats
                    .iter()
                    .map(|&p| server.renew_batch(&[p]))
                    .sum::<usize>(),
                ChurnReplayMode::Batched => server.renew_batch(&beats),
                ChurnReplayMode::ShardParallel => {
                    renew_shard_parallel(&mut server, &beats, threads)
                }
            } as u64;
            if counters.epochs % cfg.expire_every == 0 {
                let expired = match cfg.mode {
                    ChurnReplayMode::ShardParallel => {
                        expire_stale_shard_parallel(&mut server, cfg.max_age, threads)
                    }
                    _ => server.expire_stale_batch(cfg.max_age),
                };
                counters.expired += expired.len() as u64;
            }
            peak = peak.max(server.peer_count());
        }
    }
    let elapsed = t0.elapsed();
    let sweep: SweepStats = server
        .shards()
        .iter()
        .fold(SweepStats::default(), |acc, s| {
            let st = s.leases().sweep_stats();
            SweepStats {
                entries_swept: acc.entries_swept + st.entries_swept,
                buckets_swept: acc.buckets_swept + st.buckets_swept,
            }
        });
    let result = ChurnSoakResult {
        config: cfg.clone(),
        counters,
        peak_population: peak,
        final_population: server.peer_count(),
        elapsed_secs: elapsed.as_secs_f64(),
        events_per_sec: counters.events as f64 / elapsed.as_secs_f64().max(1e-9),
        sweep_entries: sweep.entries_swept,
        sweep_buckets: sweep.buckets_swept,
    };
    (result, server)
}

/// Runs a churn soak (see [`ChurnSoakConfig`]).
pub fn run_soak(cfg: &ChurnSoakConfig, seed: u64) -> ChurnSoakResult {
    run_soak_with_server(cfg, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_create_staleness_and_handover_helps() {
        let result = run(&ChurnStudyConfig::quick(), 5);
        assert_eq!(result.churn_points.len(), 2);
        let graceful = &result.churn_points[0];
        let faulty = &result.churn_points[1];
        assert_eq!(graceful.failure_fraction, 0.0);
        assert_eq!(
            graceful.staleness, 0.0,
            "graceful leavers must never be handed out stale"
        );
        assert!(
            faulty.staleness > 0.0,
            "silent failures must show up as stale neighbors"
        );
        assert!(result.handovers_measured > 0);
        assert!(
            result.handover_improvement <= 1.05,
            "handover made neighbor sets worse: {}",
            result.handover_improvement
        );
        assert_eq!(result.table().n_rows(), 2);
    }

    #[test]
    fn soak_counters_add_up_and_sweeps_stay_linear() {
        let cfg = ChurnSoakConfig::quick();
        let (result, server) = run_soak_with_server(&cfg, 11);
        let c = result.counters;
        // Every trace event lands in exactly one disposition. Join events
        // split into fresh joins vs renewals (cycle 2 rejoins peers whose
        // lease survived); departures into graceful leaves (some find the
        // peer already expired and count nothing) and silent fails.
        assert_eq!(c.events, (cfg.peers as u64 * 2) * cfg.cycles as u64);
        assert_eq!(c.rejected, 0, "synthetic paths always hit a landmark");
        assert_eq!(
            c.joins + c.renewals,
            cfg.peers as u64 * cfg.cycles as u64,
            "every join event either opens or renews a lease"
        );
        assert!(c.renewals > 0, "cycle 2 must drive the renewal path");
        assert!(c.heartbeats > 0, "live peers must heartbeat");
        assert!(c.expired > 0, "silent failures must be expired by leases");
        // Conservation: everyone who joined has left, failed-and-expired,
        // or is still registered.
        assert_eq!(
            c.joins,
            c.leaves + c.expired + result.final_population as u64
        );
        assert!(result.peak_population > 0);
        assert_eq!(server.peer_count(), result.final_population);
        // The epoch-bucketed sweep touches noted lease activity only (one
        // note per open/renewal, re-notes bounded by sweeps), far below
        // the full-scan worst case of population × sweeps.
        let noted = c.joins + c.renewals + c.heartbeats;
        assert!(
            result.sweep_entries <= 2 * noted,
            "sweep cost {} exceeds twice the noted activity {}",
            result.sweep_entries,
            noted
        );
    }

    #[test]
    fn soak_modes_agree_at_small_scale() {
        let mut cfg = ChurnSoakConfig::quick();
        let base = run_soak(&cfg, 3);
        cfg.mode = ChurnReplayMode::Sequential;
        let seq = run_soak(&cfg, 3);
        cfg.mode = ChurnReplayMode::ShardParallel;
        cfg.threads = Some(3);
        let par = run_soak(&cfg, 3);
        assert_eq!(seq.counters, base.counters);
        assert_eq!(par.counters, base.counters);
        assert_eq!(seq.final_population, base.final_population);
        assert_eq!(par.final_population, base.final_population);
        assert_eq!(seq.peak_population, base.peak_population);
        assert_eq!(par.peak_population, base.peak_population);
    }
}
