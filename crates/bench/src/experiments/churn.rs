//! Experiment W3 — churn, faulty peers and handover.
//!
//! The paper's future work: "the mobility will require specific algorithms,
//! managing both faulty peers and handover". This study replays churn
//! traces against the management server and measures:
//!
//! * **staleness** — the fraction of neighbors handed to a newcomer that
//!   already failed silently (graceful leavers deregister, faulty peers
//!   cannot);
//! * **handover quality** — after a mobility re-attach + handover, whether
//!   the fresh neighbor list is as good as a brand-new join's.

use nearpeer_core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer_core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer_metrics::Table;
use nearpeer_probe::{TraceConfig, Tracer};
use nearpeer_routing::{bfs_distances, RouteOracle};
use nearpeer_topology::generators::{mapper, MapperConfig};
use nearpeer_topology::RouterId;
use nearpeer_workloads::{ArrivalProcess, ChurnConfig, ChurnEventKind, ChurnTrace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// W3 parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnStudyConfig {
    /// Failure fractions to sweep (0 = all departures graceful).
    pub failure_fractions: Vec<f64>,
    /// Peers over the trace.
    pub n_peers: usize,
    /// Mean session length, seconds.
    pub mean_lifetime_secs: f64,
    /// Join rate, per second.
    pub arrival_rate: f64,
    /// Landmarks.
    pub n_landmarks: usize,
    /// Neighbors per join.
    pub k: usize,
    /// GLP core size.
    pub core_size: usize,
    /// Handovers to measure for the mobility half of the study.
    pub handovers: usize,
}

impl ChurnStudyConfig {
    /// Standard configuration.
    pub fn standard() -> Self {
        Self {
            failure_fractions: vec![0.0, 0.25, 0.5, 1.0],
            n_peers: 600,
            mean_lifetime_secs: 60.0,
            arrival_rate: 10.0,
            n_landmarks: 4,
            k: 5,
            core_size: 500,
            handovers: 100,
        }
    }

    /// Reduced configuration for `--quick` and tests.
    pub fn quick() -> Self {
        Self {
            failure_fractions: vec![0.0, 1.0],
            n_peers: 120,
            mean_lifetime_secs: 20.0,
            arrival_rate: 10.0,
            n_landmarks: 3,
            k: 4,
            core_size: 120,
            handovers: 20,
        }
    }
}

/// One failure-fraction point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChurnPoint {
    /// The swept failure fraction.
    pub failure_fraction: f64,
    /// Mean fraction of stale (silently dead) peers in join answers.
    pub staleness: f64,
    /// Joins measured.
    pub joins: usize,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnStudyResult {
    /// Configuration used.
    pub config: ChurnStudyConfig,
    /// One point per failure fraction.
    pub churn_points: Vec<ChurnPoint>,
    /// Mean `D/Dclosest`-style hop cost of neighbor sets right after a
    /// handover, divided by the cost right before it (≤ 1 means the
    /// handover improved locality, as it should after moving).
    pub handover_improvement: f64,
    /// Handovers measured.
    pub handovers_measured: usize,
}

impl ChurnStudyResult {
    /// Paper-style rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "failure fraction".into(),
            "stale neighbors".into(),
            "joins".into(),
        ]);
        for p in &self.churn_points {
            t.row(vec![
                format!("{:.0}%", p.failure_fraction * 100.0),
                format!("{:.2}%", p.staleness * 100.0),
                p.joins.to_string(),
            ]);
        }
        t
    }
}

struct TestBed {
    topo: nearpeer_topology::Topology,
    landmarks: Vec<RouterId>,
    access: Vec<RouterId>,
}

fn build_bed(config: &ChurnStudyConfig, seed: u64) -> TestBed {
    let access_count = (config.n_peers as f64 * 1.5) as usize + 32;
    let topo = mapper(
        &MapperConfig::with_access(config.core_size, access_count),
        seed,
    )
    .expect("valid mapper config");
    let landmarks = place_landmarks(
        &topo,
        config.n_landmarks,
        PlacementPolicy::DegreeMedium,
        seed,
    );
    let access = topo.access_routers();
    TestBed {
        topo,
        landmarks,
        access,
    }
}

fn trace_path(bed: &TestBed, tracer: &Tracer<'_, '_>, attach: RouterId, seed: u64) -> PeerPath {
    let closest = bed
        .landmarks
        .iter()
        .filter_map(|&lm| tracer.oracle().rtt_us(attach, lm).map(|rtt| (rtt, lm)))
        .min()
        .map(|(_, lm)| lm)
        .expect("connected map");
    let trace = tracer.trace(attach, closest, seed).expect("connected map");
    PeerPath::new(trace.router_path()).expect("traced paths are valid")
}

/// Runs the churn + handover study.
pub fn run(config: &ChurnStudyConfig, seed: u64) -> ChurnStudyResult {
    let bed = build_bed(config, seed);
    // Every (re-)trace targets a landmark: precompute those trees.
    let oracle = RouteOracle::with_destinations(&bed.topo, &bed.landmarks);
    let tracer = Tracer::new(&oracle, TraceConfig::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4423);

    // --- Churn staleness sweep. ---
    let mut churn_points = Vec::new();
    for &frac in &config.failure_fractions {
        let trace = ChurnTrace::generate(
            &ChurnConfig {
                peers: config.n_peers,
                arrivals: ArrivalProcess::Poisson {
                    rate_per_sec: config.arrival_rate,
                },
                mean_lifetime_secs: Some(config.mean_lifetime_secs),
                failure_fraction: frac,
            },
            seed,
        );
        let mut server = ManagementServer::bootstrap_with_oracle(
            &oracle,
            bed.landmarks.clone(),
            ServerConfig {
                neighbor_count: config.k,
                cross_landmark_fallback: true,
                super_peers: None,
            },
        );
        let mut attach_of: HashMap<usize, RouterId> = HashMap::new();
        let mut dead: HashSet<PeerId> = HashSet::new();
        let mut stale_sum = 0.0f64;
        let mut joins = 0usize;
        for event in &trace.events {
            let peer = PeerId(event.peer as u64);
            match event.kind {
                ChurnEventKind::Join => {
                    let attach = *attach_of
                        .entry(event.peer)
                        .or_insert_with(|| bed.access[rng.gen_range(0..bed.access.len())]);
                    let path = trace_path(&bed, &tracer, attach, seed ^ event.peer as u64);
                    let out = server.register(peer, path).expect("ids unique per trace");
                    if !out.neighbors.is_empty() {
                        let stale = out
                            .neighbors
                            .iter()
                            .filter(|n| dead.contains(&n.peer))
                            .count();
                        stale_sum += stale as f64 / out.neighbors.len() as f64;
                        joins += 1;
                    }
                }
                ChurnEventKind::Leave => {
                    let _ = server.deregister(peer);
                }
                ChurnEventKind::Fail => {
                    // Silent failure: the server keeps the stale record.
                    dead.insert(peer);
                }
            }
        }
        churn_points.push(ChurnPoint {
            failure_fraction: frac,
            staleness: if joins == 0 {
                0.0
            } else {
                stale_sum / joins as f64
            },
            joins,
        });
    }

    // --- Handover quality. ---
    let mut server = ManagementServer::bootstrap_with_oracle(
        &oracle,
        bed.landmarks.clone(),
        ServerConfig {
            neighbor_count: config.k,
            cross_landmark_fallback: true,
            super_peers: None,
        },
    );
    let mut pool = bed.access.clone();
    pool.shuffle(&mut rng);
    let population = config.n_peers.min(pool.len().saturating_sub(1));
    let mut attach: HashMap<PeerId, RouterId> = HashMap::new();
    for (i, &router) in pool.iter().take(population).enumerate() {
        let peer = PeerId(i as u64);
        let path = trace_path(&bed, &tracer, router, seed ^ i as u64);
        server.register(peer, path).expect("unique ids");
        attach.insert(peer, router);
    }
    let set_cost = |neighbors: &[nearpeer_core::Neighbor],
                    from: RouterId,
                    attach: &HashMap<PeerId, RouterId>|
     -> u64 {
        let dist = bfs_distances(&bed.topo, from);
        neighbors
            .iter()
            .filter_map(|n| attach.get(&n.peer))
            .map(|r| dist[r.index()] as u64)
            .sum()
    };
    let mut before_sum = 0u64;
    let mut after_sum = 0u64;
    let mut measured = 0usize;
    let spare: Vec<RouterId> = pool[population..].to_vec();
    for h in 0..config.handovers.min(population) {
        let peer = PeerId((h % population) as u64);
        if spare.is_empty() {
            break;
        }
        let new_attach = spare[rng.gen_range(0..spare.len())];
        // Cost of the old neighbor list as seen from the NEW location.
        let old_neighbors = server.neighbors_of(peer, config.k).expect("registered");
        before_sum += set_cost(&old_neighbors, new_attach, &attach);
        // Handover: re-trace from the new attachment.
        let path = trace_path(&bed, &tracer, new_attach, seed ^ (h as u64) << 32);
        let out = server.handover(peer, path).expect("registered");
        attach.insert(peer, new_attach);
        after_sum += set_cost(&out.neighbors, new_attach, &attach);
        measured += 1;
    }
    let handover_improvement = if before_sum == 0 {
        1.0
    } else {
        after_sum as f64 / before_sum as f64
    };

    ChurnStudyResult {
        config: config.clone(),
        churn_points,
        handover_improvement,
        handovers_measured: measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_create_staleness_and_handover_helps() {
        let result = run(&ChurnStudyConfig::quick(), 5);
        assert_eq!(result.churn_points.len(), 2);
        let graceful = &result.churn_points[0];
        let faulty = &result.churn_points[1];
        assert_eq!(graceful.failure_fraction, 0.0);
        assert_eq!(
            graceful.staleness, 0.0,
            "graceful leavers must never be handed out stale"
        );
        assert!(
            faulty.staleness > 0.0,
            "silent failures must show up as stale neighbors"
        );
        assert!(result.handovers_measured > 0);
        assert!(
            result.handover_improvement <= 1.05,
            "handover made neighbor sets worse: {}",
            result.handover_improvement
        );
        assert_eq!(result.table().n_rows(), 2);
    }
}
