//! Standing-subscription soak: N watchers over a replayed churn trace,
//! every pushed delta verified against a re-polled answer.
//!
//! The subscription engine promises that applying its [`NeighborDelta`]
//! stream to the initial snapshot reproduces, at every drain point,
//! exactly what a fresh `neighbors_of` poll would answer. This soak holds
//! it to that: a stable population of subscribers watches its `k` nearest
//! while a separate churn population joins, leaves and silently fails
//! through the batched lease path, and every drained delta is checked
//! against a re-poll of the live directory (set-of-`(peer, dtree)`
//! equality — the exact and fill sections of an answer are ordered
//! per-section, not globally).
//!
//! The subscription clock is driven from the trace timeline (window end
//! in milliseconds), so rate limiting, coalescing and the delta-latency
//! CDF are deterministic per seed. Storm mode widens `min_interval_ms`
//! past the whole trace: every event coalesces into at most one pending
//! delta per subscriber, which pins the coalescing path (`coalesced > 0`)
//! and the queue-depth bound (peak ≤ active) under a worst-case burst.

use crate::swarm::SyntheticJoins;
use nearpeer_core::{
    NeighborDelta, PeerId, PeerPath, ServerConfig, Subscription, SubscriptionStats,
};
use nearpeer_workloads::{ArrivalProcess, ChurnConfig, ChurnEventKind, ChurnTrace};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Subscription soak parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubSoakConfig {
    /// Landmarks (= directory shards).
    pub n_landmarks: usize,
    /// Churn population (trace peer indices `0..churners`).
    pub churners: usize,
    /// Stable watcher population (ids `churners..churners+subscribers`,
    /// registered up front, renewed every window, never churned).
    pub subscribers: usize,
    /// Neighbors each subscription watches.
    pub k: usize,
    /// Rate-limit window per subscription, trace milliseconds.
    pub min_interval_ms: u64,
    /// Mean churner session length, seconds (exponential).
    pub mean_lifetime_secs: f64,
    /// Churner join rate, per second (Poisson).
    pub arrival_rate: f64,
    /// Fraction of departures that fail silently instead of leaving.
    pub failure_fraction: f64,
    /// Epoch windows the trace is sliced into.
    pub windows: usize,
    /// Lease expiry sweep cadence, in windows.
    pub expire_every: u64,
    /// Lease length in epochs for history-less peers.
    pub max_age: u64,
    /// Re-poll the directory after every drained delta (the parity
    /// check). Off only for pure throughput timing.
    pub verify: bool,
    /// Storm mode: no drains during the replay (see module docs).
    pub storm: bool,
}

impl SubSoakConfig {
    /// The CI smoke shape: 10k subscribers over 40k churners.
    pub fn smoke() -> Self {
        Self {
            n_landmarks: 8,
            churners: 40_000,
            subscribers: 10_000,
            k: 5,
            min_interval_ms: 2_000,
            mean_lifetime_secs: 60.0,
            arrival_rate: 1_000.0,
            failure_fraction: 0.3,
            // Windows narrower than `min_interval_ms`, so the rate
            // limiter holds some deltas across windows and the latency
            // CDF shows real spread instead of one point.
            windows: 512,
            expire_every: 16,
            max_age: 32,
            verify: true,
            storm: false,
        }
    }

    /// A reduced shape for unit tests.
    pub fn quick() -> Self {
        Self {
            n_landmarks: 3,
            churners: 300,
            subscribers: 40,
            k: 4,
            min_interval_ms: 500,
            mean_lifetime_secs: 30.0,
            arrival_rate: 50.0,
            failure_fraction: 0.4,
            windows: 24,
            expire_every: 3,
            max_age: 5,
            verify: true,
            storm: false,
        }
    }
}

/// Virtual-time latency distribution of the drained deltas
/// (`queued_ms`: trace milliseconds between a delta being queued and it
/// reaching the wire).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DeltaLatency {
    /// Deltas measured.
    pub count: u64,
    /// Median queue latency, trace ms.
    pub p50_ms: u64,
    /// 90th percentile.
    pub p90_ms: u64,
    /// 99th percentile.
    pub p99_ms: u64,
    /// Worst observed.
    pub max_ms: u64,
}

impl DeltaLatency {
    fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let at = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
        Self {
            count: samples.len() as u64,
            p50_ms: at(0.50),
            p90_ms: at(0.90),
            p99_ms: at(0.99),
            max_ms: *samples.last().unwrap(),
        }
    }
}

/// Soak output, written to `BENCH_subs.json` by the `sub_soak` binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubSoakResult {
    /// Configuration used.
    pub config: SubSoakConfig,
    /// Trace events applied.
    pub events: u64,
    /// Standing subscriptions still active at the end.
    pub active_subs: u64,
    /// Deltas drained and (if `verify`) checked against a re-poll.
    pub deltas_verified: u64,
    /// Parity failures (must be 0).
    pub mismatches: u64,
    /// Replay wall-clock (registration, churn batches, subscription
    /// observes and drains — the server-side cost), seconds.
    pub elapsed_secs: f64,
    /// Harness-side verification wall-clock (re-polls + set compares),
    /// seconds; excluded from `elapsed_secs`.
    pub verify_secs: f64,
    /// Trace events applied per second of replay.
    pub events_per_sec: f64,
    /// Churn events absorbed per pushed delta
    /// (`(pushed + coalesced) / pushed`) — the coalescing ratio.
    pub coalescing_ratio: f64,
    /// Final registry counters.
    pub stats: SubscriptionStats,
    /// Queue-latency distribution of the drained deltas.
    pub latency: DeltaLatency,
}

/// A subscriber's mirrored answer, kept delta-applied.
struct View {
    answer: Vec<nearpeer_core::Neighbor>,
}

fn apply(view: &mut View, delta: &NeighborDelta) {
    view.answer.retain(|n| !delta.removed.contains(&n.peer));
    for a in &delta.added {
        match view.answer.iter_mut().find(|n| n.peer == a.peer) {
            Some(n) => n.dtree = a.dtree,
            None => view.answer.push(*a),
        }
    }
}

fn same_answer(mut a: Vec<nearpeer_core::Neighbor>, mut b: Vec<nearpeer_core::Neighbor>) -> bool {
    a.sort_unstable_by_key(|n| n.peer);
    b.sort_unstable_by_key(|n| n.peer);
    a == b
}

/// Runs a subscription soak (see [`SubSoakConfig`]).
pub fn run_sub_soak(cfg: &SubSoakConfig, seed: u64) -> SubSoakResult {
    let gen = SyntheticJoins::new(cfg.n_landmarks);
    let mut server = gen.server(ServerConfig {
        neighbor_count: cfg.k,
        ..ServerConfig::default()
    });
    let trace = ChurnTrace::generate(
        &ChurnConfig {
            peers: cfg.churners,
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: cfg.arrival_rate,
            },
            mean_lifetime_secs: Some(cfg.mean_lifetime_secs),
            failure_fraction: cfg.failure_fraction,
        },
        seed,
    );
    let width = (trace.span_us() / cfg.windows.max(1) as u64).max(1);
    // Storm mode: nothing is drain-eligible until the replay is over.
    let min_interval = if cfg.storm {
        trace.span_us() / 1_000 + cfg.min_interval_ms + 1
    } else {
        cfg.min_interval_ms
    };

    // Stable watcher population, disjoint from the trace's peer indices.
    let sub_ids: Vec<PeerId> = (0..cfg.subscribers as u64)
        .map(|i| PeerId(cfg.churners as u64 + i))
        .collect();
    let joins: Vec<(PeerId, PeerPath)> = sub_ids.iter().map(|p| gen.join(p.0)).collect();
    let out = server.register_batch_renewing(joins);
    assert_eq!(out.joined, cfg.subscribers, "watcher registration failed");
    let client = server.open_sub_client();
    let mut views: Vec<View> = Vec::with_capacity(cfg.subscribers);
    for &peer in &sub_ids {
        let answer = server
            .subscribe(
                client,
                Subscription {
                    peer,
                    k: cfg.k,
                    min_interval_ms: min_interval,
                },
            )
            .expect("watchers are registered");
        views.push(View { answer });
    }
    let view_of = |peer: PeerId| (peer.0 - cfg.churners as u64) as usize;
    // Watchers only need a fresh lease before `max_age` epochs elapse.
    let renew_every = (cfg.max_age / 2).max(1);

    // Setup (watcher registration + initial subscribe) is excluded: the
    // throughput figure measures the churn replay, drains included.
    let t0 = Instant::now();
    let mut events = 0u64;
    let mut epochs = 0u64;
    let mut deltas: Vec<NeighborDelta> = Vec::new();
    let mut verify_time = std::time::Duration::ZERO;
    let mut mismatches = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut verified = 0u64;
    for (idx, window) in trace.windows(width) {
        server.advance_epoch();
        epochs += 1;
        events += window.len() as u64;
        // Deltas queued by this window's events carry the window-start
        // clock; drains below happen at window end, so `queued_ms`
        // reflects both the window width and any rate-limit holdback.
        server.set_sub_clock_ms(idx * width / 1_000);
        let mut joins: Vec<(PeerId, PeerPath)> = Vec::new();
        let mut leaves: Vec<PeerId> = Vec::new();
        for ev in window {
            match ev.kind {
                ChurnEventKind::Join => joins.push(gen.join(ev.peer as u64)),
                ChurnEventKind::Leave => leaves.push(PeerId(ev.peer as u64)),
                // Silent: the expiry sweep has to catch it.
                ChurnEventKind::Fail => {}
            }
        }
        server.register_batch_renewing(joins);
        server.leave_batch(&leaves);
        // Watchers renew ahead of the expiry horizon so churn-population
        // sweeps never reap a subscriber.
        if epochs % renew_every == 0 {
            server.renew_batch(&sub_ids);
        }
        if epochs % cfg.expire_every == 0 {
            server.expire_stale_batch(cfg.max_age);
        }
        if !cfg.storm {
            server.set_sub_clock_ms((idx + 1) * width / 1_000);
            deltas.clear();
            server.drain_deltas(client, usize::MAX, &mut deltas);
            for d in &deltas {
                latencies.push(d.queued_ms);
                apply(&mut views[view_of(d.peer)], d);
            }
            if cfg.verify {
                let tv = Instant::now();
                for d in &deltas {
                    verified += 1;
                    let view = &views[view_of(d.peer)];
                    let expect = server
                        .neighbors_of(d.peer, cfg.k)
                        .expect("watchers stay registered");
                    if !same_answer(view.answer.clone(), expect) {
                        mismatches += 1;
                    }
                }
                verify_time += tv.elapsed();
            }
        }
    }
    if cfg.storm {
        // Open the rate-limit window and take everything in one drain.
        server.set_sub_clock_ms(trace.span_us() / 1_000 + min_interval + 1);
        deltas.clear();
        server.drain_deltas(client, usize::MAX, &mut deltas);
        let tv = Instant::now();
        for d in &deltas {
            latencies.push(d.queued_ms);
            apply(&mut views[view_of(d.peer)], d);
            if cfg.verify {
                verified += 1;
                let expect = server
                    .neighbors_of(d.peer, cfg.k)
                    .expect("watchers stay registered");
                if !same_answer(views[view_of(d.peer)].answer.clone(), expect) {
                    mismatches += 1;
                }
            }
        }
        verify_time += tv.elapsed();
    }
    let elapsed = t0.elapsed().saturating_sub(verify_time);
    let stats = server.subscription_stats();
    let pushed = stats.pushed.max(1);
    SubSoakResult {
        config: cfg.clone(),
        events,
        active_subs: stats.active,
        deltas_verified: verified,
        mismatches,
        elapsed_secs: elapsed.as_secs_f64(),
        verify_secs: verify_time.as_secs_f64(),
        events_per_sec: events as f64 / elapsed.as_secs_f64().max(1e-9),
        coalescing_ratio: (stats.pushed + stats.coalesced) as f64 / pushed as f64,
        stats,
        latency: DeltaLatency::from_samples(&mut latencies),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_has_full_parity() {
        let r = run_sub_soak(&SubSoakConfig::quick(), 7);
        assert_eq!(r.mismatches, 0, "delta stream diverged from re-polls");
        assert!(r.deltas_verified > 0, "soak produced no deltas to check");
        assert_eq!(r.active_subs, 40, "a watcher was dropped");
    }

    #[test]
    fn storm_mode_coalesces_with_bounded_queue() {
        let cfg = SubSoakConfig {
            storm: true,
            ..SubSoakConfig::quick()
        };
        let r = run_sub_soak(&cfg, 7);
        assert_eq!(r.mismatches, 0);
        assert!(
            r.stats.coalesced > 0,
            "a storm inside one rate-limit window must coalesce"
        );
        assert!(
            r.stats.peak_queue_depth <= r.stats.active,
            "queue depth exceeded one pending per subscription"
        );
        assert!(r.coalescing_ratio > 1.0);
    }
}
