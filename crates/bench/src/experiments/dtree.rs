//! Experiment A1 — how often `dtree = d`.
//!
//! §2's core assumption: "we expect that most cases verify
//! `d(p1,p2) = dtree(p1,p2)`", justified by the heavy-tailed router-level
//! Internet. This ablation measures `P[dtree = d]` and the stretch
//! distribution per topology family — including Waxman, whose Poisson
//! degrees should visibly weaken the assumption.

use crate::runner::run_parallel;
use crate::swarm::{sweep_trace_threads, Swarm, SwarmConfig};
use nearpeer_metrics::{Summary, Table};
use nearpeer_routing::bfs_distances;
use nearpeer_topology::generators::{
    BaConfig, GlpConfig, MapperConfig, TopologySpec, TransitStubConfig, WaxmanConfig,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A1 parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DtreeConfig {
    /// Peers per swarm.
    pub n_peers: usize,
    /// Landmarks.
    pub n_landmarks: usize,
    /// Peer pairs sampled per run.
    pub pairs: usize,
    /// Seeds per family.
    pub seeds: u64,
}

impl DtreeConfig {
    /// Standard configuration.
    pub fn standard(seeds: u64) -> Self {
        Self {
            n_peers: 300,
            n_landmarks: 4,
            pairs: 2_000,
            seeds,
        }
    }

    /// Reduced configuration for `--quick` and tests.
    pub fn quick() -> Self {
        Self {
            n_peers: 60,
            n_landmarks: 3,
            pairs: 200,
            seeds: 1,
        }
    }

    /// The topology families swept (sized to the peer count).
    pub fn families(&self) -> Vec<(String, TopologySpec)> {
        let access = (self.n_peers as f64 * 1.4) as usize + 16;
        let core = (self.n_peers * 2).max(100);
        vec![
            (
                "mapper".into(),
                TopologySpec::Mapper(MapperConfig::with_access(core, access)),
            ),
            (
                "ba".into(),
                TopologySpec::Ba(BaConfig {
                    n: core + access,
                    m: 2,
                }),
            ),
            (
                "glp".into(),
                TopologySpec::Glp(GlpConfig::default_with_n(core + access)),
            ),
            (
                "waxman".into(),
                TopologySpec::Waxman(WaxmanConfig {
                    n: core + access,
                    alpha: 0.12,
                    beta: 0.12,
                }),
            ),
            (
                "transit-stub".into(),
                TopologySpec::TransitStub(TransitStubConfig {
                    transit_domains: 3,
                    transit_size: 6,
                    stubs_per_transit_router: 3,
                    stub_size: 4,
                    extra_edge_prob: 0.25,
                    access_per_stub: 1 + access / (3 * 6 * 3),
                }),
            ),
        ]
    }
}

/// One family's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DtreePoint {
    /// Topology family name.
    pub family: String,
    /// `P[dtree = d]` over sampled pairs.
    pub exact_fraction: f64,
    /// Mean stretch `dtree / d`.
    pub stretch_mean: f64,
    /// 95th-percentile stretch.
    pub stretch_p95: f64,
    /// Pairs measured.
    pub pairs: usize,
}

/// Experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DtreeResult {
    /// Configuration used.
    pub config: DtreeConfig,
    /// One point per family.
    pub points: Vec<DtreePoint>,
}

impl DtreeResult {
    /// Paper-style rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "family".into(),
            "P[dtree = d]".into(),
            "stretch mean".into(),
            "stretch p95".into(),
            "pairs".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.family.clone(),
                format!("{:.1}%", p.exact_fraction * 100.0),
                format!("{:.3}", p.stretch_mean),
                format!("{:.3}", p.stretch_p95),
                p.pairs.to_string(),
            ]);
        }
        t
    }

    /// Point lookup by family.
    pub fn family(&self, name: &str) -> Option<&DtreePoint> {
        self.points.iter().find(|p| p.family == name)
    }
}

/// Runs the A1 ablation.
pub fn run(config: &DtreeConfig, threads: usize) -> DtreeResult {
    let families = config.families();
    let jobs: Vec<(usize, u64)> = (0..families.len())
        .flat_map(|f| (0..config.seeds).map(move |s| (f, s)))
        .collect();
    let cfg = config.clone();
    let fams = families.clone();
    // run_parallel clamps its workers to the job count; budget the inner
    // tracing pools against what will actually run, not what was asked.
    let sweep_workers = threads.clamp(1, jobs.len().max(1));
    let raw = run_parallel(jobs, threads, move |(family_idx, seed)| {
        let spec = &fams[family_idx].1;
        let topo = spec.generate(seed).expect("valid family config");
        // Swarm::build falls back to the lowest-degree routers on families
        // without degree-1 routers (BA with m >= 2), so only cap by the
        // router count itself.
        let swarm_cfg = SwarmConfig {
            n_peers: cfg.n_peers.min(topo.n_routers() / 2),
            n_landmarks: cfg.n_landmarks,
            trace_threads: sweep_trace_threads(sweep_workers),
            ..Default::default()
        };
        let swarm = Swarm::build(&topo, &swarm_cfg, seed).expect("swarm builds");

        let mut rng = StdRng::seed_from_u64(seed ^ 0xd7ee);
        let mut exact = 0usize;
        let mut stretches: Vec<f64> = Vec::with_capacity(cfg.pairs);
        let mut pool = swarm.peers.clone();
        if pool.len() < 2 {
            return (family_idx, 0, stretches);
        }
        for _ in 0..cfg.pairs {
            pool.shuffle(&mut rng);
            let (a, b) = (pool[0], pool[1]);
            let Some(dtree) = swarm.server.index().dtree(a, b) else {
                continue;
            };
            let dist = bfs_distances(swarm.topo, swarm.attachment[&a]);
            let d = dist[swarm.attachment[&b].index()];
            if d == u32::MAX || d == 0 {
                continue;
            }
            if dtree == d {
                exact += 1;
            }
            stretches.push(dtree as f64 / d as f64);
        }
        (family_idx, exact, stretches)
    });

    let points = families
        .iter()
        .enumerate()
        .map(|(idx, (name, _))| {
            let mut exact = 0usize;
            let mut stretches = Vec::new();
            for (fi, e, s) in raw.iter().filter(|r| r.0 == idx) {
                debug_assert_eq!(*fi, idx);
                exact += e;
                stretches.extend_from_slice(s);
            }
            let summary = Summary::new(&stretches);
            DtreePoint {
                family: name.clone(),
                exact_fraction: exact as f64 / stretches.len().max(1) as f64,
                stretch_mean: summary.as_ref().map_or(0.0, Summary::mean),
                stretch_p95: summary.as_ref().map_or(0.0, |s| s.percentile(95.0)),
                pairs: stretches.len(),
            }
        })
        .collect();
    DtreeResult {
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapper_assumption_holds_better_than_waxman() {
        // Averaged over a few seeds: the mapper-vs-waxman ordering is the
        // paper's claim in expectation, and a single quick-sized seed is
        // noisy enough to occasionally invert it.
        let config = DtreeConfig {
            seeds: 3,
            ..DtreeConfig::quick()
        };
        let result = run(&config, 4);
        assert_eq!(result.points.len(), 5);
        let mapper = result.family("mapper").unwrap();
        let waxman = result.family("waxman").unwrap();
        assert!(mapper.pairs > 0 && waxman.pairs > 0);
        // Stretch is always >= 1 (dtree cannot beat the true shortest path
        // when both paths share a router on the route).
        for p in &result.points {
            assert!(
                p.stretch_mean >= 0.999,
                "{}: stretch {}",
                p.family,
                p.stretch_mean
            );
        }
        // The heavy-tailed map must satisfy the assumption more often than
        // the geometric one.
        assert!(
            mapper.exact_fraction >= waxman.exact_fraction,
            "mapper {} < waxman {}",
            mapper.exact_fraction,
            waxman.exact_fraction
        );
        assert_eq!(result.table().n_rows(), 5);
    }
}
