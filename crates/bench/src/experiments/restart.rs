//! Crash-restart soak: churn a multi-region federation while one
//! region's every operation streams through the background
//! [`DurabilityWriter`] (incremental journal + rate-limited snapshot
//! offers), kill that region mid-load, and verify the durability
//! contract end to end:
//!
//! * the recovered directory (snapshot + journal replay) matches the
//!   dead server **exactly** — population, paths, epoch, tombstones and
//!   every conservation counter, with any drift counted and gated to 0;
//! * while the region is down the federation keeps answering queries
//!   homed there by fanning out over the live regions;
//! * after [`nearpeer_core::Federation::rejoin_region`] the region
//!   catches up to the
//!   cluster epoch and resumes serving, and the run still conserves
//!   population (every join accounted for by a leave, an expiry, or the
//!   final population) with zero leaked tombstones after the drain.
//!
//! A separate fault matrix ([`run_fault_matrix`]) drives recovery
//! through every [`FaultPlan`] arm — truncated and bit-rotted
//! snapshots, torn and corrupted journal tails, a writer killed between
//! batches — asserting each case recovers to the last consistent point
//! or fails closed with a typed error.

use crate::federation::synthetic_federation;
use crate::swarm::SyntheticJoins;
use nearpeer_core::federation::{FederationConfig, RegionId};
use nearpeer_core::{
    CoreError, DurabilityWriter, DurableBytes, FaultPlan, JournalOp, LandmarkId, ManagementServer,
    MemoryMedium, PeerId, ServerConfig, WriterConfig, WriterStats,
};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Restart soak parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RestartSoakConfig {
    /// Total fresh leases over the run (ids join once each).
    pub peers: usize,
    /// Regions (landmarks partition round-robin).
    pub regions: usize,
    /// Landmarks across the federation.
    pub n_landmarks: usize,
    /// Churn epochs to drive (joins spread evenly across them).
    pub epochs: u64,
    /// Lease length (and tombstone retention), epochs.
    pub max_age: u64,
    /// Heartbeat stride (must be < `max_age`).
    pub heartbeat_every: u64,
    /// Expiry sweep cadence, epochs.
    pub expire_every: u64,
    /// Percent of departures that leave gracefully (the rest go silent
    /// and expire).
    pub graceful_pct: u64,
    /// Sessions last `2 + hash % session_spread` epochs.
    pub session_spread: u64,
    /// The region whose durability pipeline is under test.
    pub victim: u32,
    /// Epoch at which the victim is killed (>= `epochs` disables the
    /// kill — the throughput-baseline shape).
    pub kill_at_epoch: u64,
    /// Epochs the victim stays down before rejoining.
    pub down_epochs: u64,
    /// Snapshot offer cadence, epochs.
    pub snapshot_every_epochs: u64,
    /// Writer-side snapshot rate limit, milliseconds (offers inside the
    /// window are skipped, not queued).
    pub min_snapshot_interval_ms: u64,
    /// Within-region re-path handovers per epoch on the victim.
    pub handovers_per_epoch: usize,
    /// Epochs between small cross-region forwarding moves off the
    /// victim (0 disables; these plant the tombstones the drain gate
    /// must retire).
    pub forward_every: u64,
    /// Queries homed in the victim region issued per down epoch (the
    /// fan-out fallback probe).
    pub queries_per_down_epoch: usize,
    /// Stream the victim's ops through a [`DurabilityWriter`]. `false`
    /// is the throughput baseline and requires the kill disabled.
    pub durability: bool,
}

impl RestartSoakConfig {
    /// The CI smoke shape: 100k leases over 4 regions, victim killed
    /// mid-load and rejoined 8 epochs later.
    pub fn smoke() -> Self {
        Self {
            peers: 100_000,
            regions: 4,
            n_landmarks: 8,
            epochs: 64,
            max_age: 8,
            heartbeat_every: 4,
            expire_every: 4,
            graceful_pct: 60,
            session_spread: 10,
            victim: 1,
            kill_at_epoch: 24,
            down_epochs: 8,
            snapshot_every_epochs: 4,
            min_snapshot_interval_ms: 200,
            handovers_per_epoch: 64,
            forward_every: 2,
            queries_per_down_epoch: 8,
            durability: true,
        }
    }

    /// A reduced shape for unit tests.
    pub fn quick() -> Self {
        Self {
            peers: 4_000,
            regions: 3,
            n_landmarks: 6,
            epochs: 32,
            max_age: 6,
            heartbeat_every: 3,
            expire_every: 3,
            graceful_pct: 50,
            session_spread: 8,
            victim: 1,
            kill_at_epoch: 10,
            down_epochs: 5,
            snapshot_every_epochs: 3,
            min_snapshot_interval_ms: 0,
            handovers_per_epoch: 8,
            forward_every: 2,
            queries_per_down_epoch: 4,
            durability: true,
        }
    }
}

/// Event dispositions accumulated over a restart soak.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestartSoakCounters {
    /// Fresh registrations applied.
    pub joins: u64,
    /// Graceful departures applied.
    pub leaves: u64,
    /// Leases expired by sweeps (all regions).
    pub expired: u64,
    /// Heartbeat renewals applied.
    pub heartbeats: u64,
    /// Within-region re-path handovers on the victim.
    pub handovers: u64,
    /// Cross-region forwarding moves off the victim.
    pub forward_moves: u64,
    /// Join items destined for the victim while it was down (clients
    /// fail over; these ids never enter the run).
    pub dropped_joins: u64,
    /// Graceful leaves destined for the down victim (those peers expire
    /// instead).
    pub dropped_leaves: u64,
    /// Heartbeats destined for the down victim.
    pub dropped_heartbeats: u64,
    /// Queries homed in the victim issued while it was down.
    pub fallback_queries: u64,
    /// The subset answered non-empty by fan-out over live regions.
    pub fallback_answered: u64,
    /// All applied operation items.
    pub events: u64,
    /// Epochs driven (excluding the drain).
    pub epochs_run: u64,
}

/// Restart soak output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RestartSoakResult {
    /// Configuration used.
    pub config: RestartSoakConfig,
    /// Event dispositions.
    pub counters: RestartSoakCounters,
    /// Largest registered population observed at an epoch boundary.
    pub peak_population: usize,
    /// Registered peers left after the replay + drain.
    pub final_population: usize,
    /// Tombstones held after the drain (must be 0).
    pub final_tombstones: usize,
    /// Whether the kill/rejoin cycle ran.
    pub killed: bool,
    /// Observable mismatches between the dead server and its recovery
    /// (population, paths, epoch, tombstones, each conservation
    /// counter). The headline gate: must be 0.
    pub recovered_drift: u64,
    /// Journal records replayed at recovery.
    pub recovery_journal_records: u64,
    /// Journal bytes consumed at recovery.
    pub recovery_journal_bytes: usize,
    /// Whether recovery hit a torn journal tail (must be false for a
    /// cleanly flushed kill).
    pub recovery_torn_tail: bool,
    /// Snapshots the writer installed (across both writer generations).
    pub snapshots_written: u64,
    /// Snapshot offers dropped by rate limiting.
    pub snapshots_skipped: u64,
    /// Journal ops accepted by the writer.
    pub writer_records: u64,
    /// Wall-clock seconds for the replay (including the drain).
    pub elapsed_secs: f64,
    /// Applied operation items per second.
    pub events_per_sec: f64,
}

/// Splitmix64 — the soak's only entropy, a pure function of its inputs.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counts observable mismatches between two directories: epoch,
/// population, tombstones, each conservation counter, and every
/// registered peer's path and landmark. Zero means the recovery landed
/// exactly on the dead server's state.
pub fn directory_drift(a: &ManagementServer, b: &ManagementServer) -> u64 {
    let mut drift = 0u64;
    drift += u64::from(a.epoch() != b.epoch());
    drift += u64::from(a.peer_count() != b.peer_count());
    drift += u64::from(a.tombstone_count() != b.tombstone_count());
    let (sa, sb) = (a.stats(), b.stats());
    drift += u64::from(sa.joins != sb.joins);
    drift += u64::from(sa.leaves != sb.leaves);
    drift += u64::from(sa.handovers != sb.handovers);
    drift += u64::from(sa.queries != sb.queries);
    drift += u64::from(sa.cross_landmark_fills != sb.cross_landmark_fills);
    let mut peers_a: Vec<PeerId> = a.index().peers().collect();
    peers_a.sort_unstable();
    let mut peers_b: Vec<PeerId> = b.index().peers().collect();
    peers_b.sort_unstable();
    if peers_a != peers_b {
        drift += 1;
    }
    for &p in &peers_a {
        if a.path_of(p) != b.path_of(p) || a.landmark_of(p) != b.landmark_of(p) {
            drift += 1;
        }
    }
    drift
}

struct Durability {
    writer: DurabilityWriter,
    store: Arc<Mutex<DurableBytes>>,
}

impl Durability {
    fn spawn(cfg: &RestartSoakConfig) -> Self {
        let medium = MemoryMedium::new();
        let store = medium.handle();
        let writer = DurabilityWriter::spawn(
            medium,
            WriterConfig {
                min_snapshot_interval: Duration::from_millis(cfg.min_snapshot_interval_ms),
                ..WriterConfig::default()
            },
        );
        Durability { writer, store }
    }
}

/// Runs the restart soak. Harness-level failures (a rejoin refused, no
/// snapshot installed before the kill) surface as `Err`; the pass/fail
/// gates live in [`check_restart_soak`].
pub fn run_restart_soak(cfg: &RestartSoakConfig, seed: u64) -> Result<RestartSoakResult, String> {
    assert!(cfg.expire_every >= 1 && cfg.heartbeat_every >= 1);
    assert!(
        cfg.heartbeat_every < cfg.max_age,
        "live peers must heartbeat within their lease"
    );
    let kill_enabled = cfg.kill_at_epoch < cfg.epochs;
    if kill_enabled && !cfg.durability {
        return Err("the kill/rejoin cycle needs durability on".into());
    }
    if kill_enabled {
        let rejoin_at = cfg.kill_at_epoch + cfg.down_epochs;
        if rejoin_at >= cfg.epochs {
            return Err("the victim must rejoin before the trace ends".into());
        }
        if cfg.regions < 2 {
            return Err("a kill needs live regions to serve around it".into());
        }
    }
    let gen = SyntheticJoins::new(cfg.n_landmarks);
    let mut fed = synthetic_federation(
        &gen,
        cfg.regions,
        FederationConfig {
            fanout: None,
            server: ServerConfig {
                neighbor_count: 5,
                cross_landmark_fallback: true,
                super_peers: None,
                adaptive_leases: None,
            },
        },
    )?;
    let victim = RegionId(cfg.victim);
    let rejoin_at = cfg.kill_at_epoch.saturating_add(cfg.down_epochs);

    // Stats of writer generations already closed (a restart spawns a
    // fresh generation; the result reports the accumulated totals).
    let mut closed_stats = WriterStats::default();
    let mut durability = cfg.durability.then(|| Durability::spawn(cfg));
    if let Some(d) = &durability {
        d.writer
            .offer_snapshot(fed.snapshot_region(victim).map_err(|e| e.to_string())?);
    }
    // Durable bytes captured at the kill; reused by the rejoin.
    let mut captured: Option<(Vec<u8>, Vec<u8>)> = None;

    // Per-id trace state: 0 = not joined, 1 = live, 2 = departed.
    let mut state = vec![0u8; cfg.peers];
    let mut current = vec![0u8; cfg.peers];
    // Leave schedule: (id, graceful) per epoch.
    let schedule_len = (cfg.epochs + cfg.session_spread + 4) as usize;
    let mut schedule: Vec<Vec<(u64, bool)>> = vec![Vec::new(); schedule_len];
    // Heartbeat stride groups (grow with joins; dead entries skipped).
    let mut groups: Vec<Vec<u64>> = vec![Vec::new(); cfg.heartbeat_every as usize];
    let joins_per_epoch = (cfg.peers as u64).div_ceil(cfg.epochs.max(1)) as usize;
    let mut next_id = 0u64;

    let mut c = RestartSoakCounters::default();
    let mut r = RestartSoakResult {
        config: cfg.clone(),
        counters: c,
        peak_population: 0,
        final_population: 0,
        final_tombstones: 0,
        killed: kill_enabled,
        recovered_drift: 0,
        recovery_journal_records: 0,
        recovery_journal_bytes: 0,
        recovery_torn_tail: false,
        snapshots_written: 0,
        snapshots_skipped: 0,
        writer_records: 0,
        elapsed_secs: 0.0,
        events_per_sec: 0.0,
    };
    let t0 = Instant::now();

    for e in 0..cfg.epochs {
        fed.advance_epoch();
        c.epochs_run += 1;
        let victim_up = !fed.region_down(victim);
        if victim_up {
            if let Some(d) = &durability {
                d.writer.append(JournalOp::AdvanceEpoch);
            }
        }

        // Rejoin: the region comes back from the captured bytes and
        // fast-forwards to the cluster epoch before taking traffic.
        if kill_enabled && e == rejoin_at {
            let (snap, journal) = captured.as_ref().expect("kill ran before rejoin");
            let report = fed
                .rejoin_region(victim, snap, journal)
                .map_err(|err| format!("rejoin refused: {err}"))?;
            r.recovery_journal_records = report.journal_records;
            r.recovery_journal_bytes = report.journal_bytes;
            r.recovery_torn_tail = report.journal_torn_tail;
            // A fresh writer generation picks up where the restart left
            // off: snapshot of the recovered state first, journal after.
            let d = Durability::spawn(cfg);
            d.writer
                .offer_snapshot(fed.snapshot_region(victim).map_err(|e| e.to_string())?);
            durability = Some(d);
        }

        // Joins: this epoch's slice of fresh ids, bucketed by home
        // region. Items homed in a down region are dropped (the client
        // would fail over and retry as a new session).
        let mut joins_by_region: Vec<Vec<(PeerId, nearpeer_core::PeerPath)>> =
            (0..cfg.regions).map(|_| Vec::new()).collect();
        for _ in 0..joins_per_epoch {
            if next_id as usize >= cfg.peers {
                break;
            }
            let id = next_id;
            next_id += 1;
            let home = fed.region_of_landmark(gen.landmark_of(id));
            if fed.region_down(home) {
                c.dropped_joins += 1;
                continue;
            }
            joins_by_region[home.index()].push(gen.join(id));
            state[id as usize] = 1;
            current[id as usize] = home.0 as u8;
            // Hash, don't mod: `id % stride` correlates with the home
            // landmark (`id % n_landmarks`) and would starve whole
            // phases of victim peers.
            groups[(mix(seed, id, 0) % cfg.heartbeat_every) as usize].push(id);
            let depart = e + 2 + mix(seed, id, 1) % cfg.session_spread;
            let graceful = mix(seed, id, 2) % 100 < cfg.graceful_pct;
            schedule[depart as usize].push((id, graceful));
        }
        for (region, batch) in joins_by_region.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let n = batch.len() as u64;
            let op = JournalOp::RegisterBatch(batch);
            if region == victim.index() {
                if let Some(d) = &durability {
                    d.writer.append(op.clone());
                }
            }
            fed.region_mut(RegionId(region as u32))
                .server_mut()
                .apply_journal_op(op);
            c.joins += n;
        }

        // The kill lands here — after the epoch's join load, before its
        // maintenance traffic ("mid-load").
        if kill_enabled && e == cfg.kill_at_epoch {
            let d = durability.take().expect("kill requires durability");
            merge_stats(&mut closed_stats, &d.writer.close());
            let bytes = d.store.lock().unwrap().clone();
            let snap = bytes
                .snapshot
                .ok_or("no snapshot installed before the kill")?;
            let journal = bytes.journal;
            let dead = fed
                .crash_region(victim)
                .map_err(|err| format!("crash refused: {err}"))?;
            let (recovered, _) = ManagementServer::recover(&snap, &journal)
                .map_err(|err| format!("recovery failed: {err}"))?;
            r.recovered_drift = directory_drift(&dead, &recovered);
            captured = Some((snap, journal));
        }

        let victim_up = !fed.region_down(victim);

        // Departures due this epoch.
        let mut leaves_by_region: Vec<Vec<PeerId>> = (0..cfg.regions).map(|_| Vec::new()).collect();
        for &(id, graceful) in &schedule[e as usize] {
            if state[id as usize] != 1 {
                continue;
            }
            state[id as usize] = 2;
            if graceful {
                leaves_by_region[current[id as usize] as usize].push(PeerId(id));
            }
        }
        for (region, batch) in leaves_by_region.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if fed.region_down(RegionId(region as u32)) {
                c.dropped_leaves += batch.len() as u64;
                continue;
            }
            let op = JournalOp::LeaveBatch(batch.clone());
            if region == victim.index() && victim_up {
                if let Some(d) = &durability {
                    d.writer.append(op.clone());
                }
            }
            let removed = {
                let server = fed.region_mut(RegionId(region as u32)).server_mut();
                let before = server.peer_count();
                server.apply_journal_op(op);
                before - server.peer_count()
            };
            c.leaves += removed as u64;
        }

        // Heartbeats: this epoch's stride group renews in place.
        let mut beats_by_region: Vec<Vec<PeerId>> = (0..cfg.regions).map(|_| Vec::new()).collect();
        let phase = (e % cfg.heartbeat_every) as usize;
        let mut victim_live: Vec<u64> = Vec::new();
        for &id in &groups[phase] {
            if state[id as usize] != 1 {
                continue;
            }
            let region = current[id as usize] as usize;
            if region == victim.index() {
                victim_live.push(id);
            }
            beats_by_region[region].push(PeerId(id));
        }
        for (region, batch) in beats_by_region.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if fed.region_down(RegionId(region as u32)) {
                c.dropped_heartbeats += batch.len() as u64;
                continue;
            }
            let n = batch.len() as u64;
            let op = JournalOp::RenewBatch(batch);
            if region == victim.index() && victim_up {
                if let Some(d) = &durability {
                    d.writer.append(op.clone());
                }
            }
            fed.region_mut(RegionId(region as u32))
                .server_mut()
                .apply_journal_op(op);
            c.heartbeats += n;
        }

        // Victim maintenance traffic: within-region re-path handovers,
        // plus occasional forwarding moves to a neighbor region (the
        // tombstone-planting path the drain gate exercises).
        if victim_up {
            let globals = fed.region(victim).landmark_globals().to_vec();
            let mut it = victim_live.iter().copied();
            for id in it.by_ref().take(cfg.handovers_per_epoch) {
                let g = globals[((id + e) % globals.len() as u64) as usize];
                let op = JournalOp::Handover {
                    peer: PeerId(id),
                    path: gen.path_to(id, LandmarkId(g)),
                };
                if let Some(d) = &durability {
                    d.writer.append(op.clone());
                }
                fed.region_mut(victim).server_mut().apply_journal_op(op);
                c.handovers += 1;
            }
            if cfg.forward_every > 0 && e % cfg.forward_every == 0 && cfg.regions > 1 {
                for id in it.take(4) {
                    let dest = RegionId(((victim.0 as u64 + 1 + e) % cfg.regions as u64) as u32);
                    if dest == victim || fed.region_down(dest) {
                        continue;
                    }
                    let op = JournalOp::DeregisterForwarding {
                        peer: PeerId(id),
                        to_region: dest.0,
                    };
                    if let Some(d) = &durability {
                        d.writer.append(op.clone());
                    }
                    fed.region_mut(victim).server_mut().apply_journal_op(op);
                    let dest_globals = fed.region(dest).landmark_globals().to_vec();
                    let g = dest_globals[(id % dest_globals.len() as u64) as usize];
                    fed.region_mut(dest)
                        .server_mut()
                        .apply_journal_op(JournalOp::RegisterBatch(vec![
                            gen.join_to(id, LandmarkId(g))
                        ]));
                    current[id as usize] = dest.0 as u8;
                    c.forward_moves += 1;
                }
            }
        }

        // Expiry sweep.
        if (e + 1) % cfg.expire_every == 0 {
            if victim_up {
                if let Some(d) = &durability {
                    d.writer.append(JournalOp::ExpireStale {
                        max_age: cfg.max_age,
                    });
                }
            }
            let sweep = fed.expire_stale(cfg.max_age);
            c.expired += sweep.expired.len() as u64;
        }

        // Snapshot offer (rate-limited writer-side).
        if victim_up && e > 0 && e % cfg.snapshot_every_epochs == 0 {
            if let Some(d) = &durability {
                d.writer
                    .offer_snapshot(fed.snapshot_region(victim).map_err(|err| err.to_string())?);
            }
        }

        // Fan-out fallback probe: queries homed in the down region must
        // still come back non-empty from the live regions.
        if fed.region_down(victim) {
            let globals = fed.region(victim).landmark_globals();
            for q in 0..cfg.queries_per_down_epoch as u64 {
                let g = globals[(q % globals.len() as u64) as usize];
                let path = gen.path_to(e.wrapping_mul(131).wrapping_add(q), LandmarkId(g));
                c.fallback_queries += 1;
                if !fed.closest_to_path(&path, 5, None).is_empty() {
                    c.fallback_answered += 1;
                }
            }
        }

        r.peak_population = r.peak_population.max(fed.peer_count());
    }

    // Drain: nobody renews past the trace; one lease length retires
    // every remaining lease and tombstone.
    for _ in 0..=(cfg.max_age + cfg.expire_every) {
        fed.advance_epoch();
        if let Some(d) = &durability {
            d.writer.append(JournalOp::AdvanceEpoch);
        }
    }
    if let Some(d) = &durability {
        d.writer.append(JournalOp::ExpireStale {
            max_age: cfg.max_age,
        });
    }
    let sweep = fed.expire_stale(cfg.max_age);
    c.expired += sweep.expired.len() as u64;

    if let Some(d) = durability.take() {
        merge_stats(&mut closed_stats, &d.writer.close());
    }
    r.snapshots_written = closed_stats.snapshots_written;
    r.snapshots_skipped = closed_stats.snapshots_skipped;
    r.writer_records = closed_stats.records;
    let elapsed = t0.elapsed().as_secs_f64();
    c.events = c.joins + c.leaves + c.heartbeats + c.handovers + c.forward_moves + c.expired;
    r.counters = c;
    r.final_population = fed.peer_count();
    r.final_tombstones = fed.tombstone_count();
    r.elapsed_secs = elapsed;
    r.events_per_sec = c.events as f64 / elapsed.max(1e-9);
    Ok(r)
}

fn merge_stats(into: &mut WriterStats, from: &WriterStats) {
    into.records += from.records;
    into.batches += from.batches;
    into.snapshots_written += from.snapshots_written;
    into.snapshots_skipped += from.snapshots_skipped;
    into.journal_bytes += from.journal_bytes;
    if into.error.is_none() {
        into.error = from.error.clone();
    }
}

/// The soak's pass/fail gates, shared by the binary and CI.
pub fn check_restart_soak(r: &RestartSoakResult) -> Result<(), String> {
    let c = r.counters;
    if r.recovered_drift != 0 {
        return Err(format!(
            "{} observable mismatches between the dead server and its recovery",
            r.recovered_drift
        ));
    }
    if c.joins != c.leaves + c.expired + r.final_population as u64 {
        return Err(format!(
            "population leak: {} joins vs {} leaves + {} expired + {} residual",
            c.joins, c.leaves, c.expired, r.final_population
        ));
    }
    if r.final_tombstones != 0 {
        return Err(format!(
            "{} forwarding tombstones leaked past the drain",
            r.final_tombstones
        ));
    }
    if r.killed {
        if r.recovery_torn_tail {
            return Err("torn journal tail after a cleanly flushed kill".into());
        }
        if c.fallback_queries == 0 || c.fallback_answered != c.fallback_queries {
            return Err(format!(
                "fan-out fallback: {} of {} down-region queries answered",
                c.fallback_answered, c.fallback_queries
            ));
        }
    }
    if r.config.durability && r.snapshots_written == 0 {
        return Err("no snapshot was ever installed".into());
    }
    Ok(())
}

/// One fault-matrix case's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultCaseResult {
    /// Case label.
    pub name: String,
    /// Whether the case met its contract.
    pub passed: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// Drives recovery through every [`FaultPlan`] arm over a small but
/// non-trivial directory and checks the contract per class: snapshot
/// damage fails closed with a typed error; journal damage replays to
/// the last intact record (bit rot is indistinguishable from a torn
/// tail by design); a writer killed between batches leaves a clean
/// record prefix.
pub fn run_fault_matrix() -> Vec<FaultCaseResult> {
    use nearpeer_core::directory::persist::journal::append_op;

    // A deterministic scenario: 200 joins snapshotted, then 120 mixed
    // ops journaled.
    let gen = SyntheticJoins::new(4);
    let mut live = gen.server(ServerConfig::default());
    live.apply_journal_op(JournalOp::RegisterBatch(
        (0..200).map(|i| gen.join(i)).collect(),
    ));
    let snapshot = live.snapshot_bytes().expect("no super peers");
    let mut ops: Vec<JournalOp> = Vec::new();
    for i in 0..120u64 {
        let op = match i % 6 {
            0 => JournalOp::AdvanceEpoch,
            1 => JournalOp::RenewBatch((0..10).map(|j| PeerId((i * 7 + j) % 200)).collect()),
            2 => JournalOp::Handover {
                peer: PeerId(i % 200),
                path: gen.path_to(i % 200, LandmarkId(((i % 200) % 4) as u32)),
            },
            3 => JournalOp::LeaveBatch(vec![PeerId((i * 13) % 200)]),
            4 => JournalOp::RegisterBatch(vec![gen.join(200 + i)]),
            _ => JournalOp::ExpireStale { max_age: 6 },
        };
        ops.push(op);
    }
    let mut journal = Vec::new();
    for op in &ops {
        append_op(&mut journal, op);
        live.apply_journal_op(op.clone());
    }

    let mut out = Vec::new();
    let prefix_control = |snap: &[u8], n: usize| -> ManagementServer {
        let (mut s, _) = ManagementServer::recover(snap, &[]).expect("pristine snapshot");
        for op in &ops[..n] {
            s.apply_journal_op(op.clone());
        }
        s
    };

    // Sanity: no fault, full equality.
    {
        let case = match ManagementServer::recover(&snapshot, &journal) {
            Ok((recovered, report)) => {
                let drift = directory_drift(&live, &recovered);
                FaultCaseResult {
                    name: "clean".into(),
                    passed: drift == 0 && report.journal_records == ops.len() as u64,
                    detail: format!("{} records, drift {drift}", report.journal_records),
                }
            }
            Err(e) => FaultCaseResult {
                name: "clean".into(),
                passed: false,
                detail: format!("refused: {e}"),
            },
        };
        out.push(case);
    }

    // Snapshot damage: must fail closed with a typed error.
    for (name, plan) in [
        (
            "snapshot_truncated",
            FaultPlan {
                snapshot_truncate: Some(snapshot.len() / 2),
                ..FaultPlan::none()
            },
        ),
        (
            "snapshot_bitrot",
            FaultPlan {
                snapshot_corrupt_at: Some(snapshot.len() / 3),
                ..FaultPlan::none()
            },
        ),
    ] {
        let mut bad = snapshot.clone();
        plan.damage_snapshot(&mut bad);
        let case = match ManagementServer::recover(&bad, &journal) {
            Err(CoreError::Persist(e)) => FaultCaseResult {
                name: name.into(),
                passed: true,
                detail: format!("failed closed: {e}"),
            },
            Err(e) => FaultCaseResult {
                name: name.into(),
                passed: false,
                detail: format!("wrong error class: {e}"),
            },
            Ok(_) => FaultCaseResult {
                name: name.into(),
                passed: false,
                detail: "damaged snapshot accepted".into(),
            },
        };
        out.push(case);
    }

    // Journal damage: replay stops at the last intact record and the
    // result equals a control that applied exactly that prefix.
    for (name, plan) in [
        (
            "journal_torn_tail",
            FaultPlan {
                journal_torn_tail: Some(5),
                ..FaultPlan::none()
            },
        ),
        (
            "journal_bitrot",
            FaultPlan {
                journal_corrupt_at: Some(journal.len() / 2),
                ..FaultPlan::none()
            },
        ),
    ] {
        let mut bad = journal.clone();
        plan.damage_journal(&mut bad);
        let case = match ManagementServer::recover(&snapshot, &bad) {
            Ok((recovered, report)) => {
                let n = report.journal_records as usize;
                let drift = directory_drift(&prefix_control(&snapshot, n), &recovered);
                FaultCaseResult {
                    name: name.into(),
                    passed: n < ops.len() && report.journal_torn_tail && drift == 0,
                    detail: format!("replayed {n}/{} records, drift {drift}", ops.len()),
                }
            }
            Err(e) => FaultCaseResult {
                name: name.into(),
                passed: false,
                detail: format!("refused instead of replaying the prefix: {e}"),
            },
        };
        out.push(case);
    }

    // Writer killed between batches: the journal ends at a batch
    // boundary — a clean record prefix, no torn tail.
    {
        let medium = MemoryMedium::new();
        let store = medium.handle();
        let writer = DurabilityWriter::spawn(
            medium,
            WriterConfig {
                queue_capacity: 1, // one op per batch
                min_snapshot_interval: Duration::ZERO,
                kill_after_batches: Some(6),
            },
        );
        writer.offer_snapshot(snapshot.clone());
        for op in &ops[..40] {
            writer.append(op.clone());
            // Let the worker drain so the kill point bites mid-stream.
            std::thread::sleep(Duration::from_millis(1));
        }
        writer.close();
        let bytes = store.lock().unwrap().clone();
        let case = match bytes.snapshot {
            Some(snap) => match ManagementServer::recover(&snap, &bytes.journal) {
                Ok((recovered, report)) => {
                    let n = report.journal_records as usize;
                    let drift = directory_drift(&prefix_control(&snap, n), &recovered);
                    FaultCaseResult {
                        name: "writer_killed".into(),
                        passed: n < 40 && !report.journal_torn_tail && drift == 0,
                        detail: format!("clean prefix of {n}/40 records, drift {drift}"),
                    }
                }
                Err(e) => FaultCaseResult {
                    name: "writer_killed".into(),
                    passed: false,
                    detail: format!("refused: {e}"),
                },
            },
            None => FaultCaseResult {
                name: "writer_killed".into(),
                passed: false,
                detail: "snapshot never installed".into(),
            },
        };
        out.push(case);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_survives_kill_and_rejoin_with_zero_drift() {
        let cfg = RestartSoakConfig::quick();
        let result = run_restart_soak(&cfg, 17).expect("soak runs");
        check_restart_soak(&result).expect("gates hold");
        let c = result.counters;
        assert!(result.killed);
        assert_eq!(result.recovered_drift, 0);
        assert!(c.fallback_queries > 0 && c.fallback_answered == c.fallback_queries);
        assert!(
            c.dropped_joins > 0,
            "the down window must drop victim joins"
        );
        assert!(c.forward_moves > 0, "tombstones must be exercised");
        assert!(result.snapshots_written >= 1);
        assert!(result.recovery_journal_records > 0);
    }

    #[test]
    fn baseline_without_durability_conserves_too() {
        let cfg = RestartSoakConfig {
            durability: false,
            kill_at_epoch: u64::MAX,
            ..RestartSoakConfig::quick()
        };
        let result = run_restart_soak(&cfg, 17).expect("soak runs");
        check_restart_soak(&result).expect("gates hold");
        assert!(!result.killed);
        assert_eq!(result.counters.dropped_joins, 0);
    }

    #[test]
    fn fault_matrix_passes_every_case() {
        for case in run_fault_matrix() {
            assert!(case.passed, "{}: {}", case.name, case.detail);
        }
    }
}
