//! Structured-concurrency sweep runner.

use crossbeam::channel;

/// Runs `f` over every item on `threads` scoped worker threads, returning
/// outputs in input order.
///
/// The workers never outlive the call (std scoped threads), and work is
/// distributed through a crossbeam channel so an expensive parameter point
/// cannot stall the queue behind it.
pub fn run_parallel<I, O, F>(items: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let (tx_in, rx_in) = channel::unbounded::<(usize, I)>();
    let (tx_out, rx_out) = channel::unbounded::<(usize, O)>();
    for pair in items.into_iter().enumerate() {
        tx_in.send(pair).expect("receiver alive");
    }
    drop(tx_in);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx_in = rx_in.clone();
            let tx_out = tx_out.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((idx, item)) = rx_in.recv() {
                    let out = f(item);
                    if tx_out.send((idx, out)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx_out);
        drop(rx_in);

        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        for (idx, out) in rx_out {
            slots[idx] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = run_parallel((0..100).collect(), 8, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_parallel((0..50).collect(), 4, |x: usize| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 50);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn empty_and_single_thread() {
        let out: Vec<i32> = run_parallel(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
        let out = run_parallel(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_parallel(vec![10, 20], 64, |x| x / 10);
        assert_eq!(out, vec![1, 2]);
    }
}
