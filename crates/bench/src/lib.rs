//! Experiment harness regenerating every figure/table of the paper.
//!
//! Each experiment from DESIGN.md §6 is a function in [`experiments`] plus a
//! thin binary in `src/bin/`:
//!
//! | id | binary | what it regenerates |
//! |----|--------|---------------------|
//! | F2 | `fig2_quality` | `D/Dclosest` and `Drandom/Dclosest` vs number of peers |
//! | C1/C2 | `complexity_scaling` | insertion/query cost vs population |
//! | C3 | `convergence_race` | probes-to-accuracy: path-tree vs Vivaldi vs GNP |
//! | W1 | `landmark_policies` | landmark count × placement sweep |
//! | W2 | `superpeers` | delegation coverage vs promotion threshold |
//! | W3 | `churn_handover` | staleness & quality under churn and mobility |
//! | W4 | `decreased_traceroute` | probe budget vs neighbor quality |
//! | A1 | `dtree_accuracy` | P[dtree = d] per topology family |
//! | A2 | `setup_delay` | end-to-end streaming setup delay per policy |
//! | —  | `internet_mapping` | map-statistics validation (§3 substitution) |
//! | —  | `churn_soak` | 10⁵–10⁶-peer churn replay through the batched lease path |
//! | —  | `federation_soak` | N-region churn + mobility replay through the federation front door |
//! | —  | `sub_soak` | standing-subscription soak: delta parity, latency CDF, coalescing under storms |
//! | —  | `sub_loadgen` | wire-level subscription client: SubAck/DeltaPush parity against `nearpeerd` |
//!
//! Binaries print the paper-style table, an ASCII rendition of the figure,
//! and write CSV + a JSON manifest under `target/experiments/<name>/`
//! (override with `NEARPEER_OUT`). All accept `--quick` for a reduced sweep
//! and `--seeds N` / `--threads N`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
mod federation;
mod output;
mod runner;
mod swarm;
pub mod wire;

pub use federation::{synthetic_federation, synthetic_move_landmark, FederatedSwarm};
pub use output::ExperimentWriter;
pub use runner::run_parallel;
pub use swarm::{
    churn_epoch_shard_parallel, expire_stale_shard_parallel, oracle_stats_line,
    register_shard_parallel, registry_stats_line, renew_shard_parallel, subs_stats_line,
    sweep_trace_threads, trace_round1, BuildPhases, BuildStrategy, Swarm, SwarmConfig,
    SyntheticJoins,
};
