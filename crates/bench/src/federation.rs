//! Federated swarm construction: a multi-region directory populated the
//! same two ways the single-server harness supports — from a real
//! topology's traced swarm, or from synthetic tree-consistent paths at
//! populations where tracing is prohibitive.

use crate::swarm::{Swarm, SyntheticJoins};
use nearpeer_core::federation::{Federation, FederationConfig, RegionId};
use nearpeer_core::{LandmarkId, PeerId, PeerPath, ServerConfig};

/// A populated federation plus the bookkeeping the experiments need.
pub struct FederatedSwarm {
    /// The multi-region directory.
    pub federation: Federation,
    /// Registered peers in registration order.
    pub peers: Vec<PeerId>,
    /// The synthetic path generator, when built synthetically (replays
    /// need it to derive handover paths).
    pub gen: Option<SyntheticJoins>,
}

impl FederatedSwarm {
    /// Re-homes an already-built (single-server) [`Swarm`] into an
    /// `n_regions` federation: the swarm's landmarks partition
    /// round-robin, the server's measured landmark distance matrix
    /// becomes the bridge source, and every registered peer's stored path
    /// re-registers with its home region — so federated answers can be
    /// compared against the single server's on identical populations.
    pub fn from_swarm(
        swarm: &Swarm<'_>,
        n_regions: usize,
        config: FederationConfig,
    ) -> Result<Self, String> {
        let mut federation = Federation::new(
            swarm.server.landmarks().to_vec(),
            swarm.server.landmark_distances().to_vec(),
            n_regions,
            config,
        )
        .map_err(|e| e.to_string())?;
        let joins: Vec<(PeerId, PeerPath)> = swarm
            .peers
            .iter()
            .map(|&p| {
                let path = swarm.server.path_of(p).expect("registered").clone();
                (p, path)
            })
            .collect();
        let out = federation.register_batch(joins);
        if out.joined != swarm.peers.len() {
            return Err(format!(
                "federated re-registration joined {} of {} peers",
                out.joined,
                swarm.peers.len()
            ));
        }
        Ok(Self {
            federation,
            peers: swarm.peers.clone(),
            gen: None,
        })
    }

    /// Builds a synthetic federation: `n_landmarks` landmarks (paths from
    /// [`SyntheticJoins`], all landmark pairs 4 hops apart like the churn
    /// soak's server), partitioned round-robin over `n_regions`, with
    /// `n_peers` peers registered write-only through the federation's
    /// batched path.
    pub fn build_synthetic(
        n_landmarks: usize,
        n_regions: usize,
        n_peers: usize,
        config: FederationConfig,
    ) -> Result<Self, String> {
        let gen = SyntheticJoins::new(n_landmarks);
        let mut federation = synthetic_federation(&gen, n_regions, config)?;
        let peers: Vec<PeerId> = (0..n_peers as u64).map(PeerId).collect();
        let joins: Vec<(PeerId, PeerPath)> = (0..n_peers as u64).map(|i| gen.join(i)).collect();
        let out = federation.register_batch(joins);
        if out.joined != n_peers {
            return Err(format!(
                "synthetic federation joined {} of {n_peers} peers",
                out.joined
            ));
        }
        Ok(Self {
            federation,
            peers,
            gen: Some(gen),
        })
    }

    /// The home region of a synthetic peer (landmark `peer % L`, region
    /// round-robin `landmark % R`).
    pub fn synthetic_home(&self, peer: u64) -> RegionId {
        let gen = self.gen.as_ref().expect("synthetic build");
        self.federation.region_of_landmark(gen.landmark_of(peer))
    }
}

/// An **empty** federation matching a [`SyntheticJoins`] generator: its
/// landmark routers and the soak's flat 4-hop distance matrix, partitioned
/// round-robin over `n_regions`.
pub fn synthetic_federation(
    gen: &SyntheticJoins,
    n_regions: usize,
    config: FederationConfig,
) -> Result<Federation, String> {
    // Mirror SyntheticJoins::server: landmark routers 0..L, all pairs 4
    // hops apart (queries rank all bridges equally; writes don't care).
    let n = gen.n_landmarks();
    let reference = gen.server(ServerConfig::default());
    Federation::new(
        reference.landmarks().to_vec(),
        (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0 } else { 4 }).collect())
            .collect(),
        n_regions,
        config,
    )
    .map_err(|e| e.to_string())
}

/// A landmark of `region` for a synthetic peer to re-trace to on a
/// federated move: deterministic per `(peer, region)` so replays are pure
/// functions of the trace.
pub fn synthetic_move_landmark(federation: &Federation, peer: u64, region: RegionId) -> LandmarkId {
    let globals = federation.region(region).landmark_globals();
    LandmarkId(globals[(peer as usize) % globals.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swarm::SwarmConfig;
    use nearpeer_topology::generators::{mapper, MapperConfig};

    #[test]
    fn synthetic_federation_partitions_and_registers() {
        let fed = FederatedSwarm::build_synthetic(6, 3, 120, FederationConfig::default()).unwrap();
        assert_eq!(fed.federation.n_regions(), 3);
        assert_eq!(fed.federation.peer_count(), 120);
        // Round-robin: landmarks {0,3} / {1,4} / {2,5}.
        assert_eq!(
            fed.federation.region(RegionId(1)).landmark_globals(),
            &[1, 4]
        );
        // Every peer landed in its landmark's region.
        for p in 0..120u64 {
            assert_eq!(
                fed.federation.region_of_peer(PeerId(p)),
                Some(fed.synthetic_home(p)),
                "peer {p}"
            );
        }
        // Move landmarks always belong to the requested region.
        for p in 0..12u64 {
            for r in 0..3u32 {
                let lm = synthetic_move_landmark(&fed.federation, p, RegionId(r));
                assert_eq!(fed.federation.region_of_landmark(lm), RegionId(r));
            }
        }
    }

    #[test]
    fn from_swarm_reproduces_the_population() {
        let topo = mapper(&MapperConfig::tiny(), 5).unwrap();
        let cfg = SwarmConfig {
            n_peers: 40,
            n_landmarks: 4,
            ..Default::default()
        };
        let swarm = Swarm::build(&topo, &cfg, 1).unwrap();
        let fed = FederatedSwarm::from_swarm(&swarm, 2, FederationConfig::default()).unwrap();
        assert_eq!(fed.federation.peer_count(), 40);
        // Stored paths survive the re-homing byte for byte.
        for &p in &swarm.peers {
            let (_, path) = fed.federation.locate(p).expect("registered");
            assert_eq!(path, swarm.server.path_of(p).unwrap());
        }
        // The bridge matrix derives from the same measured distances.
        let d = swarm.server.landmark_distances();
        let min_cross: u32 = (0..4)
            .flat_map(|a| (0..4).map(move |b| (a, b)))
            .filter(|&(a, b)| a % 2 == 0 && b % 2 == 1)
            .map(|(a, b)| d[a][b])
            .min()
            .unwrap();
        assert_eq!(fed.federation.bridge(RegionId(0), RegionId(1)), min_cross);
    }
}
