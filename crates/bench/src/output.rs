//! Experiment artifact output: CSVs and JSON manifests.

use serde::Serialize;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Writes an experiment's artifacts under
/// `$NEARPEER_OUT|target/experiments/<experiment>/`.
#[derive(Debug, Clone)]
pub struct ExperimentWriter {
    dir: PathBuf,
}

impl ExperimentWriter {
    /// Creates the output directory for an experiment.
    pub fn new(experiment: &str) -> std::io::Result<Self> {
        let base = std::env::var_os("NEARPEER_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/experiments"));
        let dir = base.join(experiment);
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The experiment's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a text artifact (CSV, table dump) and returns its path.
    pub fn write_text(&self, filename: &str, content: &str) -> std::io::Result<PathBuf> {
        let path = self.dir.join(filename);
        let mut f = fs::File::create(&path)?;
        f.write_all(content.as_bytes())?;
        Ok(path)
    }

    /// Writes a JSON artifact and returns its path.
    pub fn write_json<T: Serialize>(&self, filename: &str, value: &T) -> std::io::Result<PathBuf> {
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.write_text(filename, &json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_into_env_dir() {
        let tmp = std::env::temp_dir().join(format!("nearpeer-writer-test-{}", std::process::id()));
        std::env::set_var("NEARPEER_OUT", &tmp);
        let w = ExperimentWriter::new("unit").unwrap();
        let p = w.write_text("hello.csv", "a,b\n1,2\n").unwrap();
        assert!(p.exists());
        assert_eq!(fs::read_to_string(&p).unwrap(), "a,b\n1,2\n");
        let j = w
            .write_json("m.json", &serde_json::json!({"k": 1}))
            .unwrap();
        assert!(fs::read_to_string(&j).unwrap().contains("\"k\": 1"));
        std::env::remove_var("NEARPEER_OUT");
        let _ = fs::remove_dir_all(tmp);
    }
}
