//! Swarm construction: the common setup of every experiment.
//!
//! Mirrors the paper's §3 initialisation: peers attach to degree-1 routers,
//! landmarks to medium-degree routers, every peer traceroutes to its
//! closest landmark (by RTT) and registers with the management server.
//!
//! Both rounds are parallel:
//!
//! * **Round 1 (tracing)** fans the simulated traceroutes out over peer
//!   chunks on crossbeam scoped threads, all probing one shared
//!   [`RouteOracle`] whose landmark trees are precomputed into an arena
//!   ([`RouteOracle::with_destinations`]). Every peer's trace seeds its own
//!   RNG (`seed ^ i·0x9E37_79B9`), so the traced paths and probe costs are
//!   bit-identical to a sequential run — `tests/determinism.rs` pins this.
//! * **Round 2 (registration)** supports three [`BuildStrategy`]s over the
//!   same traced paths — one join at a time (the paper's protocol), one
//!   batched call, or shard-parallel (crossbeam scoped threads, one per
//!   landmark shard) — all producing identical directory state.

use nearpeer_core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer_core::{
    LandmarkId, ManagementServer, PeerId, PeerPath, ServerConfig, SubscriptionStats,
    TelemetryRegistry,
};
use nearpeer_probe::{TraceConfig, TraceResult, TraceScratch, Tracer};
use nearpeer_routing::{OracleStats, RouteOracle};
use nearpeer_topology::{RouterId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How the traced paths are fed into the management server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildStrategy {
    /// One `register` call per peer, as the deployed protocol would: each
    /// join is answered against the population registered so far.
    Sequential,
    /// One `register_batch` call: inserts grouped by landmark (amortised
    /// tree descent), answers computed against the full swarm.
    Batched,
    /// Shard-parallel: every landmark's shard inserts its own batch on a
    /// crossbeam scoped thread, then join answers are computed by
    /// concurrent `&self` queries. The default — it is the layering this
    /// refactor exists for, and produces the same directory state as the
    /// other two.
    #[default]
    ShardParallel,
}

/// Swarm-building parameters.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Number of peers to attach and register.
    pub n_peers: usize,
    /// Number of landmarks.
    pub n_landmarks: usize,
    /// Landmark placement policy (the paper uses medium-degree routers).
    pub placement: PlacementPolicy,
    /// Neighbors per join answer (`k`).
    pub neighbor_count: usize,
    /// Traceroute behaviour (probe plan, faults).
    pub trace: TraceConfig,
    /// Enables the server's cross-landmark fallback.
    pub cross_landmark_fallback: bool,
    /// Registration strategy. Round-1 tracing is parallel either way (the
    /// shared route oracle is the ground truth, and per-peer trace seeds
    /// make the results independent of thread count); this only picks how
    /// the traced paths are fed to the server.
    pub build: BuildStrategy,
    /// Worker threads for round-1 tracing; `None` picks
    /// `available_parallelism` (falling back to sequential tracing on
    /// single-core hosts). `Some(1)` forces the sequential path — the
    /// results are bit-identical either way.
    pub trace_threads: Option<usize>,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        Self {
            n_peers: 200,
            n_landmarks: 4,
            placement: PlacementPolicy::DegreeMedium,
            neighbor_count: 5,
            trace: TraceConfig::default(),
            cross_landmark_fallback: true,
            build: BuildStrategy::default(),
            trace_threads: None,
        }
    }
}

/// Per-peer join cost bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinCost {
    /// Traceroute probes sent.
    pub probes: u32,
    /// Wall-clock cost of the traceroute, in microseconds.
    pub trace_elapsed_us: u64,
}

/// Wall-clock split of one [`Swarm::build`] call, phase by phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildPhases {
    /// Round 1: oracle arena precompute + closest-landmark selection +
    /// the (parallel) simulated traceroutes + per-peer path/cost
    /// bookkeeping.
    pub trace: Duration,
    /// Round 2: server bootstrap (landmark distance matrix, reusing the
    /// round-1 arena) + feeding the traced paths to the server.
    pub register: Duration,
    /// Trace workers actually used for round 1 (the resolved value of
    /// [`SwarmConfig::trace_threads`]).
    pub trace_threads: usize,
    /// The oracle's tree-accounting counters at the end of the build —
    /// how many shortest-path trees the whole swarm construction cost.
    /// On the default trace path `oracle.lazy_trees_built == 0`: round 1
    /// runs entirely out of the O(landmarks) eager arena (`scale_smoke`
    /// gates this in CI).
    pub oracle: OracleStats,
    /// Subscription-plane counters, for builds whose driver ran a
    /// standing-subscription phase afterwards (`None` straight out of
    /// [`Swarm::build`] — a fresh swarm has no subscribers yet; `sub_soak`
    /// stashes the registry's final counters here so reports render
    /// through the same struct).
    pub subs: Option<SubscriptionStats>,
}

/// A fully initialised swarm: topology + landmarks + populated server.
pub struct Swarm<'t> {
    /// The substrate.
    pub topo: &'t Topology,
    /// The route oracle the swarm was traced through, slimmed back down to
    /// its landmark-tree arena (the per-intermediate-router trees built
    /// during tracing are discarded — they would pin far too much memory
    /// for the swarm's lifetime). Experiments that need ground-truth RTTs
    /// (the coordinate baselines) should reuse it rather than re-running
    /// the landmark BFS set.
    pub oracle: RouteOracle<'t>,
    /// Landmark routers (index = `LandmarkId`).
    pub landmarks: Vec<RouterId>,
    /// The populated management server.
    pub server: ManagementServer,
    /// Registered peers in registration order.
    pub peers: Vec<PeerId>,
    /// Peer → access router.
    pub attachment: HashMap<PeerId, RouterId>,
    /// Peer → traceroute cost.
    pub join_cost: HashMap<PeerId, JoinCost>,
    /// Wall-clock spent in each build phase (trace vs register).
    pub phases: BuildPhases,
}

impl<'t> Swarm<'t> {
    /// Builds a swarm (deterministic per seed).
    ///
    /// Fails if the topology has fewer degree-1 routers than peers, or if a
    /// peer ends up with no reachable landmark.
    pub fn build(topo: &'t Topology, config: &SwarmConfig, seed: u64) -> Result<Self, String> {
        let landmarks = place_landmarks(topo, config.n_landmarks, config.placement, seed);
        if landmarks.is_empty() {
            return Err("no landmarks could be placed".into());
        }
        let mut access = topo.access_routers();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7377_61726d); // "swarm"
        access.shuffle(&mut rng);
        if access.len() < config.n_peers {
            // Families without degree-1 routers (e.g. BA with m >= 2):
            // fall back to the lowest-degree non-landmark routers, which is
            // the closest analogue of "the network edge" those maps offer.
            let taken: std::collections::HashSet<RouterId> = access
                .iter()
                .copied()
                .chain(landmarks.iter().copied())
                .collect();
            let mut fallback: Vec<RouterId> =
                topo.routers().filter(|r| !taken.contains(r)).collect();
            fallback.sort_by_key(|&r| (topo.degree(r), r));
            access.extend(fallback.into_iter().take(config.n_peers - access.len()));
        }
        if access.len() < config.n_peers {
            return Err(format!(
                "topology has only {} usable access routers but {} peers requested",
                access.len(),
                config.n_peers
            ));
        }
        access.truncate(config.n_peers);

        let t_trace = Instant::now();
        // Round 1 for everyone: pick the closest landmark by RTT, then
        // traceroute. The landmark trees are precomputed into the oracle's
        // arena on the same worker count as the traces (so a forced
        // `Some(1)` is genuinely sequential end to end), making the
        // closest-landmark RTT scan and every trace's route extraction
        // lock-free reads; the traces themselves fan out over peer chunks
        // in [`trace_round1`].
        let threads = config.trace_threads.unwrap_or_else(auto_build_threads);
        let mut oracle = RouteOracle::with_destinations_threads(topo, &landmarks, threads);
        let tracer = Tracer::new(&oracle, config.trace);
        let mut jobs: Vec<(RouterId, RouterId)> = Vec::with_capacity(config.n_peers);
        for &attach in &access {
            let closest = landmarks
                .iter()
                .filter_map(|&lm| oracle.rtt_us(attach, lm).map(|rtt| (rtt, lm)))
                .min()
                .map(|(_, lm)| lm)
                .ok_or_else(|| format!("peer at {attach} reaches no landmark"))?;
            jobs.push((attach, closest));
        }
        let traces = trace_round1(&tracer, &jobs, seed, threads);

        let mut peers = Vec::with_capacity(config.n_peers);
        let mut attachment = HashMap::with_capacity(config.n_peers);
        let mut join_cost = HashMap::with_capacity(config.n_peers);
        let mut joins: Vec<(PeerId, PeerPath)> = Vec::with_capacity(config.n_peers);
        for (i, trace) in traces.into_iter().enumerate() {
            let peer = PeerId(i as u64);
            let (attach, closest) = jobs[i];
            let trace = trace.ok_or_else(|| format!("trace from {attach} to {closest} failed"))?;
            let path =
                PeerPath::new(trace.router_path()).map_err(|e| format!("bad traced path: {e}"))?;
            joins.push((peer, path));
            peers.push(peer);
            attachment.insert(peer, attach);
            join_cost.insert(
                peer,
                JoinCost {
                    probes: trace.probes_sent,
                    trace_elapsed_us: trace.elapsed_us,
                },
            );
        }
        let trace_elapsed = t_trace.elapsed();

        let t_register = Instant::now();
        // Reuse the trace oracle: its arena already holds every landmark
        // tree the bootstrap distance matrix needs.
        let mut server = ManagementServer::bootstrap_with_oracle(
            &oracle,
            landmarks.clone(),
            ServerConfig {
                neighbor_count: config.neighbor_count,
                cross_landmark_fallback: config.cross_landmark_fallback,
                super_peers: None,
                adaptive_leases: None,
            },
        );

        // Round 2: feed the paths to the server.
        match config.build {
            BuildStrategy::Sequential => {
                for (peer, path) in joins {
                    server
                        .register(peer, path)
                        .map_err(|e| format!("register {peer}: {e}"))?;
                }
            }
            BuildStrategy::Batched => {
                for (result, &peer) in server.register_batch(joins).iter().zip(&peers) {
                    result
                        .as_ref()
                        .map_err(|e| format!("register {peer}: {e}"))?;
                }
            }
            BuildStrategy::ShardParallel => {
                register_shard_parallel(&mut server, joins)?;
            }
        }
        // The default trace path reads everything off the landmark arena;
        // only `exact_hop_rtts` (or ad-hoc callers) populate the lazy
        // cache, and that cache is both capped and dropped here — keep
        // only the landmark arena on the stored oracle.
        let oracle_stats = oracle.stats();
        oracle.discard_lazy_trees();
        Ok(Self {
            topo,
            oracle,
            landmarks,
            server,
            peers,
            attachment,
            join_cost,
            phases: BuildPhases {
                trace: trace_elapsed,
                register: t_register.elapsed(),
                trace_threads: threads,
                oracle: oracle_stats,
                subs: None,
            },
        })
    }

    /// Mean traceroute probes per join.
    pub fn mean_probes(&self) -> f64 {
        if self.join_cost.is_empty() {
            return 0.0;
        }
        self.join_cost
            .values()
            .map(|c| c.probes as f64)
            .sum::<f64>()
            / self.join_cost.len() as f64
    }

    /// Mean traceroute wall-clock per join, microseconds.
    pub fn mean_trace_elapsed_us(&self) -> f64 {
        if self.join_cost.is_empty() {
            return 0.0;
        }
        self.join_cost
            .values()
            .map(|c| c.trace_elapsed_us as f64)
            .sum::<f64>()
            / self.join_cost.len() as f64
    }
}

/// Renders a stats snapshot through a throwaway [`TelemetryRegistry`] so
/// every offline bench prints the same `name=value` compact line as the
/// live plane's `--stats-every` dumps and `StatsReply` scrapes — one
/// metric vocabulary everywhere, zeros elided.
pub fn registry_stats_line(prefix: &str, fill: impl FnOnce(&TelemetryRegistry)) -> String {
    let reg = TelemetryRegistry::new();
    fill(&reg);
    format!("{prefix}: {}", reg.snapshot().compact_line())
}

/// Registry-snapshot line for an [`OracleStats`], shared by `scale_smoke`,
/// `churn_preview` and `run_all` so tree-count observability reads the
/// same everywhere:
/// `oracle: oracle_arena_hits_total=29000 oracle_eager_trees_total=8 oracle_scratch_reuses_total=7`.
pub fn oracle_stats_line(stats: &OracleStats) -> String {
    registry_stats_line("oracle", |reg| {
        reg.counter("oracle_eager_trees_total")
            .add(stats.eager_trees_built);
        reg.counter("oracle_lazy_trees_total")
            .add(stats.lazy_trees_built);
        reg.counter("oracle_arena_hits_total").add(stats.arena_hits);
        reg.counter("oracle_lazy_hits_total").add(stats.lazy_hits);
        reg.counter("oracle_scratch_reuses_total")
            .add(stats.scratch_reuses);
        reg.counter("oracle_lazy_evictions_total")
            .add(stats.lazy_evictions);
    })
}

/// Registry-snapshot line for a [`SubscriptionStats`], the subscription
/// plane's sibling of [`oracle_stats_line`]. Metric names match what
/// [`SubscriptionRegistry::bind_telemetry`] exposes live, so a soak log
/// line and a `nearpeerd` scrape read identically.
///
/// [`SubscriptionRegistry::bind_telemetry`]: nearpeer_core::SubscriptionRegistry::bind_telemetry
pub fn subs_stats_line(stats: &SubscriptionStats) -> String {
    registry_stats_line("subs", |reg| {
        reg.gauge("sub_active").set(stats.active);
        reg.counter("sub_pushed_total").add(stats.pushed);
        reg.counter("sub_coalesced_total").add(stats.coalesced);
        reg.counter("sub_dropped_to_coalesce_total")
            .add(stats.dropped_to_coalesce);
        reg.counter("sub_refills_total").add(stats.refills);
        // Seed the peak first: `Gauge::set` folds into the high-water
        // mark, so the rendered gauge carries both now and peak.
        let queue = reg.gauge("sub_queue_depth");
        queue.set(stats.peak_queue_depth);
        queue.set(stats.queue_depth);
    })
}

/// Worker count for the adaptive build paths (round-1 tracing when
/// [`SwarmConfig::trace_threads`] is unset, and shard-parallel
/// registration): one per core, degenerating to the sequential/batched
/// path on single-core hosts — where scoped threads would only add spawn
/// overhead — and, conservatively, when `available_parallelism` errors.
pub(crate) fn auto_build_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The round-1 trace worker budget for a swarm built **inside a sweep**
/// already running `sweep_workers` parallel jobs (`run_parallel`): the
/// machine's cores divided by the outer worker count, floored at one.
///
/// Without this, every sweep job's `Swarm::build` spawned its own
/// `available_parallelism` tracing pool *under* the sweep's
/// `available_parallelism` workers — `cores²` runnable threads on seed
/// sweeps, all contending for the same cores. Experiments thread this
/// budget into [`SwarmConfig::trace_threads`], so outer × inner never
/// exceeds the machine (`Some(1)` = genuinely sequential inner builds,
/// which on an oversubscribed sweep is exactly right).
pub fn sweep_trace_threads(sweep_workers: usize) -> Option<usize> {
    Some((auto_build_threads() / sweep_workers.max(1)).max(1))
}

/// Per-peer trace seed: each newcomer `i` derives its own RNG stream from
/// the swarm seed, so a trace's outcome depends only on `(topology, config,
/// seed, i)` — never on which thread ran it or in what order.
fn trace_seed(seed: u64, i: usize) -> u64 {
    seed ^ (i as u64).wrapping_mul(0x9E37_79B9)
}

/// Runs round 1 — one simulated traceroute per `(source, landmark)` job —
/// on `threads` crossbeam scoped threads over contiguous peer chunks, all
/// sharing one [`Tracer`] (and through it one `Sync` [`RouteOracle`]).
///
/// `results[i]` is job `i`'s trace (`None` if source and landmark are
/// disconnected), **bit-identical** to calling
/// `tracer.trace(jobs[i].0, jobs[i].1, seed ^ i·0x9E37_79B9)` in a plain
/// sequential loop: every peer seeds its own RNG, and the shared oracle's
/// tree cache is write-once per destination. `threads <= 1` runs exactly
/// that sequential loop. Used by [`Swarm::build`] and the
/// `trace_throughput` bench.
pub fn trace_round1(
    tracer: &Tracer<'_, '_>,
    jobs: &[(RouterId, RouterId)],
    seed: u64,
    threads: usize,
) -> Vec<Option<TraceResult>> {
    if threads <= 1 || jobs.len() < 2 {
        let mut scratch = TraceScratch::new();
        return jobs
            .iter()
            .enumerate()
            .map(|(i, &(src, dst))| {
                tracer.trace_with_scratch(src, dst, trace_seed(seed, i), &mut scratch)
            })
            .collect();
    }
    // Contiguous chunks, like the register-phase query workers: a trace is
    // tens of microseconds, so per-item dispatch through a channel would
    // dominate the traces themselves.
    let chunk = jobs.len().div_ceil(threads.min(jobs.len()));
    let mut results: Vec<Option<TraceResult>> = vec![None; jobs.len()];
    crossbeam::thread::scope(|scope| {
        for (chunk_idx, (jobs_chunk, out_chunk)) in jobs
            .chunks(chunk)
            .zip(results.chunks_mut(chunk))
            .enumerate()
        {
            let base = chunk_idx * chunk;
            scope.spawn(move |_| {
                // One scratch per worker: route/TTL/coin-flip buffers are
                // reused across the whole chunk.
                let mut scratch = TraceScratch::new();
                for (k, (&(src, dst), slot)) in
                    jobs_chunk.iter().zip(out_chunk.iter_mut()).enumerate()
                {
                    *slot = tracer.trace_with_scratch(
                        src,
                        dst,
                        trace_seed(seed, base + k),
                        &mut scratch,
                    );
                }
            });
        }
    })
    .expect("trace workers never panic");
    results
}

/// Registers a batch of joins shard-parallel: group by landmark, insert
/// each group on its own crossbeam scoped thread (disjoint
/// [`nearpeer_core::DirectoryShard`]s share nothing), then compute one join
/// answer per peer through the server's concurrent `&self` query path — so
/// stats and answers match what the sequential protocol would have produced
/// against the full swarm. Used by [`BuildStrategy::ShardParallel`] and the
/// `join_throughput` bench.
pub fn register_shard_parallel(
    server: &mut ManagementServer,
    joins: Vec<(PeerId, PeerPath)>,
) -> Result<(), String> {
    let threads = auto_build_threads();
    if threads <= 1 {
        // Single-core host: scoped threads would only add spawn overhead.
        // The batched path produces identical directory state and stats
        // (one insert and one answered query per peer).
        for result in server.register_batch(joins) {
            result.map_err(|e| e.to_string())?;
        }
        return Ok(());
    }
    let epoch = server.epoch();
    let n = joins.len();
    let mut groups: Vec<Vec<(PeerId, PeerPath)>> =
        (0..server.landmarks().len()).map(|_| Vec::new()).collect();
    let mut query_order: Vec<PeerId> = Vec::with_capacity(n);
    for (peer, path) in joins {
        let lm = server
            .landmark_at_router(path.landmark_router())
            .ok_or_else(|| format!("{peer} traced to a non-landmark router"))?;
        query_order.push(peer);
        groups[lm.index()].push((peer, path));
    }
    let inserted: usize = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = server
            .shards_mut()
            .iter_mut()
            .zip(groups)
            .map(|(shard, items)| scope.spawn(move |_| shard.insert_batch(items, epoch)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
    .expect("scoped shard builders never panic");
    if inserted != n {
        return Err(format!(
            "shard-parallel build inserted {inserted} of {n} peers (duplicate ids?)"
        ));
    }
    let k = server.config().neighbor_count;
    let server = &*server;
    // Contiguous chunks instead of a work queue: each answer is
    // microseconds, so per-item dispatch would dominate the queries.
    let chunk = query_order.len().div_ceil(threads).max(1);
    crossbeam::thread::scope(|scope| {
        for slice in query_order.chunks(chunk) {
            scope.spawn(move |_| {
                for &peer in slice {
                    let _answered = server.neighbors_of(peer, k).is_ok();
                    debug_assert!(_answered, "{peer} was inserted above");
                }
            });
        }
    })
    .expect("query workers never panic");
    Ok(())
}

/// Synthetic tree-consistent join generator for populations where the
/// simulated round-1 traceroutes are prohibitive (the churn soak's
/// 10⁵–10⁶ peers; tracing runs at ~10³ peers/s on one core).
///
/// Router ids pack `(landmark, level, prefix)`, so peers of one landmark
/// share path suffixes exactly like traced routes (exercising the path
/// tree, interning and the router index realistically), each peer gets a
/// unique access router, and distinct landmarks never collide. A peer's
/// landmark and path are **pure functions of its id** — a peer that
/// leaves and rejoins re-traces to the same landmark, which is what makes
/// the shard-parallel churn path's per-landmark grouping safe.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticJoins {
    n_landmarks: u32,
    branching: u64,
    depth: u32,
}

impl SyntheticJoins {
    /// A generator over `n_landmarks` landmarks (routers `0..n`), with the
    /// join_throughput bench's shape: branching 4, depth 8.
    pub fn new(n_landmarks: usize) -> Self {
        assert!(
            (1..=64).contains(&n_landmarks),
            "synthetic landmark ids are packed into 6 bits"
        );
        Self {
            n_landmarks: n_landmarks as u32,
            branching: 4,
            depth: 8,
        }
    }

    /// The number of landmarks this generator packs paths for.
    pub fn n_landmarks(&self) -> usize {
        self.n_landmarks as usize
    }

    /// The landmark peer `i` (re-)traces to.
    pub fn landmark_of(&self, peer: u64) -> LandmarkId {
        LandmarkId((peer % self.n_landmarks as u64) as u32)
    }

    /// Peer `i`'s router path: unique access router, shared mid-levels,
    /// terminating at its landmark's router.
    pub fn path(&self, peer: u64) -> PeerPath {
        self.path_to(peer, self.landmark_of(peer))
    }

    /// Peer `i`'s router path when attached under an **arbitrary**
    /// landmark — the federated-mobility case: a move re-traces the peer
    /// to a landmark of the destination region, and the resulting path is
    /// still a pure function of `(peer, landmark)` (so replays stay
    /// deterministic and rejoins renew cleanly).
    pub fn path_to(&self, peer: u64, landmark: LandmarkId) -> PeerPath {
        let lmk = landmark.0;
        debug_assert!(lmk < self.n_landmarks);
        let within = peer / self.n_landmarks as u64;
        let mut routers = Vec::with_capacity(self.depth as usize + 1);
        // Unique access router per peer, top id range (below the packed
        // infrastructure range, above the landmark ids).
        routers.push(RouterId(u32::MAX - peer as u32));
        for level in (1..self.depth).rev() {
            let prefix = (within % self.branching.pow(level)) as u32;
            routers.push(RouterId(0x4000_0000 + (lmk << 24) + (level << 18) + prefix));
        }
        routers.push(RouterId(lmk));
        PeerPath::new(routers).expect("packed id ranges are loop-free")
    }

    /// A join item for peer `i`.
    pub fn join(&self, peer: u64) -> (PeerId, PeerPath) {
        (PeerId(peer), self.path(peer))
    }

    /// A join item for peer `i` under an arbitrary landmark (see
    /// [`Self::path_to`]).
    pub fn join_to(&self, peer: u64, landmark: LandmarkId) -> (PeerId, PeerPath) {
        (PeerId(peer), self.path_to(peer, landmark))
    }

    /// A management server whose landmarks match this generator (all
    /// landmark pairs 4 hops apart — churn replay is write-side work, the
    /// bridge matrix only matters to queries).
    pub fn server(&self, config: ServerConfig) -> ManagementServer {
        let routers: Vec<RouterId> = (0..self.n_landmarks).map(RouterId).collect();
        let dist: Vec<Vec<u32>> = (0..self.n_landmarks)
            .map(|i| {
                (0..self.n_landmarks)
                    .map(|j| if i == j { 0 } else { 4 })
                    .collect()
            })
            .collect();
        ManagementServer::new(routers, dist, config)
    }
}

/// Applies one epoch's churn batch **shard-parallel**: join/renewal items
/// are grouped by landmark and absorbed by each shard on its own crossbeam
/// scoped thread ([`nearpeer_core::DirectoryShard::absorb_batch`] — fresh
/// peers insert, registered peers renew their lease at `epoch`), and every
/// shard thread also removes its own members from the shared `leaves`
/// list. Returns the summed per-shard outcome plus the leave count.
///
/// Like [`ManagementServer::shards_mut`] itself, this bypasses the
/// facade's cross-shard checks: **callers must guarantee a peer id never
/// targets two different landmarks** (true for [`SyntheticJoins`], where
/// the landmark is a pure function of the id) and that super-peers are
/// disabled. `threads <= 1` degenerates to the facade's batched calls,
/// which produce identical directory state.
pub fn churn_epoch_shard_parallel(
    server: &mut ManagementServer,
    joins: Vec<(PeerId, PeerPath)>,
    leaves: &[PeerId],
    threads: usize,
) -> Result<(nearpeer_core::ChurnBatchOutcome, usize), String> {
    debug_assert!(
        server.super_peer_directory().is_none(),
        "shard-parallel churn bypasses super-peer maintenance"
    );
    if threads <= 1 {
        let absorbed = server.register_batch_renewing(joins);
        let left = server.leave_batch(leaves);
        return Ok((absorbed, left));
    }
    let epoch = server.epoch();
    let mut groups: Vec<Vec<(PeerId, PeerPath)>> =
        (0..server.landmarks().len()).map(|_| Vec::new()).collect();
    let mut rejected = 0usize;
    for (peer, path) in joins {
        match server.landmark_at_router(path.landmark_router()) {
            Some(lm) => groups[lm.index()].push((peer, path)),
            None => rejected += 1,
        }
    }
    let (absorbed, left) = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = server
            .shards_mut()
            .iter_mut()
            .zip(groups)
            .map(|(shard, items)| {
                scope.spawn(move |_| {
                    let absorbed = shard.absorb_batch(items, epoch);
                    let left = shard.remove_batch(leaves).len();
                    (absorbed, left)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).fold(
            (nearpeer_core::ChurnBatchOutcome::default(), 0usize),
            |(mut acc, left_acc), (a, left)| {
                acc.joined += a.joined;
                acc.renewed += a.renewed;
                acc.rejected += a.rejected;
                (acc, left_acc + left)
            },
        )
    })
    .expect("scoped churn workers never panic");
    Ok((
        nearpeer_core::ChurnBatchOutcome {
            joined: absorbed.joined,
            renewed: absorbed.renewed,
            rejected: absorbed.rejected + rejected,
        },
        left,
    ))
}

/// Shard-parallel heartbeat round: every shard renews its own members of
/// `peers` at the current epoch on its own scoped thread. Returns the
/// number renewed — the same observable as
/// [`ManagementServer::renew_batch`]. Same caller contract as
/// [`churn_epoch_shard_parallel`].
pub fn renew_shard_parallel(
    server: &mut ManagementServer,
    peers: &[PeerId],
    threads: usize,
) -> usize {
    if threads <= 1 {
        return server.renew_batch(peers);
    }
    let epoch = server.epoch();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = server
            .shards_mut()
            .iter_mut()
            .map(|shard| scope.spawn(move |_| shard.renew_batch(peers, epoch)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
    .expect("scoped renewal workers never panic")
}

/// Shard-parallel lease expiry: every shard sweeps its epoch-bucketed
/// arena on its own scoped thread; results merge into one ascending id
/// list — the same observable as
/// [`ManagementServer::expire_stale_batch`]. Same caller contract as
/// [`churn_epoch_shard_parallel`] (no super-peers).
pub fn expire_stale_shard_parallel(
    server: &mut ManagementServer,
    max_age: u64,
    threads: usize,
) -> Vec<PeerId> {
    debug_assert!(server.super_peer_directory().is_none());
    if threads <= 1 {
        return server.expire_stale_batch(max_age);
    }
    let now = server.epoch();
    let mut expired: Vec<PeerId> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = server
            .shards_mut()
            .iter_mut()
            // expire_epoch (not the raw cutoff sweep) so per-shard
            // adaptive lease lengths behave identically to the facade.
            .map(|shard| scope.spawn(move |_| shard.expire_epoch(now, max_age).expired))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
    .expect("scoped expiry workers never panic");
    expired.sort_unstable();
    expired
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::generators::{mapper, MapperConfig};

    fn tiny_topo() -> Topology {
        mapper(&MapperConfig::tiny(), 5).unwrap()
    }

    #[test]
    fn builds_and_registers_everyone() {
        let topo = tiny_topo();
        let cfg = SwarmConfig {
            n_peers: 40,
            n_landmarks: 3,
            ..Default::default()
        };
        let swarm = Swarm::build(&topo, &cfg, 1).unwrap();
        assert_eq!(swarm.peers.len(), 40);
        assert_eq!(swarm.server.peer_count(), 40);
        assert_eq!(swarm.landmarks.len(), 3);
        assert!(swarm.mean_probes() > 0.0);
        assert!(swarm.mean_trace_elapsed_us() > 0.0);
        // Every peer is attached to a distinct access router.
        let mut routers: Vec<RouterId> = swarm.attachment.values().copied().collect();
        routers.sort();
        routers.dedup();
        assert_eq!(routers.len(), 40);
        for r in routers {
            assert_eq!(topo.degree(r), 1, "{r} is not an access router");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = tiny_topo();
        let cfg = SwarmConfig {
            n_peers: 20,
            ..Default::default()
        };
        let a = Swarm::build(&topo, &cfg, 3).unwrap();
        let b = Swarm::build(&topo, &cfg, 3).unwrap();
        assert_eq!(a.landmarks, b.landmarks);
        assert_eq!(a.attachment, b.attachment);
        let c = Swarm::build(&topo, &cfg, 4).unwrap();
        assert!(a.attachment != c.attachment || a.landmarks != c.landmarks);
    }

    #[test]
    fn too_many_peers_fails_cleanly() {
        let topo = tiny_topo();
        let cfg = SwarmConfig {
            n_peers: 100_000,
            ..Default::default()
        };
        match Swarm::build(&topo, &cfg, 1) {
            Err(err) => assert!(err.contains("access routers"), "{err}"),
            Ok(_) => panic!("oversized swarm must fail"),
        }
    }

    #[test]
    fn every_peer_gets_neighbors_once_populated() {
        let topo = tiny_topo();
        let cfg = SwarmConfig {
            n_peers: 30,
            ..Default::default()
        };
        let swarm = Swarm::build(&topo, &cfg, 2).unwrap();
        for &peer in &swarm.peers {
            let neigh = swarm.server.neighbors_of(peer, 5).unwrap();
            assert!(
                !neigh.is_empty(),
                "{peer} got no neighbors in a 30-peer swarm"
            );
            assert!(neigh.iter().all(|n| n.peer != peer));
        }
    }

    #[test]
    fn parallel_tracing_is_bit_identical_to_sequential() {
        let topo = tiny_topo();
        let oracle = RouteOracle::new(&topo);
        // Loss + anonymous hops exercise every RNG draw in the tracer.
        let cfg = TraceConfig {
            loss_probability: 0.25,
            anonymous_probability: 0.15,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(&oracle, cfg);
        let access = topo.access_routers();
        let target = topo
            .routers()
            .max_by_key(|&r| topo.degree(r))
            .expect("non-empty");
        let jobs: Vec<(RouterId, RouterId)> = access.iter().map(|&src| (src, target)).collect();
        let sequential = trace_round1(&tracer, &jobs, 11, 1);
        // Forced thread counts, including ones that don't divide the job
        // list evenly and more workers than this host has cores.
        for threads in [2, 3, 8] {
            let parallel = trace_round1(&tracer, &jobs, 11, threads);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        assert!(sequential.iter().all(|t| t.is_some()));
    }

    // Full-swarm parallel == sequential equivalence (directory state, join
    // costs, attachments across seeds/topologies) is pinned by
    // tests/determinism.rs; here we only cover the builder's bookkeeping.
    #[test]
    fn build_reports_phase_split() {
        let topo = tiny_topo();
        let cfg = SwarmConfig {
            n_peers: 30,
            trace_threads: Some(3),
            ..Default::default()
        };
        let swarm = Swarm::build(&topo, &cfg, 1).unwrap();
        assert!(swarm.phases.trace > Duration::ZERO);
        assert!(swarm.phases.register > Duration::ZERO);
        assert_eq!(swarm.phases.trace_threads, 3);
    }

    #[test]
    fn synthetic_joins_register_and_rejoin_cleanly() {
        let gen = SyntheticJoins::new(3);
        let mut server = gen.server(ServerConfig::default());
        let joins: Vec<_> = (0..60u64).map(|i| gen.join(i)).collect();
        let out = server.register_batch_renewing(joins.clone());
        assert_eq!((out.joined, out.renewed, out.rejected), (60, 0, 0));
        // Paths are pure functions of the id: every rejoin renews.
        server.advance_epoch();
        let again = server.register_batch_renewing(joins);
        assert_eq!((again.joined, again.renewed), (0, 60));
        for i in 0..60u64 {
            assert_eq!(server.landmark_of(PeerId(i)), Some(gen.landmark_of(i)));
        }
    }

    #[test]
    fn shard_parallel_churn_epoch_matches_facade() {
        let gen = SyntheticJoins::new(4);
        let joins: Vec<_> = (0..120u64).map(|i| gen.join(i)).collect();
        let leaves: Vec<PeerId> = (0..40u64).map(PeerId).collect();

        let mut facade = gen.server(ServerConfig::default());
        let fa = facade.register_batch_renewing(joins.clone());
        let fl = facade.leave_batch(&leaves);
        facade.advance_epoch();
        for _ in 0..3 {
            facade.advance_epoch();
        }
        let fe = facade.expire_stale_batch(2);

        for threads in [2, 5] {
            let mut par = gen.server(ServerConfig::default());
            let (pa, pl) = churn_epoch_shard_parallel(&mut par, joins.clone(), &leaves, threads)
                .expect("synthetic ids are landmark-stable");
            assert_eq!(pa, fa, "threads={threads}");
            assert_eq!(pl, fl);
            for _ in 0..4 {
                par.advance_epoch();
            }
            let pe = expire_stale_shard_parallel(&mut par, 2, threads);
            assert_eq!(pe, fe);
            assert_eq!(par.peer_count(), facade.peer_count());
            assert_eq!(par.report().per_landmark, facade.report().per_landmark);
        }
    }

    #[test]
    fn build_strategies_produce_identical_directories() {
        let topo = tiny_topo();
        let build = |strategy: BuildStrategy| {
            let cfg = SwarmConfig {
                n_peers: 50,
                n_landmarks: 3,
                build: strategy,
                ..Default::default()
            };
            Swarm::build(&topo, &cfg, 7).unwrap()
        };
        let seq = build(BuildStrategy::Sequential);
        let bat = build(BuildStrategy::Batched);
        let par = build(BuildStrategy::ShardParallel);
        // Snapshot before the comparison queries below bump the counters.
        let s = seq.server.report();
        for other in [&bat, &par] {
            assert_eq!(other.landmarks, seq.landmarks);
            assert_eq!(other.attachment, seq.attachment);
            let o = other.server.report();
            assert_eq!(o.peers, s.peers);
            assert_eq!(o.indexed_routers, s.indexed_routers);
            assert_eq!(o.per_landmark, s.per_landmark, "same trees per shard");
            assert_eq!(o.stats.joins, s.stats.joins);
            assert_eq!(o.stats.queries, s.stats.queries, "one answer per join");
            for &peer in &seq.peers {
                assert_eq!(
                    other.server.neighbors_of(peer, 5).unwrap(),
                    seq.server.neighbors_of(peer, 5).unwrap(),
                    "{peer}"
                );
            }
        }
    }
}
