//! Shared plumbing for the wire binaries (`nearpeerd`, `wire_loadgen`).
//!
//! Both sides of the socket rebuild the same deterministic world from
//! `(n_landmarks, regions)` — the [`SyntheticJoins`] landmark layout
//! (routers `0..n`, all pairs 4 hops apart) — so no topology ever
//! crosses the wire: the daemon serves it, the load generator mirrors
//! it locally to check the answers bit-for-bit.

use crate::SyntheticJoins;
use bytes::BytesMut;
use nearpeer_core::codec::{self, CodecError};
use nearpeer_core::protocol::Message;
use nearpeer_core::{
    ActorFederation, ActorServer, CoreError, Counter, FederatedJoin, Federation, FederationConfig,
    Histogram, JoinOutcome, ManagementServer, Neighbor, PeerId, PeerPath, ServerConfig,
    TelemetryRegistry, WireService,
};
use nearpeer_topology::RouterId;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The synthetic landmark layout shared by server and load generator:
/// routers `0..n`, every distinct pair 4 hops apart — exactly what
/// [`SyntheticJoins::server`] builds.
pub fn synthetic_landmarks(n_landmarks: usize) -> (Vec<RouterId>, Vec<Vec<u32>>) {
    let n = n_landmarks as u32;
    let routers = (0..n).map(RouterId).collect();
    let dist = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 0 } else { 4 }).collect())
        .collect();
    (routers, dist)
}

/// Builds the actorized serving plane over the synthetic landmark
/// layout: one [`ActorServer`] for a single region, an
/// [`ActorFederation`] (full fanout) otherwise.
pub fn build_service(
    n_landmarks: usize,
    regions: usize,
    config: ServerConfig,
) -> Result<Arc<dyn WireService>, CoreError> {
    let reg = Arc::new(TelemetryRegistry::new());
    let (routers, dist) = synthetic_landmarks(n_landmarks);
    if regions <= 1 {
        let srv = ActorServer::new(routers, dist, config)?;
        srv.bind_telemetry(reg);
        Ok(Arc::new(srv))
    } else {
        let fed = ActorFederation::new(
            routers,
            dist,
            regions,
            FederationConfig {
                fanout: None,
                server: config,
            },
        )?;
        fed.bind_telemetry(reg);
        Ok(Arc::new(fed))
    }
}

/// The synchronous twin of what [`build_service`] serves, used by the
/// load generator to check wire answers bit-for-bit: the actorized
/// planes are pinned answer-equivalent to these by `tests/properties.rs`.
pub enum Mirror {
    /// Single-region twin of an [`ActorServer`].
    Single(Box<ManagementServer>),
    /// Multi-region twin of an [`ActorFederation`].
    Federated(Box<Federation>),
}

impl Mirror {
    /// Builds the mirror from the same `(n_landmarks, regions, config)`
    /// the daemon was started with.
    pub fn build(
        n_landmarks: usize,
        regions: usize,
        config: ServerConfig,
    ) -> Result<Self, CoreError> {
        let (routers, dist) = synthetic_landmarks(n_landmarks);
        if regions <= 1 {
            Ok(Mirror::Single(Box::new(ManagementServer::new(
                routers, dist, config,
            ))))
        } else {
            Ok(Mirror::Federated(Box::new(Federation::new(
                routers,
                dist,
                regions,
                FederationConfig {
                    fanout: None,
                    server: config,
                },
            )?)))
        }
    }

    /// Write-only bulk registration. Registration order does not matter:
    /// the final directory state is a pure function of the registered
    /// `(peer, path)` set, which is why the load generator can register
    /// over many concurrent connections and still mirror exactly.
    pub fn register_all(&mut self, items: Vec<(PeerId, PeerPath)>) -> usize {
        match self {
            Mirror::Single(srv) => srv.register_batch_renewing(items).joined,
            Mirror::Federated(fed) => fed.register_batch(items).joined,
        }
    }

    /// Mobility handover, answering the peer's fresh neighbor list.
    pub fn handover(&mut self, peer: PeerId, path: PeerPath) -> Result<Vec<Neighbor>, CoreError> {
        match self {
            Mirror::Single(srv) => srv.handover(peer, path).map(|o: JoinOutcome| o.neighbors),
            Mirror::Federated(fed) => fed.handover(peer, path).map(|o: FederatedJoin| o.neighbors),
        }
    }

    /// Graceful bulk departure, answering how many peers actually left.
    pub fn leave_all(&mut self, peers: &[PeerId]) -> usize {
        match self {
            Mirror::Single(srv) => srv.leave_batch(peers),
            Mirror::Federated(fed) => fed.leave_batch(peers),
        }
    }

    /// The closest registered peers to a query path.
    pub fn closest_to_path(
        &self,
        path: &PeerPath,
        k: usize,
        exclude: Option<PeerId>,
    ) -> Vec<Neighbor> {
        match self {
            Mirror::Single(srv) => srv.closest_to_path(path, k, exclude),
            Mirror::Federated(fed) => fed.closest_to_path(path, k, exclude),
        }
    }

    /// Registered peer count.
    pub fn peer_count(&self) -> usize {
        match self {
            Mirror::Single(srv) => srv.peer_count(),
            Mirror::Federated(fed) => fed.peer_count(),
        }
    }
}

/// The world both binaries derive peers and paths from.
pub fn world(n_landmarks: usize) -> SyntheticJoins {
    SyntheticJoins::new(n_landmarks)
}

/// A blocking framed connection: length-prefixed [`codec`] frames over a
/// `TcpStream`, with reassembly across partial reads.
pub struct FrameConn {
    stream: TcpStream,
    buf: BytesMut,
    bytes_in: u64,
}

impl FrameConn {
    /// Wraps an accepted/connected stream (enables `TCP_NODELAY` — the
    /// protocol is request/reply and frames are small).
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: BytesMut::with_capacity(64 * 1024),
            bytes_in: 0,
        })
    }

    /// Connects to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::new(TcpStream::connect(addr)?)
    }

    /// Bounds every blocking read; `None` blocks forever. While a
    /// timeout is set, [`Self::recv`] surfaces `WouldBlock`/`TimedOut`
    /// with any partially-read frame preserved in the buffer.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Encodes and writes one frame.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.stream.write_all(&codec::encode_to_bytes(msg))
    }

    /// Writes an already-encoded frame (lets the serve loop encode once
    /// and count the bytes it is about to send).
    pub fn send_bytes(&mut self, frame: &[u8]) -> io::Result<()> {
        self.stream.write_all(frame)
    }

    /// Reads the next message, reassembling frames across partial reads.
    /// `Ok(None)` means the peer closed cleanly on a frame boundary.
    /// Malformed-but-consumed frames are skipped (the codec resyncs);
    /// an oversized length prefix is connection-fatal (`InvalidData`) —
    /// the stream position can no longer be trusted.
    pub fn recv(&mut self) -> io::Result<Option<Message>> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match codec::decode(&mut self.buf) {
                Ok(msg) => return Ok(Some(msg)),
                Err(CodecError::Incomplete) => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return if self.buf.is_empty() {
                            Ok(None)
                        } else {
                            Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "connection closed mid-frame",
                            ))
                        };
                    }
                    self.bytes_in += n as u64;
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(CodecError::FrameTooLarge(n)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame of {n} bytes exceeds limit"),
                    ));
                }
                // Anything else consumed exactly one bad frame; resync.
                Err(_) => continue,
            }
        }
    }

    /// Total bytes ever read off the socket, including bytes of a frame
    /// still being reassembled. This — not completed frames — is the
    /// liveness signal: a sender dribbling a large frame is making
    /// progress even though [`Self::recv`] has not returned yet.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_in
    }

    /// Whether the receive buffer holds a partially reassembled frame.
    pub fn has_partial_frame(&self) -> bool {
        !self.buf.is_empty()
    }
}

/// Per-kind serving metrics, cached per connection so the hot loop
/// touches the registry's entry lock once per message kind seen, not
/// once per frame. Kinds index by their `&'static` name, so the cache
/// costs one `HashMap` probe per frame.
struct ServeMetrics {
    reg: Arc<TelemetryRegistry>,
    per_kind: HashMap<&'static str, KindMetrics>,
}

#[derive(Clone)]
struct KindMetrics {
    /// Request frames of this kind served (replied to or absorbed).
    frames: Arc<Counter>,
    /// Time from decoded request to encoded reply, µs.
    serve_us: Arc<Histogram>,
    /// Encoded reply frame sizes, bytes (`_sum` = total bytes out).
    reply_bytes: Arc<Histogram>,
}

impl ServeMetrics {
    fn new(reg: Arc<TelemetryRegistry>) -> Self {
        Self {
            reg,
            per_kind: HashMap::new(),
        }
    }

    fn kind(&mut self, name: &'static str) -> &KindMetrics {
        self.per_kind.entry(name).or_insert_with(|| {
            let label = format!("kind=\"{name}\"");
            KindMetrics {
                frames: self.reg.counter_labeled("wire_frames_total", &label),
                serve_us: self.reg.histogram_labeled("wire_serve_us", &label),
                reply_bytes: self.reg.histogram_labeled("wire_reply_bytes", &label),
            }
        })
    }
}

/// Most pushes one drain round sends before the serve loop goes back to
/// reading requests, so a subscription storm cannot starve replies.
const PUSH_BATCH: usize = 256;

/// Read-timeout windows a draining connection grants an in-flight frame
/// after shutdown is requested, before cutting the stream mid-reassembly.
const SHUTDOWN_GRACE_WINDOWS: u32 = 8;

/// One connection's serve loop, shared by `nearpeerd` and the in-process
/// transport tests: reassemble frames, answer requests, and interleave
/// server-initiated pushes for the connection's subscription client.
///
/// Delivery rules:
///
/// * pushes queued for this client are flushed **before** each reply, so
///   any request/reply round-trip (a `ProbePing` will do) fences every
///   delta the server queued before it;
/// * idle pushes flow on the read-timeout tick even when the client is
///   not talking;
/// * liveness for the idle deadline is **byte progress** (see
///   [`FrameConn::bytes_received`]), not completed frames — a client
///   dribbling one large frame is alive, a silent one is not;
/// * a shutdown requested elsewhere lets an in-flight partial frame
///   finish for a bounded grace ([`SHUTDOWN_GRACE_WINDOWS`] read
///   windows) instead of cutting it mid-reassembly.
pub fn serve_connection(
    stream: TcpStream,
    service: Arc<dyn WireService>,
    shutdown: Arc<AtomicBool>,
    local: SocketAddr,
    idle_deadline: Option<Duration>,
) {
    let peer = stream.peer_addr().ok();
    let mut conn = match FrameConn::new(stream) {
        Ok(conn) => conn,
        Err(_) => return,
    };
    // A bounded read lets the loop observe a shutdown requested on
    // another connection without dropping a frame mid-reassembly — and,
    // stacked up, gives the idle deadline its resolution.
    if conn
        .set_read_timeout(Some(Duration::from_millis(250)))
        .is_err()
    {
        return;
    }
    let client = service.open_client();
    serve_frames(
        &mut conn,
        &*service,
        &shutdown,
        local,
        idle_deadline,
        client,
        peer,
    );
    if let Some(client) = client {
        service.close_client(client);
    }
}

/// The loop behind [`serve_connection`], separated so the subscription
/// client is torn down on every exit path.
#[allow(clippy::too_many_arguments)]
fn serve_frames(
    conn: &mut FrameConn,
    service: &dyn WireService,
    shutdown: &AtomicBool,
    local: SocketAddr,
    idle_deadline: Option<Duration>,
    client: Option<u64>,
    peer: Option<SocketAddr>,
) {
    let mut last_progress = Instant::now();
    let mut seen_bytes = conn.bytes_received();
    let mut grace_left = SHUTDOWN_GRACE_WINDOWS;
    let mut pushes: Vec<Message> = Vec::new();
    let mut metrics = service.telemetry().map(ServeMetrics::new);
    loop {
        match conn.recv() {
            Ok(Some(msg)) => {
                seen_bytes = conn.bytes_received();
                last_progress = Instant::now();
                let stop = matches!(msg, Message::Shutdown { .. });
                let kind = msg.kind_name();
                let started = metrics
                    .as_ref()
                    .filter(|m| m.reg.timing_enabled())
                    .map(|_| Instant::now());
                if let Some(client) = client {
                    if flush_pushes(conn, service, client, &mut pushes).is_err() {
                        return;
                    }
                }
                let reply = service.handle_from(client, msg);
                let frame = reply.as_ref().map(codec::encode_to_bytes);
                if let Some(m) = metrics.as_mut() {
                    let km = m.kind(kind);
                    km.frames.inc();
                    if let Some(f) = &frame {
                        km.reply_bytes.record(f.len() as u64);
                    }
                    if let Some(s) = started {
                        km.serve_us.record(s.elapsed().as_micros() as u64);
                    }
                }
                if let Some(frame) = frame {
                    if conn.send_bytes(&frame).is_err() {
                        return;
                    }
                }
                if stop {
                    shutdown.store(true, Ordering::Release);
                    // Unblock the accept loop so it observes the flag.
                    let _ = TcpStream::connect(local);
                    return;
                }
            }
            // Clean close on a frame boundary.
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if let Some(client) = client {
                    if flush_pushes(conn, service, client, &mut pushes).is_err() {
                        return;
                    }
                }
                if shutdown.load(Ordering::Acquire) {
                    if !conn.has_partial_frame() || grace_left == 0 {
                        return;
                    }
                    grace_left -= 1;
                }
                if conn.bytes_received() != seen_bytes {
                    seen_bytes = conn.bytes_received();
                    last_progress = Instant::now();
                }
                if let Some(limit) = idle_deadline {
                    let idle = last_progress.elapsed();
                    if idle >= limit {
                        // A client that stopped talking without closing
                        // would otherwise pin this thread (and its fd)
                        // forever.
                        match peer {
                            Some(addr) => eprintln!(
                                "nearpeerd: evicting idle connection {addr} \
                                 ({}s without progress)",
                                idle.as_secs()
                            ),
                            None => eprintln!(
                                "nearpeerd: evicting idle connection \
                                 ({}s without progress)",
                                idle.as_secs()
                            ),
                        }
                        return;
                    }
                }
            }
            // Oversized frame or transport error: the stream position is
            // untrustworthy, drop the connection.
            Err(_) => return,
        }
    }
}

/// Sends every push ready for `client` right now; loops while full
/// batches keep coming, stops as soon as a drain comes back short.
fn flush_pushes(
    conn: &mut FrameConn,
    service: &dyn WireService,
    client: u64,
    scratch: &mut Vec<Message>,
) -> io::Result<()> {
    loop {
        scratch.clear();
        service.drain_pushes(client, PUSH_BATCH, scratch);
        for msg in scratch.iter() {
            conn.send(msg)?;
        }
        if scratch.len() < PUSH_BATCH {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_core::LandmarkId;
    use std::net::TcpListener;

    #[test]
    fn mirror_matches_wire_service_answers() {
        let config = ServerConfig {
            neighbor_count: 5,
            ..ServerConfig::default()
        };
        for regions in [1usize, 2] {
            let service = build_service(4, regions, config).unwrap();
            let mut mirror = Mirror::build(4, regions, config).unwrap();
            let joins = world(4);
            let items: Vec<_> = (0..64u64).map(|p| joins.join(p)).collect();
            for (peer, path) in &items {
                let reply = service.handle(Message::JoinRequest {
                    peer: *peer,
                    path: path.clone(),
                });
                assert!(matches!(reply, Some(Message::JoinReply { .. })));
            }
            assert_eq!(mirror.register_all(items), 64);
            for p in 0..64u64 {
                let path = joins.path(p);
                let expected = mirror.closest_to_path(&path, 5, Some(PeerId(p)));
                let got = service.handle(Message::QueryRequest {
                    nonce: p,
                    path,
                    k: 5,
                    exclude: Some(PeerId(p)),
                });
                match got {
                    Some(Message::QueryReply { nonce, neighbors }) => {
                        assert_eq!(nonce, p);
                        assert_eq!(neighbors.len(), expected.len());
                        for (w, n) in neighbors.iter().zip(&expected) {
                            assert_eq!((w.peer, w.dtree), (n.peer, n.dtree));
                        }
                    }
                    other => panic!("expected QueryReply, got {other:?}"),
                }
            }
            // A handover answers the same fresh neighbor list on both sides.
            let peer = PeerId(3);
            let dest = LandmarkId((joins.landmark_of(3).0 + 1) % 4);
            let new_path = joins.path_to(3, dest);
            let expected = mirror.handover(peer, new_path.clone()).unwrap();
            match service.handle(Message::HandoverRequest {
                peer,
                path: new_path,
            }) {
                Some(Message::JoinReply { neighbors, .. }) => {
                    assert_eq!(neighbors.len(), expected.len());
                    for (w, n) in neighbors.iter().zip(&expected) {
                        assert_eq!((w.peer, w.dtree), (n.peer, n.dtree));
                    }
                }
                other => panic!("expected JoinReply, got {other:?}"),
            }
        }
    }

    /// Spawns [`serve_connection`] over a fresh single-region service and
    /// hands back the client stream plus the shutdown flag.
    fn spawn_server(
        idle_deadline: Option<Duration>,
    ) -> (FrameConn, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let service = build_service(2, 1, ServerConfig::default()).unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let server_shutdown = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            serve_connection(stream, service, server_shutdown, addr, idle_deadline);
        });
        let conn = FrameConn::connect(addr).unwrap();
        (conn, shutdown, handle)
    }

    #[test]
    fn dribbling_sender_survives_idle_eviction() {
        // Idle deadline shorter than the time the frame takes to arrive:
        // only byte-progress liveness keeps this connection alive.
        let (mut conn, _, server) = spawn_server(Some(Duration::from_millis(600)));
        let frame = codec::encode_to_bytes(&Message::ProbePing { nonce: 42 });
        for b in frame.iter() {
            conn.stream.write_all(&[*b]).unwrap();
            conn.stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(100));
        }
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(
            conn.recv().unwrap(),
            Some(Message::ProbePong { nonce: 42 }),
            "server evicted a sender that was making byte progress"
        );
        drop(conn);
        server.join().unwrap();
    }

    #[test]
    fn shutdown_lets_inflight_frame_finish() {
        let (mut conn, shutdown, server) = spawn_server(None);
        let frame = codec::encode_to_bytes(&Message::ProbePing { nonce: 7 });
        let (head, tail) = frame.split_at(frame.len() / 2);
        conn.stream.write_all(head).unwrap();
        conn.stream.flush().unwrap();
        // Give the serve loop a tick to buffer the partial frame, then
        // request shutdown from "another connection".
        std::thread::sleep(Duration::from_millis(400));
        shutdown.store(true, Ordering::Release);
        // Hold the tail across at least one read-timeout tick so the
        // loop provably observes shutdown with the frame half-buffered.
        std::thread::sleep(Duration::from_millis(400));
        conn.stream.write_all(tail).unwrap();
        conn.stream.flush().unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(
            conn.recv().unwrap(),
            Some(Message::ProbePong { nonce: 7 }),
            "shutdown cut a frame that was already half-received"
        );
        // With the frame answered and the flag set, the loop exits.
        assert_eq!(conn.recv().unwrap(), None);
        server.join().unwrap();
    }

    #[test]
    fn pushes_arrive_before_the_fencing_reply() {
        let (mut conn, _, server) = spawn_server(None);
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let joins = world(2);
        let (peer, path) = joins.join(0);
        conn.send(&Message::JoinRequest { peer, path }).unwrap();
        assert!(matches!(
            conn.recv().unwrap(),
            Some(Message::JoinReply { .. })
        ));
        conn.send(&Message::Subscribe {
            nonce: 1,
            peer,
            k: 3,
            min_interval_ms: 0,
        })
        .unwrap();
        assert!(matches!(conn.recv().unwrap(), Some(Message::SubAck { .. })));
        // A second join must reach the subscriber as a DeltaPush, and a
        // ProbePing round-trip fences it: pong after push, never before.
        let (peer2, path2) = joins.join(1);
        conn.send(&Message::JoinRequest {
            peer: peer2,
            path: path2,
        })
        .unwrap();
        assert!(matches!(
            conn.recv().unwrap(),
            Some(Message::JoinReply { .. })
        ));
        conn.send(&Message::ProbePing { nonce: 99 }).unwrap();
        match conn.recv().unwrap() {
            Some(Message::DeltaPush { added, .. }) => {
                assert_eq!(added.len(), 1);
                assert_eq!(added[0].peer, peer2);
            }
            other => panic!("expected DeltaPush before the pong, got {other:?}"),
        }
        assert_eq!(conn.recv().unwrap(), Some(Message::ProbePong { nonce: 99 }));
        drop(conn);
        server.join().unwrap();
    }

    #[test]
    fn frame_conn_reassembles_partial_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            let frame = codec::encode_to_bytes(&Message::Heartbeat { peer: PeerId(9) });
            // Dribble the frame one byte at a time across the socket.
            for b in frame.iter() {
                s.write_all(&[*b]).unwrap();
                s.flush().unwrap();
            }
            s.write_all(&codec::encode_to_bytes(&Message::ProbePing { nonce: 4 }))
                .unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FrameConn::new(stream).unwrap();
        assert_eq!(
            conn.recv().unwrap(),
            Some(Message::Heartbeat { peer: PeerId(9) })
        );
        assert_eq!(conn.recv().unwrap(), Some(Message::ProbePing { nonce: 4 }));
        assert_eq!(conn.recv().unwrap(), None);
        writer.join().unwrap();
    }
}
