//! Shared plumbing for the wire binaries (`nearpeerd`, `wire_loadgen`).
//!
//! Both sides of the socket rebuild the same deterministic world from
//! `(n_landmarks, regions)` — the [`SyntheticJoins`] landmark layout
//! (routers `0..n`, all pairs 4 hops apart) — so no topology ever
//! crosses the wire: the daemon serves it, the load generator mirrors
//! it locally to check the answers bit-for-bit.

use crate::SyntheticJoins;
use bytes::BytesMut;
use nearpeer_core::codec::{self, CodecError};
use nearpeer_core::protocol::Message;
use nearpeer_core::{
    ActorFederation, ActorServer, CoreError, FederatedJoin, Federation, FederationConfig,
    JoinOutcome, ManagementServer, Neighbor, PeerId, PeerPath, ServerConfig, WireService,
};
use nearpeer_topology::RouterId;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// The synthetic landmark layout shared by server and load generator:
/// routers `0..n`, every distinct pair 4 hops apart — exactly what
/// [`SyntheticJoins::server`] builds.
pub fn synthetic_landmarks(n_landmarks: usize) -> (Vec<RouterId>, Vec<Vec<u32>>) {
    let n = n_landmarks as u32;
    let routers = (0..n).map(RouterId).collect();
    let dist = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 0 } else { 4 }).collect())
        .collect();
    (routers, dist)
}

/// Builds the actorized serving plane over the synthetic landmark
/// layout: one [`ActorServer`] for a single region, an
/// [`ActorFederation`] (full fanout) otherwise.
pub fn build_service(
    n_landmarks: usize,
    regions: usize,
    config: ServerConfig,
) -> Result<Arc<dyn WireService>, CoreError> {
    let (routers, dist) = synthetic_landmarks(n_landmarks);
    if regions <= 1 {
        Ok(Arc::new(ActorServer::new(routers, dist, config)?))
    } else {
        Ok(Arc::new(ActorFederation::new(
            routers,
            dist,
            regions,
            FederationConfig {
                fanout: None,
                server: config,
            },
        )?))
    }
}

/// The synchronous twin of what [`build_service`] serves, used by the
/// load generator to check wire answers bit-for-bit: the actorized
/// planes are pinned answer-equivalent to these by `tests/properties.rs`.
pub enum Mirror {
    /// Single-region twin of an [`ActorServer`].
    Single(ManagementServer),
    /// Multi-region twin of an [`ActorFederation`].
    Federated(Federation),
}

impl Mirror {
    /// Builds the mirror from the same `(n_landmarks, regions, config)`
    /// the daemon was started with.
    pub fn build(
        n_landmarks: usize,
        regions: usize,
        config: ServerConfig,
    ) -> Result<Self, CoreError> {
        let (routers, dist) = synthetic_landmarks(n_landmarks);
        if regions <= 1 {
            Ok(Mirror::Single(ManagementServer::new(routers, dist, config)))
        } else {
            Ok(Mirror::Federated(Federation::new(
                routers,
                dist,
                regions,
                FederationConfig {
                    fanout: None,
                    server: config,
                },
            )?))
        }
    }

    /// Write-only bulk registration. Registration order does not matter:
    /// the final directory state is a pure function of the registered
    /// `(peer, path)` set, which is why the load generator can register
    /// over many concurrent connections and still mirror exactly.
    pub fn register_all(&mut self, items: Vec<(PeerId, PeerPath)>) -> usize {
        match self {
            Mirror::Single(srv) => srv.register_batch_renewing(items).joined,
            Mirror::Federated(fed) => fed.register_batch(items).joined,
        }
    }

    /// Mobility handover, answering the peer's fresh neighbor list.
    pub fn handover(&mut self, peer: PeerId, path: PeerPath) -> Result<Vec<Neighbor>, CoreError> {
        match self {
            Mirror::Single(srv) => srv.handover(peer, path).map(|o: JoinOutcome| o.neighbors),
            Mirror::Federated(fed) => fed.handover(peer, path).map(|o: FederatedJoin| o.neighbors),
        }
    }

    /// The closest registered peers to a query path.
    pub fn closest_to_path(
        &self,
        path: &PeerPath,
        k: usize,
        exclude: Option<PeerId>,
    ) -> Vec<Neighbor> {
        match self {
            Mirror::Single(srv) => srv.closest_to_path(path, k, exclude),
            Mirror::Federated(fed) => fed.closest_to_path(path, k, exclude),
        }
    }

    /// Registered peer count.
    pub fn peer_count(&self) -> usize {
        match self {
            Mirror::Single(srv) => srv.peer_count(),
            Mirror::Federated(fed) => fed.peer_count(),
        }
    }
}

/// The world both binaries derive peers and paths from.
pub fn world(n_landmarks: usize) -> SyntheticJoins {
    SyntheticJoins::new(n_landmarks)
}

/// A blocking framed connection: length-prefixed [`codec`] frames over a
/// `TcpStream`, with reassembly across partial reads.
pub struct FrameConn {
    stream: TcpStream,
    buf: BytesMut,
}

impl FrameConn {
    /// Wraps an accepted/connected stream (enables `TCP_NODELAY` — the
    /// protocol is request/reply and frames are small).
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: BytesMut::with_capacity(64 * 1024),
        })
    }

    /// Connects to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::new(TcpStream::connect(addr)?)
    }

    /// Bounds every blocking read; `None` blocks forever. While a
    /// timeout is set, [`Self::recv`] surfaces `WouldBlock`/`TimedOut`
    /// with any partially-read frame preserved in the buffer.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Encodes and writes one frame.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.stream.write_all(&codec::encode_to_bytes(msg))
    }

    /// Reads the next message, reassembling frames across partial reads.
    /// `Ok(None)` means the peer closed cleanly on a frame boundary.
    /// Malformed-but-consumed frames are skipped (the codec resyncs);
    /// an oversized length prefix is connection-fatal (`InvalidData`) —
    /// the stream position can no longer be trusted.
    pub fn recv(&mut self) -> io::Result<Option<Message>> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match codec::decode(&mut self.buf) {
                Ok(msg) => return Ok(Some(msg)),
                Err(CodecError::Incomplete) => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return if self.buf.is_empty() {
                            Ok(None)
                        } else {
                            Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "connection closed mid-frame",
                            ))
                        };
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(CodecError::FrameTooLarge(n)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame of {n} bytes exceeds limit"),
                    ));
                }
                // Anything else consumed exactly one bad frame; resync.
                Err(_) => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_core::LandmarkId;
    use std::net::TcpListener;

    #[test]
    fn mirror_matches_wire_service_answers() {
        let config = ServerConfig {
            neighbor_count: 5,
            ..ServerConfig::default()
        };
        for regions in [1usize, 2] {
            let service = build_service(4, regions, config).unwrap();
            let mut mirror = Mirror::build(4, regions, config).unwrap();
            let joins = world(4);
            let items: Vec<_> = (0..64u64).map(|p| joins.join(p)).collect();
            for (peer, path) in &items {
                let reply = service.handle(Message::JoinRequest {
                    peer: *peer,
                    path: path.clone(),
                });
                assert!(matches!(reply, Some(Message::JoinReply { .. })));
            }
            assert_eq!(mirror.register_all(items), 64);
            for p in 0..64u64 {
                let path = joins.path(p);
                let expected = mirror.closest_to_path(&path, 5, Some(PeerId(p)));
                let got = service.handle(Message::QueryRequest {
                    nonce: p,
                    path,
                    k: 5,
                    exclude: Some(PeerId(p)),
                });
                match got {
                    Some(Message::QueryReply { nonce, neighbors }) => {
                        assert_eq!(nonce, p);
                        assert_eq!(neighbors.len(), expected.len());
                        for (w, n) in neighbors.iter().zip(&expected) {
                            assert_eq!((w.peer, w.dtree), (n.peer, n.dtree));
                        }
                    }
                    other => panic!("expected QueryReply, got {other:?}"),
                }
            }
            // A handover answers the same fresh neighbor list on both sides.
            let peer = PeerId(3);
            let dest = LandmarkId((joins.landmark_of(3).0 + 1) % 4);
            let new_path = joins.path_to(3, dest);
            let expected = mirror.handover(peer, new_path.clone()).unwrap();
            match service.handle(Message::HandoverRequest {
                peer,
                path: new_path,
            }) {
                Some(Message::JoinReply { neighbors, .. }) => {
                    assert_eq!(neighbors.len(), expected.len());
                    for (w, n) in neighbors.iter().zip(&expected) {
                        assert_eq!((w.peer, w.dtree), (n.peer, n.dtree));
                    }
                }
                other => panic!("expected JoinReply, got {other:?}"),
            }
        }
    }

    #[test]
    fn frame_conn_reassembles_partial_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            let frame = codec::encode_to_bytes(&Message::Heartbeat { peer: PeerId(9) });
            // Dribble the frame one byte at a time across the socket.
            for b in frame.iter() {
                s.write_all(&[*b]).unwrap();
                s.flush().unwrap();
            }
            s.write_all(&codec::encode_to_bytes(&Message::ProbePing { nonce: 4 }))
                .unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FrameConn::new(stream).unwrap();
        assert_eq!(
            conn.recv().unwrap(),
            Some(Message::Heartbeat { peer: PeerId(9) })
        );
        assert_eq!(conn.recv().unwrap(), Some(Message::ProbePing { nonce: 4 }));
        assert_eq!(conn.recv().unwrap(), None);
        writer.join().unwrap();
    }
}
