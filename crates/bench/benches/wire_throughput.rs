//! Query throughput over the real wire: a loopback TCP client pipelining
//! `QueryRequest` frames at the actorized serving plane (`nearpeerd`'s
//! per-connection serve loop) holding 10⁵ registered peers.
//!
//! Two servers, same population: a single-region [`ActorServer`] and a
//! 4-region [`ActorFederation`] whose fan-out travels as codec frames
//! between its region actors. Each iteration round-trips a pipelined
//! batch of queries, so the number includes encode, socket, reassembly,
//! decode and the directory answer. Headline numbers live in
//! `BENCH_wire.json` at the repository root.
//!
//! [`ActorServer`]: nearpeer_core::ActorServer
//! [`ActorFederation`]: nearpeer_core::ActorFederation

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpeer_bench::wire::{build_service, world, FrameConn};
use nearpeer_bench::SyntheticJoins;
use nearpeer_core::protocol::Message;
use nearpeer_core::{PeerId, ServerConfig, WireService};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

const PEERS: u64 = 100_000;
const LANDMARKS: usize = 8;
const QUERIES_PER_ITER: u64 = 1_000;
const WINDOW: u64 = 256;
const K: u16 = 5;

/// Serves `service` on a loopback listener — `nearpeerd`'s serve loop
/// without the shutdown plumbing (the bench process just exits).
fn spawn_server(service: Arc<dyn WireService>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("bound");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let Ok(mut conn) = FrameConn::new(stream) else {
                    return;
                };
                while let Ok(Some(msg)) = conn.recv() {
                    if let Some(reply) = service.handle(msg) {
                        if conn.send(&reply).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
    addr
}

fn populated_service(regions: usize, joins: SyntheticJoins) -> Arc<dyn WireService> {
    let service =
        build_service(LANDMARKS, regions, ServerConfig::default()).expect("synthetic plane builds");
    for p in 0..PEERS {
        let (peer, path) = joins.join(p);
        match service.handle(Message::JoinRequest { peer, path }) {
            Some(Message::JoinReply { .. }) => {}
            other => panic!("join {p} answered {other:?}"),
        }
    }
    service
}

/// One pipelined batch of queries over an open connection.
fn query_batch(conn: &mut FrameConn, joins: &SyntheticJoins, offset: u64) -> usize {
    let mut sent = 0u64;
    let mut recvd = 0u64;
    let mut total = 0usize;
    while recvd < QUERIES_PER_ITER {
        while sent < QUERIES_PER_ITER && sent - recvd < WINDOW {
            let peer = (offset + sent * 97) % PEERS;
            conn.send(&Message::QueryRequest {
                nonce: sent,
                path: joins.path(peer),
                k: K,
                exclude: Some(PeerId(peer)),
            })
            .expect("send");
            sent += 1;
        }
        match conn.recv().expect("recv") {
            Some(Message::QueryReply { neighbors, .. }) => {
                total += neighbors.len();
                recvd += 1;
            }
            other => panic!("expected QueryReply, got {other:?}"),
        }
    }
    total
}

fn bench_wire_throughput(c: &mut Criterion) {
    let joins = world(LANDMARKS);
    let mut group = c.benchmark_group("wire_throughput");
    group.sample_size(10);
    for (name, regions) in [
        ("actor_server_1region", 1usize),
        ("actor_federation_4regions", 4),
    ] {
        let addr = spawn_server(populated_service(regions, joins));
        let mut conn = FrameConn::connect(addr).expect("loopback connect");
        let mut offset = 0u64;
        group.bench_with_input(BenchmarkId::new(name, PEERS), &(), |b, _| {
            b.iter(|| {
                offset = offset.wrapping_add(1);
                query_batch(&mut conn, &joins, offset)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire_throughput);
criterion_main!(benches);
