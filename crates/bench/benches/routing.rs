//! Criterion benchmarks for the routing substrate (the per-peer BFS that
//! dominates experiment cost, and the oracle's route extraction).

use criterion::{criterion_group, criterion_main, Criterion};
use nearpeer_routing::{bfs_distances, shortest_path_tree, RouteOracle, SptMetric};
use nearpeer_topology::generators::{mapper, MapperConfig};
use nearpeer_topology::RouterId;

fn bench_routing(c: &mut Criterion) {
    let topo = mapper(&MapperConfig::with_access(800, 1_600), 7).unwrap();
    let access = topo.access_routers();
    let src = access[0];
    let dst = access[access.len() - 1];

    c.bench_function("routing/bfs_distances", |b| {
        b.iter(|| bfs_distances(&topo, src));
    });

    c.bench_function("routing/spt_hops", |b| {
        b.iter(|| shortest_path_tree(&topo, src, SptMetric::Hops));
    });

    c.bench_function("routing/spt_latency", |b| {
        b.iter(|| shortest_path_tree(&topo, src, SptMetric::Latency));
    });

    c.bench_function("routing/oracle_route_cached", |b| {
        let oracle = RouteOracle::new(&topo);
        let _ = oracle.route(src, dst); // warm the destination tree
        b.iter(|| oracle.route(src, dst));
    });

    c.bench_function("routing/oracle_rtt_cached", |b| {
        let oracle = RouteOracle::new(&topo);
        let _ = oracle.rtt_us(src, dst);
        b.iter(|| oracle.rtt_us(src, dst));
    });

    // Zero-allocation lockstep walk up the destination tree (used to build
    // a HashSet + two Vec paths per query).
    c.bench_function("routing/branch_point", |b| {
        let oracle = RouteOracle::new(&topo);
        let mid = RouterId(0);
        let _ = oracle.route(access[1], mid);
        b.iter(|| oracle.branch_point(src, access[1], mid));
    });

    // Eager landmark-tree arena (parallel on multi-core hosts), the fixed
    // cost every swarm build pays before round 1 can fan out.
    c.bench_function("routing/oracle_arena_8_landmarks", |b| {
        let dsts: Vec<RouterId> = topo
            .routers()
            .step_by(topo.n_routers() / 8)
            .take(8)
            .collect();
        b.iter(|| RouteOracle::with_destinations(&topo, &dsts).precomputed_trees());
    });
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
