//! Federated vs single-server query throughput at 10⁵ peers.
//!
//! Both directories hold the identical synthetic population (8 landmarks,
//! tree-consistent paths); the single server answers from one merged
//! index, the 4-region federation answers through the routing front door
//! — home region plus bridge-ranked foreign regions, with the
//! cross-region fill riding the global landmark distance matrix. A
//! fanout-limited variant shows the recall/fan-out trade. Headline
//! numbers live in `BENCH_federation.json` at the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpeer_bench::{FederatedSwarm, SyntheticJoins};
use nearpeer_core::federation::FederationConfig;
use nearpeer_core::{PeerId, ServerConfig};

const PEERS: usize = 100_000;
const LANDMARKS: usize = 8;
const QUERIES_PER_ITER: u64 = 1_000;
const K: usize = 5;

fn bench_query_federation(c: &mut Criterion) {
    let gen = SyntheticJoins::new(LANDMARKS);
    let mut single = gen.server(ServerConfig::default());
    let joins: Vec<_> = (0..PEERS as u64).map(|i| gen.join(i)).collect();
    let absorbed = single.register_batch_renewing(joins);
    assert_eq!(absorbed.joined, PEERS);

    let fed_full =
        FederatedSwarm::build_synthetic(LANDMARKS, 4, PEERS, FederationConfig::default())
            .expect("synthetic federation builds");
    let fed_narrow = FederatedSwarm::build_synthetic(
        LANDMARKS,
        4,
        PEERS,
        FederationConfig {
            fanout: Some(1),
            ..FederationConfig::default()
        },
    )
    .expect("synthetic federation builds");

    let mut group = c.benchmark_group("query_federation");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("single_server", PEERS),
        &single,
        |b, srv| {
            b.iter(|| {
                let mut total = 0usize;
                for q in 0..QUERIES_PER_ITER {
                    let peer = PeerId((q * 97) % PEERS as u64);
                    total += srv.neighbors_of(peer, K).expect("registered").len();
                }
                total
            });
        },
    );
    for (name, fed) in [
        ("federated_4_full", &fed_full),
        ("federated_4_fanout1", &fed_narrow),
    ] {
        group.bench_with_input(BenchmarkId::new(name, PEERS), &fed.federation, |b, fed| {
            b.iter(|| {
                let mut total = 0usize;
                for q in 0..QUERIES_PER_ITER {
                    let peer = PeerId((q * 97) % PEERS as u64);
                    total += fed.neighbors_of(peer, K).expect("registered").len();
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_federation);
criterion_main!(benches);
