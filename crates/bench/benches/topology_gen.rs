//! Criterion benchmarks for topology generation (experiment setup cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpeer_topology::generators::{
    barabasi_albert, glp, mapper, BaConfig, GlpConfig, MapperConfig,
};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_gen");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        group.bench_with_input(BenchmarkId::new("ba", n), &n, |b, &n| {
            b.iter(|| barabasi_albert(&BaConfig { n, m: 2 }, 7).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("glp", n), &n, |b, &n| {
            b.iter(|| glp(&GlpConfig::default_with_n(n), 7).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("mapper", n), &n, |b, &n| {
            b.iter(|| mapper(&MapperConfig::with_access(n / 2, n / 2), 7).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
