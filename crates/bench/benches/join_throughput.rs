//! Join throughput: sequential `register` loop vs `register_batch` vs
//! shard-parallel construction over the directory shards.
//!
//! Measures the server-side cost of absorbing a whole swarm of newcomers
//! (synthetic tree-consistent paths across several landmarks, no tracing),
//! the workload the directory sharding refactor targets. The headline
//! numbers live in `BENCH_join.json` at the repository root.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use nearpeer_bench::register_shard_parallel;
use nearpeer_core::{ManagementServer, PeerId, PeerPath, ServerConfig};
use nearpeer_topology::RouterId;

const LANDMARKS: u32 = 8;
const BRANCHING: u64 = 4;
const DEPTH: u32 = 8;

/// Tree-consistent synthetic path for peer `i` towards landmark
/// `i % LANDMARKS`: router ids pack (landmark, level, prefix), so peers of
/// one landmark share suffixes exactly like traced routes, while distinct
/// landmarks never collide.
fn synthetic_join(i: u64) -> (PeerId, PeerPath) {
    let lmk = (i % LANDMARKS as u64) as u32;
    let within = i / LANDMARKS as u64;
    let mut routers = Vec::with_capacity(DEPTH as usize + 1);
    // Unique access router per peer, top id range.
    routers.push(RouterId(u32::MAX - i as u32));
    for level in (1..DEPTH).rev() {
        let prefix = (within % BRANCHING.pow(level)) as u32;
        routers.push(RouterId(0x1000_0000 + (lmk << 24) + (level << 18) + prefix));
    }
    routers.push(RouterId(lmk));
    (PeerId(i), PeerPath::new(routers).expect("loop-free"))
}

fn fresh_server() -> ManagementServer {
    let routers: Vec<RouterId> = (0..LANDMARKS).map(RouterId).collect();
    // All landmark pairs 4 hops apart (any constant works for throughput).
    let dist: Vec<Vec<u32>> = (0..LANDMARKS)
        .map(|i| (0..LANDMARKS).map(|j| if i == j { 0 } else { 4 }).collect())
        .collect();
    ManagementServer::new(routers, dist, ServerConfig::default())
}

fn joins(n: usize) -> Vec<(PeerId, PeerPath)> {
    (0..n as u64).map(synthetic_join).collect()
}

/// The pre-refactor protocol: one register (insert + answer) per newcomer.
fn build_sequential(batch: Vec<(PeerId, PeerPath)>) -> ManagementServer {
    let mut server = fresh_server();
    for (peer, path) in batch {
        server.register(peer, path).expect("unique synthetic ids");
    }
    server
}

/// One batched call: grouped inserts with amortised tree descent, then
/// per-newcomer answers.
fn build_batched(batch: Vec<(PeerId, PeerPath)>) -> ManagementServer {
    let mut server = fresh_server();
    for result in server.register_batch(batch) {
        result.expect("unique synthetic ids");
    }
    server
}

/// Shard-parallel: one scoped thread per landmark shard for the inserts,
/// then concurrent `&self` join answers — the swarm builder's
/// [`register_shard_parallel`] path.
fn build_parallel(batch: Vec<(PeerId, PeerPath)>) -> ManagementServer {
    let mut server = fresh_server();
    register_shard_parallel(&mut server, batch).expect("unique synthetic ids");
    server
}

fn bench_join_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_throughput");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let batch = joins(n);
        for (name, build) in [
            (
                "sequential",
                build_sequential as fn(Vec<(PeerId, PeerPath)>) -> ManagementServer,
            ),
            ("batched", build_batched),
            ("shard_parallel", build_parallel),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter_batched(|| batch.clone(), build, BatchSize::LargeInput);
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_join_throughput);
criterion_main!(benches);
