//! Round-1 trace throughput: sequential vs parallel tracing through the
//! shared route oracle, default (one destination tree per trace) vs
//! `exact_hop_rtts` (one tree per distinct intermediate router) pricing.
//!
//! Measures the full round-1 pipeline of a swarm build — landmark-tree
//! arena precompute, closest-landmark selection, then every peer's
//! simulated traceroute — the phase that dominated `scale_smoke` before the
//! oracle became shareable. `sequential` forces one worker;
//! `parallel` uses `available_parallelism` workers over peer chunks (on a
//! single-core host the two coincide). The `exact-*` rows run the same
//! pipeline with `TraceConfig::exact_hop_rtts`, which is what *every* trace
//! cost before the annotated-route path existed — see `BENCH_trace.json`
//! for recorded numbers and the host they came from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpeer_bench::trace_round1;
use nearpeer_core::landmarks::{place_landmarks, PlacementPolicy};
use nearpeer_probe::{TraceConfig, Tracer};
use nearpeer_routing::RouteOracle;
use nearpeer_topology::generators::{mapper, MapperConfig};
use nearpeer_topology::{RouterId, Topology};

const LANDMARKS: usize = 8;
const SEED: u64 = 42;

/// One cold round 1: arena precompute + landmark selection + all traces.
/// Returns the traced hop total so the work cannot be optimised away.
fn round1(
    topo: &Topology,
    landmarks: &[RouterId],
    peers: &[RouterId],
    threads: usize,
    exact_hop_rtts: bool,
) -> usize {
    let oracle = RouteOracle::with_destinations(topo, landmarks);
    let tracer = Tracer::new(
        &oracle,
        TraceConfig {
            exact_hop_rtts,
            ..TraceConfig::default()
        },
    );
    let jobs: Vec<(RouterId, RouterId)> = peers
        .iter()
        .map(|&attach| {
            let closest = landmarks
                .iter()
                .filter_map(|&lm| oracle.rtt_us(attach, lm).map(|rtt| (rtt, lm)))
                .min()
                .map(|(_, lm)| lm)
                .expect("connected map");
            (attach, closest)
        })
        .collect();
    trace_round1(&tracer, &jobs, SEED, threads)
        .iter()
        .map(|t| t.as_ref().expect("connected map").hops.len())
        .sum()
}

fn bench_trace_throughput(c: &mut Criterion) {
    let n_max = 10_000usize;
    let topo =
        mapper(&MapperConfig::with_access(800, n_max + n_max / 10), SEED).expect("mapper topology");
    let landmarks = place_landmarks(&topo, LANDMARKS, PlacementPolicy::DegreeMedium, SEED);
    let access = topo.access_routers();
    let auto = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("trace_throughput");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let peers = &access[..n];
        for (name, threads, exact) in [
            ("sequential", 1usize, false),
            ("parallel", auto, false),
            ("exact-sequential", 1usize, true),
            ("exact-parallel", auto, true),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| round1(&topo, &landmarks, peers, threads, exact));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_trace_throughput);
criterion_main!(benches);
