//! Churn throughput: a W3 join/leave/fail trace replayed onto the
//! directory through the three churn paths — one facade call per event,
//! per-epoch batches, or per-epoch batches absorbed shard-parallel.
//!
//! Measures the directory-maintenance cost of churn (lease opens,
//! renewals piggybacked on the register path, heartbeat rounds, batched
//! departures and epoch-bucketed expiry sweeps), the workload the
//! slab-backed lease arena targets. All three paths produce identical
//! directory state (`tests/determinism.rs`); the headline numbers live in
//! `BENCH_churn.json` at the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpeer_bench::experiments::churn::{run_soak, ChurnReplayMode, ChurnSoakConfig};

fn soak_config(peers: usize, mode: ChurnReplayMode) -> ChurnSoakConfig {
    ChurnSoakConfig {
        peers,
        cycles: 2, // cycle 2 rejoins departed peers: the renewal path
        arrival_rate: peers as f64 / 20.0,
        mode,
        ..ChurnSoakConfig::smoke()
    }
}

fn bench_churn_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_throughput");
    group.sample_size(10);
    for &peers in &[2_000usize, 10_000] {
        for (name, mode) in [
            ("sequential", ChurnReplayMode::Sequential),
            ("batched", ChurnReplayMode::Batched),
            ("shard_parallel", ChurnReplayMode::ShardParallel),
        ] {
            let cfg = soak_config(peers, mode);
            group.bench_with_input(BenchmarkId::new(name, peers), &cfg, |b, cfg| {
                b.iter(|| run_soak(cfg, 7));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_churn_throughput);
criterion_main!(benches);
