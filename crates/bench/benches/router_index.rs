//! Criterion micro-benchmarks for C1/C2: RouterIndex insertion and query.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use nearpeer_bench::experiments::complexity::synthetic_path;
use nearpeer_core::{PeerId, RouterIndex};
use std::collections::HashSet;

const BRANCHING: u32 = 4;
const DEPTH: u32 = 10;

fn populated(n: usize) -> RouterIndex {
    let mut idx = RouterIndex::new();
    for i in 0..n as u64 {
        idx.insert(PeerId(i), synthetic_path(i, BRANCHING, DEPTH))
            .expect("unique ids");
    }
    idx
}

/// C1: one newcomer insertion at different populations — expected to grow
/// like log n, not n.
fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_index/insert");
    group.sample_size(10); // cloning large indexes dominates setup cost
    for &n in &[1_000usize, 8_000, 64_000] {
        let base = populated(n);
        let newcomer = synthetic_path(n as u64, BRANCHING, DEPTH);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut idx| {
                    idx.insert(PeerId(u64::MAX), newcomer.clone())
                        .expect("fresh id");
                    idx
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// C2: closest-peer query at different populations — expected flat.
fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_index/query");
    let exclude = HashSet::new();
    for &n in &[1_000usize, 8_000, 64_000] {
        let idx = populated(n);
        let query = synthetic_path(12_345 % n as u64, BRANCHING, DEPTH);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| idx.query_nearest(&query, 5, &exclude));
        });
    }
    group.finish();
}

/// Removal (churn) cost.
fn bench_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_index/remove");
    group.sample_size(10);
    for &n in &[1_000usize, 8_000] {
        let base = populated(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut idx| {
                    idx.remove(PeerId(n as u64 / 2));
                    idx
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_query, bench_remove);
criterion_main!(benches);
