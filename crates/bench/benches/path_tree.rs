//! Criterion micro-benchmarks for the PathTree (trie) view.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use nearpeer_bench::experiments::complexity::synthetic_path;
use nearpeer_core::{PathTree, PeerId};

const BRANCHING: u32 = 4;
const DEPTH: u32 = 10;

fn populated(n: usize) -> PathTree {
    let root = synthetic_path(0, BRANCHING, DEPTH).landmark_router();
    let mut tree = PathTree::new(root);
    for i in 0..n as u64 {
        let inserted = tree.insert(PeerId(i), &synthetic_path(i, BRANCHING, DEPTH));
        assert!(inserted);
    }
    tree
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_tree/insert");
    group.sample_size(10); // cloning large tries dominates setup cost
    for &n in &[1_000usize, 16_000] {
        let base = populated(n);
        let path = synthetic_path(n as u64, BRANCHING, DEPTH);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut tree| {
                    tree.insert(PeerId(u64::MAX), &path);
                    tree
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_branch_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_tree/branch_point");
    for &n in &[1_000usize, 16_000] {
        let tree = populated(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| tree.branch_point(PeerId(1), PeerId(n as u64 - 1)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_branch_point);
criterion_main!(benches);
