//! Simulated `traceroute` over the route oracle.
//!
//! The paper's round 1 has the newcomer run a "traceroute-like tool" towards
//! its closest landmark and ship the discovered router path to the
//! management server. §3 adds that the tool "could be a decreased version of
//! the original one because we are only interested with some routers along
//! the path" (future work W4).
//!
//! This crate models exactly the observable behaviour of that tool over the
//! simulated topology:
//!
//! * TTL-by-TTL probing along the oracle route ([`Tracer::trace`]) — the
//!   tracer is `Send + Sync` and every trace is seed-deterministic, so many
//!   newcomers trace concurrently through one shared tracer with results
//!   bit-identical to a sequential run. A trace prices every TTL off the
//!   **one** tree rooted at its destination
//!   (`RouteOracle::route_annotated`); the hop-rooted per-hop-tree model
//!   survives behind [`TraceConfig::exact_hop_rtts`]. Bulk callers reuse
//!   [`TraceScratch`] buffers via [`Tracer::trace_with_scratch`];
//! * per-probe cost accounting (probes sent, elapsed time) so the
//!   setup-delay experiments can compare against coordinate systems;
//! * fault injection: anonymous routers (no ICMP reply) and probe loss with
//!   retries — the classic artefacts of real traceroute campaigns
//!   (Dall'Asta et al., cited by the paper);
//! * the *decreased* variants ([`ProbePlan`]): stride sampling and hard
//!   probe budgets, which trade path completeness for join speed.
//!
//! What is deliberately **not** modeled (see DESIGN.md §7): packet formats,
//! ICMP semantics, per-hop load balancing (real Paris-traceroute issues) —
//! the management server only consumes the router sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod trace;

pub use plan::ProbePlan;
pub use trace::{Hop, TraceConfig, TraceResult, TraceScratch, Tracer};
