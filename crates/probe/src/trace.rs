//! The TTL walk itself.

use crate::plan::ProbePlan;
use nearpeer_routing::{RouteHop, RouteOracle};
use nearpeer_topology::RouterId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunables of a trace — fault injection knobs included (smoltcp-style:
/// every example exposes these as command-line options).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Which TTLs to probe.
    pub plan: ProbePlan,
    /// Probes retried per TTL before the hop is recorded as anonymous.
    pub probes_per_hop: u32,
    /// Probability that a probe (or its reply) is lost.
    pub loss_probability: f64,
    /// Probability that a router never answers TTL-exceeded (an "anonymous"
    /// hop in mapper parlance) — applied per router, consistently for all
    /// its probes within one trace.
    pub anonymous_probability: f64,
    /// Fixed per-probe processing overhead added to the wire RTT, in
    /// microseconds (packet construction, ICMP generation).
    pub per_probe_overhead_us: u64,
    /// Price each hop's RTT through a shortest-path tree **rooted at the
    /// hop** (`RouteOracle::rtt_us(source, hop)`) instead of off the
    /// destination tree's latency prefix.
    ///
    /// Off by default: the default path reads the whole trace — routers
    /// *and* RTTs — from the one tree rooted at the destination
    /// (`RouteOracle::route_annotated`), so a 10k-peer round 1 builds
    /// O(landmarks) trees instead of one per distinct intermediate router.
    /// The two modes agree on the router sequence, reachability, and the
    /// destination's RTT always, and on every hop RTT whenever hop-shortest
    /// paths are unique; under equal-hop-count ties the hop-rooted tree may
    /// pick an equally short path with a *different latency* than the
    /// route's own prefix. Turn this on only when per-hop RTTs must match
    /// the hop-rooted model exactly (it rebuilds the lazy-tree cost the
    /// default path exists to avoid).
    pub exact_hop_rtts: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            plan: ProbePlan::Full,
            probes_per_hop: 3,
            loss_probability: 0.0,
            anonymous_probability: 0.0,
            per_probe_overhead_us: 200,
            exact_hop_rtts: false,
        }
    }
}

/// Reusable per-thread buffers for [`Tracer::trace_with_scratch`]: the
/// annotated route, the probe plan's TTLs, and the per-router anonymous
/// coin flips. One scratch per tracing thread turns the per-trace
/// allocation cost into amortized zero — the only `Vec` a trace allocates
/// is the `hops` it returns.
#[derive(Debug, Default)]
pub struct TraceScratch {
    route: Vec<RouteHop>,
    ttls: Vec<u32>,
    anonymous: Vec<bool>,
}

impl TraceScratch {
    /// Creates an empty scratch; buffers grow to the longest route seen.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One probed hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The TTL that was probed.
    pub ttl: u32,
    /// The router that answered, or `None` for an anonymous/lost hop.
    pub router: Option<RouterId>,
    /// RTT of the successful probe, in microseconds (0 for anonymous hops).
    pub rtt_us: u64,
}

/// Result of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceResult {
    /// The probing source (the peer's access router).
    pub source: RouterId,
    /// The trace target (the landmark's router).
    pub destination: RouterId,
    /// Probed hops in TTL order.
    pub hops: Vec<Hop>,
    /// Whether the destination itself answered.
    pub destination_reached: bool,
    /// Total probes sent (including lost ones).
    pub probes_sent: u32,
    /// Wall-clock cost of the sequential probe run, in microseconds.
    pub elapsed_us: u64,
}

impl TraceResult {
    /// The router path as the management server consumes it: the source
    /// access router followed by every *identified* hop, in order.
    /// Anonymous hops are simply skipped — the path-tree tolerates holes,
    /// it just loses some branch resolution.
    pub fn router_path(&self) -> Vec<RouterId> {
        let mut path = vec![self.source];
        for hop in &self.hops {
            if let Some(r) = hop.router {
                if path.last() != Some(&r) {
                    path.push(r);
                }
            }
        }
        path
    }

    /// Fraction of probed hops that were identified (1.0 = clean trace).
    pub fn completeness(&self) -> f64 {
        if self.hops.is_empty() {
            return 1.0;
        }
        let known = self.hops.iter().filter(|h| h.router.is_some()).count();
        known as f64 / self.hops.len() as f64
    }
}

/// Runs traces over a route oracle.
///
/// The tracer is `Send + Sync` (the oracle it borrows is shareable), so one
/// tracer serves any number of threads: the swarm builder fans round 1 out
/// over peer chunks with plain `&Tracer` references. Each trace derives all
/// of its randomness from the `seed` argument, never from shared state, so
/// concurrent traces are bit-identical to the same traces run sequentially.
pub struct Tracer<'o, 't> {
    oracle: &'o RouteOracle<'t>,
    config: TraceConfig,
}

impl<'o, 't> Tracer<'o, 't> {
    /// Creates a tracer with the given config.
    pub fn new(oracle: &'o RouteOracle<'t>, config: TraceConfig) -> Self {
        Self { oracle, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The route oracle this tracer probes against.
    pub fn oracle(&self) -> &'o RouteOracle<'t> {
        self.oracle
    }

    /// Traces from `source` towards `destination`; `None` when the two are
    /// disconnected. Deterministic per `(topology, config, seed)`.
    pub fn trace(&self, source: RouterId, destination: RouterId, seed: u64) -> Option<TraceResult> {
        self.trace_with_scratch(source, destination, seed, &mut TraceScratch::new())
    }

    /// [`Tracer::trace`] reusing caller-owned buffers — the bulk-tracing
    /// form the swarm builder uses (one [`TraceScratch`] per worker).
    /// Results are identical to [`Tracer::trace`].
    pub fn trace_with_scratch(
        &self,
        source: RouterId,
        destination: RouterId,
        seed: u64,
        scratch: &mut TraceScratch,
    ) -> Option<TraceResult> {
        let TraceScratch {
            route,
            ttls,
            anonymous,
        } = scratch;
        // One tree per trace: the destination tree yields the routers AND
        // each hop's one-way latency prefix.
        if !self.oracle.route_annotated_into(source, destination, route) {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // route[0] = source, route[k] = router at TTL k.
        let path_len = (route.len() - 1) as u32;
        self.config.plan.ttls_into(path_len, ttls);

        let mut hops = Vec::with_capacity(ttls.len());
        let mut probes_sent = 0u32;
        let mut elapsed_us = 0u64;
        let mut destination_reached = false;

        // Anonymous routers are drawn once per trace so retries at the same
        // TTL behave consistently. Drawn per route entry, up front, so the
        // RNG stream is identical whichever TTLs the plan selects (and
        // identical to every release since the seed).
        anonymous.clear();
        anonymous.extend(
            route
                .iter()
                .map(|_| rng.gen::<f64>() < self.config.anonymous_probability),
        );

        for &ttl in ttls.iter() {
            let hop = route[ttl as usize];
            let router = hop.router;
            let is_dst = router == destination;
            // RTT to the hop: twice the one-way latency prefix along the
            // route — already carried by the annotated hop. The exact mode
            // re-derives it from a tree rooted at the hop instead (see
            // `TraceConfig::exact_hop_rtts` for when the two differ).
            let hop_rtt = if self.config.exact_hop_rtts {
                self.oracle
                    .rtt_us(source, router)
                    .expect("hop on a connected route")
            } else {
                hop.prefix_latency_us * 2
            };
            let mut answered = false;
            for _ in 0..self.config.probes_per_hop.max(1) {
                probes_sent += 1;
                let probe_cost = hop_rtt + self.config.per_probe_overhead_us;
                if anonymous[ttl as usize] && !is_dst {
                    // No reply will ever come: pay a timeout (modeled as the
                    // overhead plus twice the would-be RTT).
                    elapsed_us += probe_cost * 2;
                    continue;
                }
                if rng.gen::<f64>() < self.config.loss_probability {
                    elapsed_us += probe_cost * 2; // timeout
                    continue;
                }
                elapsed_us += probe_cost;
                answered = true;
                break;
            }
            if answered {
                hops.push(Hop {
                    ttl,
                    router: Some(router),
                    rtt_us: hop_rtt,
                });
                if is_dst {
                    destination_reached = true;
                }
            } else {
                hops.push(Hop {
                    ttl,
                    router: None,
                    rtt_us: 0,
                });
            }
        }

        Some(TraceResult {
            source,
            destination,
            hops,
            destination_reached,
            probes_sent,
            elapsed_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::generators::regular;

    fn line_oracle(n: usize) -> nearpeer_topology::Topology {
        regular::line(n)
    }

    #[test]
    fn clean_trace_recovers_route() {
        let t = line_oracle(5);
        let oracle = RouteOracle::new(&t);
        let tracer = Tracer::new(&oracle, TraceConfig::default());
        let res = tracer.trace(RouterId(0), RouterId(4), 1).unwrap();
        assert!(res.destination_reached);
        assert_eq!(res.completeness(), 1.0);
        assert_eq!(
            res.router_path(),
            vec![
                RouterId(0),
                RouterId(1),
                RouterId(2),
                RouterId(3),
                RouterId(4)
            ]
        );
        // One probe per hop when nothing is lost.
        assert_eq!(res.probes_sent, 4);
    }

    #[test]
    fn rtt_grows_with_ttl() {
        let t = line_oracle(4);
        let oracle = RouteOracle::new(&t);
        let tracer = Tracer::new(&oracle, TraceConfig::default());
        let res = tracer.trace(RouterId(0), RouterId(3), 1).unwrap();
        let rtts: Vec<u64> = res.hops.iter().map(|h| h.rtt_us).collect();
        assert!(rtts.windows(2).all(|w| w[0] < w[1]), "rtts {rtts:?}");
    }

    #[test]
    fn anonymous_hops_leave_holes_but_keep_endpoints() {
        let t = line_oracle(8);
        let oracle = RouteOracle::new(&t);
        let cfg = TraceConfig {
            anonymous_probability: 0.9,
            probes_per_hop: 1,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(&oracle, cfg);
        let res = tracer.trace(RouterId(0), RouterId(7), 42).unwrap();
        // The destination always answers (anonymous does not apply to it).
        assert!(res.destination_reached);
        assert!(res.completeness() < 1.0);
        let path = res.router_path();
        assert_eq!(path.first(), Some(&RouterId(0)));
        assert_eq!(path.last(), Some(&RouterId(7)));
    }

    #[test]
    fn loss_costs_probes_and_time() {
        let t = line_oracle(4);
        let oracle = RouteOracle::new(&t);
        let clean = Tracer::new(&oracle, TraceConfig::default())
            .trace(RouterId(0), RouterId(3), 7)
            .unwrap();
        let lossy_cfg = TraceConfig {
            loss_probability: 0.5,
            ..TraceConfig::default()
        };
        let lossy = Tracer::new(&oracle, lossy_cfg)
            .trace(RouterId(0), RouterId(3), 7)
            .unwrap();
        assert!(lossy.probes_sent >= clean.probes_sent);
        assert!(lossy.elapsed_us > clean.elapsed_us);
    }

    #[test]
    fn decreased_stride_sends_fewer_probes() {
        let t = line_oracle(12);
        let oracle = RouteOracle::new(&t);
        let full = Tracer::new(&oracle, TraceConfig::default())
            .trace(RouterId(0), RouterId(11), 3)
            .unwrap();
        let dec_cfg = TraceConfig {
            plan: ProbePlan::Stride(3),
            ..TraceConfig::default()
        };
        let dec = Tracer::new(&oracle, dec_cfg)
            .trace(RouterId(0), RouterId(11), 3)
            .unwrap();
        assert!(dec.probes_sent < full.probes_sent);
        assert!(dec.elapsed_us < full.elapsed_us);
        assert!(dec.destination_reached);
        // The decreased path is a subsequence of the full path.
        let full_path = full.router_path();
        let dec_path = dec.router_path();
        let mut it = full_path.iter();
        for r in &dec_path {
            assert!(it.any(|x| x == r), "{r} out of order");
        }
    }

    #[test]
    fn disconnected_is_none_and_self_trace_is_empty() {
        let t = nearpeer_topology::TopologyBuilder::with_routers(2).build();
        let oracle = RouteOracle::new(&t);
        let tracer = Tracer::new(&oracle, TraceConfig::default());
        assert!(tracer.trace(RouterId(0), RouterId(1), 1).is_none());

        let t2 = line_oracle(3);
        let oracle2 = RouteOracle::new(&t2);
        let tracer2 = Tracer::new(&oracle2, TraceConfig::default());
        let res = tracer2.trace(RouterId(1), RouterId(1), 1).unwrap();
        assert!(res.hops.is_empty());
        assert_eq!(res.router_path(), vec![RouterId(1)]);
        assert_eq!(res.probes_sent, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = line_oracle(10);
        let oracle = RouteOracle::new(&t);
        let cfg = TraceConfig {
            loss_probability: 0.3,
            anonymous_probability: 0.2,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(&oracle, cfg);
        let a = tracer.trace(RouterId(0), RouterId(9), 5).unwrap();
        let b = tracer.trace(RouterId(0), RouterId(9), 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tracer_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tracer<'static, 'static>>();
    }

    #[test]
    fn concurrent_traces_match_sequential_traces() {
        let t = line_oracle(12);
        let oracle = RouteOracle::new(&t);
        let cfg = TraceConfig {
            loss_probability: 0.2,
            anonymous_probability: 0.1,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(&oracle, cfg);
        let sources: Vec<RouterId> = (0..11).map(RouterId).collect();
        let sequential: Vec<_> = sources
            .iter()
            .enumerate()
            .map(|(i, &src)| tracer.trace(src, RouterId(11), i as u64))
            .collect();
        let mut concurrent: Vec<Option<TraceResult>> = vec![None; sources.len()];
        std::thread::scope(|s| {
            for (chunk_idx, (srcs, out)) in
                sources.chunks(3).zip(concurrent.chunks_mut(3)).enumerate()
            {
                let tracer = &tracer;
                s.spawn(move || {
                    for (k, (&src, slot)) in srcs.iter().zip(out.iter_mut()).enumerate() {
                        *slot = tracer.trace(src, RouterId(11), (chunk_idx * 3 + k) as u64);
                    }
                });
            }
        });
        assert_eq!(concurrent, sequential);
    }
}
