//! Probe plans: which TTLs a trace probes.

/// Strategy choosing which TTLs to probe — the paper's "decreased
/// traceroute" knob (W4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProbePlan {
    /// Probe every TTL from 1 until the destination answers (classic
    /// traceroute).
    Full,
    /// Probe TTL 1, then every `stride`-th TTL, then the destination. The
    /// path arrives with holes, but the probe count drops by ~`stride`×.
    Stride(u32),
    /// Probe at most this many TTLs, evenly spread along the path (always
    /// including TTL 1 and the destination).
    Budget(u32),
}

impl ProbePlan {
    /// The TTLs to probe for a route of `path_len` hops (destination at TTL
    /// `path_len`). Always non-empty for `path_len >= 1`, always sorted,
    /// always ends at `path_len`.
    pub fn ttls(&self, path_len: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.ttls_into(path_len, &mut out);
        out
    }

    /// [`ProbePlan::ttls`] into a caller-owned buffer (cleared first) — the
    /// allocation-free form for trace hot loops.
    pub fn ttls_into(&self, path_len: u32, out: &mut Vec<u32>) {
        out.clear();
        if path_len == 0 {
            return;
        }
        match *self {
            ProbePlan::Full => out.extend(1..=path_len),
            ProbePlan::Stride(stride) => {
                let stride = stride.max(1);
                out.extend((1..=path_len).step_by(stride as usize));
                if *out.last().expect("path_len >= 1") != path_len {
                    out.push(path_len);
                }
            }
            ProbePlan::Budget(budget) => {
                let budget = budget.max(1).min(path_len);
                if budget == 1 {
                    out.push(path_len);
                    return;
                }
                out.extend(
                    (0..budget).map(|i| {
                        1 + (i as u64 * (path_len - 1) as u64 / (budget - 1) as u64) as u32
                    }),
                );
                out.dedup();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_probes_everything() {
        assert_eq!(ProbePlan::Full.ttls(4), vec![1, 2, 3, 4]);
        assert!(ProbePlan::Full.ttls(0).is_empty());
    }

    #[test]
    fn stride_keeps_endpoints() {
        assert_eq!(ProbePlan::Stride(2).ttls(7), vec![1, 3, 5, 7]);
        assert_eq!(ProbePlan::Stride(3).ttls(8), vec![1, 4, 7, 8]);
        // Stride 0 behaves like stride 1.
        assert_eq!(ProbePlan::Stride(0).ttls(3), vec![1, 2, 3]);
    }

    #[test]
    fn budget_spreads_evenly() {
        assert_eq!(ProbePlan::Budget(2).ttls(10), vec![1, 10]);
        assert_eq!(ProbePlan::Budget(4).ttls(10), vec![1, 4, 7, 10]);
        // Budget larger than the path degrades to Full.
        assert_eq!(ProbePlan::Budget(99).ttls(3), vec![1, 2, 3]);
        // Budget 1 probes only the destination.
        assert_eq!(ProbePlan::Budget(1).ttls(5), vec![5]);
    }

    #[test]
    fn always_sorted_and_terminal() {
        for plan in [ProbePlan::Full, ProbePlan::Stride(3), ProbePlan::Budget(3)] {
            for len in 1..20 {
                let ttls = plan.ttls(len);
                assert!(!ttls.is_empty());
                assert!(ttls.windows(2).all(|w| w[0] < w[1]), "{plan:?} len {len}");
                assert_eq!(*ttls.last().unwrap(), len, "{plan:?} len {len}");
            }
        }
    }
}
