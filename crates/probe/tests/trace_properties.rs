//! Property tests for the simulated traceroute: discovered paths must be
//! consistent subsequences of the oracle route under every plan and fault
//! mix.

use nearpeer_probe::{ProbePlan, TraceConfig, TraceScratch, Tracer};
use nearpeer_routing::RouteOracle;
use nearpeer_topology::generators::{mapper, MapperConfig};
use nearpeer_topology::{RouterId, Topology, TopologyBuilder};
use proptest::prelude::*;

fn arb_plan() -> impl Strategy<Value = ProbePlan> {
    prop_oneof![
        Just(ProbePlan::Full),
        (1u32..6).prop_map(ProbePlan::Stride),
        (1u32..6).prop_map(ProbePlan::Budget),
    ]
}

/// A random tree topology: unique paths, hence no shortest-path ties —
/// the regime where the default (destination-tree prefix) and
/// `exact_hop_rtts` (per-hop-tree) pricing must agree on every field.
fn tree_topology(n: usize, seed: u64) -> Topology {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut b = TopologyBuilder::with_routers(n);
    for i in 1..n {
        let parent = (next() % i as u64) as u32;
        let latency = 10_000 + 977 * i as u32 + (next() % 997) as u32;
        b.link(RouterId(i as u32), RouterId(parent), latency)
            .expect("parent < i: no self-loops or duplicates");
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trace_paths_are_route_subsequences(
        seed in 0u64..300,
        pick in any::<u64>(),
        plan in arb_plan(),
        loss in 0.0f64..0.6,
        anon in 0.0f64..0.6,
    ) {
        let topo = mapper(&MapperConfig::with_access(40, 60), seed).unwrap();
        let oracle = RouteOracle::new(&topo);
        let access = topo.access_routers();
        let src = access[(pick % access.len() as u64) as usize];
        let dst = RouterId((pick % 40) as u32); // a core router
        let cfg = TraceConfig {
            plan,
            loss_probability: loss,
            anonymous_probability: anon,
            probes_per_hop: 2,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(&oracle, cfg);
        let trace = tracer.trace(src, dst, seed ^ pick).expect("connected");
        let route = oracle.route(src, dst).expect("connected");

        // The reported path is a subsequence of the true route, starting at
        // the source.
        let path = trace.router_path();
        prop_assert_eq!(path[0], src);
        let mut route_iter = route.iter();
        for hop in &path {
            prop_assert!(
                route_iter.any(|r| r == hop),
                "hop {} out of order or off-route", hop
            );
        }
        // Probe accounting is sane.
        prop_assert!(trace.probes_sent >= trace.hops.len() as u32);
        prop_assert!(trace.completeness() >= 0.0 && trace.completeness() <= 1.0);
        // The destination hop, when answered, is the destination.
        if trace.destination_reached {
            prop_assert_eq!(*path.last().unwrap(), dst);
        }
    }

    #[test]
    fn cost_monotone_in_faults(seed in 0u64..200, pick in any::<u64>()) {
        let topo = mapper(&MapperConfig::with_access(40, 60), seed).unwrap();
        let oracle = RouteOracle::new(&topo);
        let access = topo.access_routers();
        let src = access[(pick % access.len() as u64) as usize];
        let dst = RouterId((pick % 40) as u32);
        let clean = Tracer::new(&oracle, TraceConfig::default())
            .trace(src, dst, seed)
            .unwrap();
        let lossy_cfg = TraceConfig { loss_probability: 0.5, ..TraceConfig::default() };
        let lossy = Tracer::new(&oracle, lossy_cfg).trace(src, dst, seed).unwrap();
        prop_assert!(lossy.probes_sent >= clean.probes_sent);
        prop_assert!(lossy.elapsed_us >= clean.elapsed_us);
    }

    #[test]
    fn default_equals_exact_mode_on_tie_free_topologies(
        n in 4usize..50,
        seed in 0u64..300,
        pick in any::<u64>(),
        plan in arb_plan(),
        loss in 0.0f64..0.5,
        anon in 0.0f64..0.5,
    ) {
        let topo = tree_topology(n, seed);
        let oracle = RouteOracle::new(&topo);
        let src = RouterId((pick % n as u64) as u32);
        let dst = RouterId(((pick / n as u64) % n as u64) as u32);
        let base = TraceConfig {
            plan,
            loss_probability: loss,
            anonymous_probability: anon,
            probes_per_hop: 2,
            ..TraceConfig::default()
        };
        let default_trace = Tracer::new(&oracle, base).trace(src, dst, seed ^ pick).unwrap();
        let exact_cfg = TraceConfig { exact_hop_rtts: true, ..base };
        let exact_trace = Tracer::new(&oracle, exact_cfg).trace(src, dst, seed ^ pick).unwrap();
        // Every field — routers, RTTs, probe counts, elapsed time — agrees
        // when shortest paths are unique.
        prop_assert_eq!(default_trace, exact_trace);
    }

    #[test]
    fn structural_fields_agree_between_modes_even_with_ties(
        seed in 0u64..200,
        pick in any::<u64>(),
        plan in arb_plan(),
    ) {
        // Mapper graphs have equal-hop-count ties, so per-hop RTTs may
        // differ between the modes — but the router sequence, reachability
        // and probe accounting must not.
        let topo = mapper(&MapperConfig::with_access(40, 60), seed).unwrap();
        let oracle = RouteOracle::new(&topo);
        let access = topo.access_routers();
        let src = access[(pick % access.len() as u64) as usize];
        let dst = RouterId((pick % 40) as u32);
        let base = TraceConfig { plan, ..TraceConfig::default() };
        let default_trace = Tracer::new(&oracle, base).trace(src, dst, seed ^ pick).unwrap();
        let exact_cfg = TraceConfig { exact_hop_rtts: true, ..base };
        let exact_trace = Tracer::new(&oracle, exact_cfg).trace(src, dst, seed ^ pick).unwrap();
        prop_assert_eq!(default_trace.router_path(), exact_trace.router_path());
        prop_assert_eq!(default_trace.destination_reached, exact_trace.destination_reached);
        prop_assert_eq!(default_trace.probes_sent, exact_trace.probes_sent);
        let d_hops: Vec<(u32, Option<RouterId>)> =
            default_trace.hops.iter().map(|h| (h.ttl, h.router)).collect();
        let e_hops: Vec<(u32, Option<RouterId>)> =
            exact_trace.hops.iter().map(|h| (h.ttl, h.router)).collect();
        prop_assert_eq!(d_hops, e_hops);
    }

    #[test]
    fn scratch_reuse_reproduces_fresh_traces(
        seed in 0u64..200,
        pick in any::<u64>(),
        plan in arb_plan(),
        loss in 0.0f64..0.5,
        anon in 0.0f64..0.5,
    ) {
        let topo = mapper(&MapperConfig::with_access(40, 60), seed).unwrap();
        let oracle = RouteOracle::new(&topo);
        let access = topo.access_routers();
        let cfg = TraceConfig {
            plan,
            loss_probability: loss,
            anonymous_probability: anon,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(&oracle, cfg);
        // One scratch across several different (src, dst, seed) traces must
        // reproduce the fresh-allocation results exactly.
        let mut scratch = TraceScratch::new();
        for k in 0..5u64 {
            let src = access[((pick + k) % access.len() as u64) as usize];
            let dst = RouterId(((pick / (k + 1)) % 40) as u32);
            let fresh = tracer.trace(src, dst, seed ^ k);
            let reused = tracer.trace_with_scratch(src, dst, seed ^ k, &mut scratch);
            prop_assert_eq!(fresh, reused, "trace {}", k);
        }
    }

    #[test]
    fn plans_never_exceed_full_cost(seed in 0u64..200, stride in 2u32..6) {
        let topo = mapper(&MapperConfig::with_access(40, 60), seed).unwrap();
        let oracle = RouteOracle::new(&topo);
        let access = topo.access_routers();
        let src = access[0];
        let dst = RouterId(0);
        // A GLP core node can itself have degree 1, making it an "access"
        // router; skip the degenerate src == dst draw.
        prop_assume!(src != dst);
        let full = Tracer::new(&oracle, TraceConfig::default())
            .trace(src, dst, seed)
            .unwrap();
        let dec_cfg = TraceConfig { plan: ProbePlan::Stride(stride), ..TraceConfig::default() };
        let dec = Tracer::new(&oracle, dec_cfg).trace(src, dst, seed).unwrap();
        prop_assert!(dec.probes_sent <= full.probes_sent);
        prop_assert!(dec.destination_reached);
    }
}
