//! Property tests for the simulated traceroute: discovered paths must be
//! consistent subsequences of the oracle route under every plan and fault
//! mix.

use nearpeer_probe::{ProbePlan, TraceConfig, Tracer};
use nearpeer_routing::RouteOracle;
use nearpeer_topology::generators::{mapper, MapperConfig};
use nearpeer_topology::RouterId;
use proptest::prelude::*;

fn arb_plan() -> impl Strategy<Value = ProbePlan> {
    prop_oneof![
        Just(ProbePlan::Full),
        (1u32..6).prop_map(ProbePlan::Stride),
        (1u32..6).prop_map(ProbePlan::Budget),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trace_paths_are_route_subsequences(
        seed in 0u64..300,
        pick in any::<u64>(),
        plan in arb_plan(),
        loss in 0.0f64..0.6,
        anon in 0.0f64..0.6,
    ) {
        let topo = mapper(&MapperConfig::with_access(40, 60), seed).unwrap();
        let oracle = RouteOracle::new(&topo);
        let access = topo.access_routers();
        let src = access[(pick % access.len() as u64) as usize];
        let dst = RouterId((pick % 40) as u32); // a core router
        let cfg = TraceConfig {
            plan,
            loss_probability: loss,
            anonymous_probability: anon,
            probes_per_hop: 2,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(&oracle, cfg);
        let trace = tracer.trace(src, dst, seed ^ pick).expect("connected");
        let route = oracle.route(src, dst).expect("connected");

        // The reported path is a subsequence of the true route, starting at
        // the source.
        let path = trace.router_path();
        prop_assert_eq!(path[0], src);
        let mut route_iter = route.iter();
        for hop in &path {
            prop_assert!(
                route_iter.any(|r| r == hop),
                "hop {} out of order or off-route", hop
            );
        }
        // Probe accounting is sane.
        prop_assert!(trace.probes_sent >= trace.hops.len() as u32);
        prop_assert!(trace.completeness() >= 0.0 && trace.completeness() <= 1.0);
        // The destination hop, when answered, is the destination.
        if trace.destination_reached {
            prop_assert_eq!(*path.last().unwrap(), dst);
        }
    }

    #[test]
    fn cost_monotone_in_faults(seed in 0u64..200, pick in any::<u64>()) {
        let topo = mapper(&MapperConfig::with_access(40, 60), seed).unwrap();
        let oracle = RouteOracle::new(&topo);
        let access = topo.access_routers();
        let src = access[(pick % access.len() as u64) as usize];
        let dst = RouterId((pick % 40) as u32);
        let clean = Tracer::new(&oracle, TraceConfig::default())
            .trace(src, dst, seed)
            .unwrap();
        let lossy_cfg = TraceConfig { loss_probability: 0.5, ..TraceConfig::default() };
        let lossy = Tracer::new(&oracle, lossy_cfg).trace(src, dst, seed).unwrap();
        prop_assert!(lossy.probes_sent >= clean.probes_sent);
        prop_assert!(lossy.elapsed_us >= clean.elapsed_us);
    }

    #[test]
    fn plans_never_exceed_full_cost(seed in 0u64..200, stride in 2u32..6) {
        let topo = mapper(&MapperConfig::with_access(40, 60), seed).unwrap();
        let oracle = RouteOracle::new(&topo);
        let access = topo.access_routers();
        let src = access[0];
        let dst = RouterId(0);
        // A GLP core node can itself have degree 1, making it an "access"
        // router; skip the degenerate src == dst draw.
        prop_assume!(src != dst);
        let full = Tracer::new(&oracle, TraceConfig::default())
            .trace(src, dst, seed)
            .unwrap();
        let dec_cfg = TraceConfig { plan: ProbePlan::Stride(stride), ..TraceConfig::default() };
        let dec = Tracer::new(&oracle, dec_cfg).trace(src, dst, seed).unwrap();
        prop_assert!(dec.probes_sent <= full.probes_sent);
        prop_assert!(dec.destination_reached);
    }
}
