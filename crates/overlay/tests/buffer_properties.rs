//! Property tests for the overlay substrate: buffer-map semantics and
//! scheduler sanity under arbitrary operation sequences.

use nearpeer_overlay::{pick_request, BufferMap};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum BufOp {
    Mark(u64),
    Advance(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<BufOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..200).prop_map(BufOp::Mark),
            (0u64..200).prop_map(BufOp::Advance),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn buffer_map_model_conformance(window in 1usize..32, ops in arb_ops()) {
        let mut bm = BufferMap::new(window);
        // Reference model: explicit base + held set.
        let mut base = 0u64;
        let mut held: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            match op {
                BufOp::Mark(c) => {
                    let in_window = c >= base && c < base + bm.len() as u64;
                    let fresh = in_window && !held.contains(&c);
                    prop_assert_eq!(bm.mark(c), fresh, "mark({}) base {}", c, base);
                    if in_window {
                        held.insert(c);
                    }
                }
                BufOp::Advance(b) => {
                    bm.advance(b);
                    if b > base {
                        base = b;
                        held.retain(|&c| c >= base);
                    }
                }
            }
            prop_assert_eq!(bm.base(), base);
            prop_assert_eq!(bm.count(), held.len());
            for c in base..base + bm.len() as u64 {
                prop_assert_eq!(bm.has(c), held.contains(&c), "has({})", c);
            }
            // Everything behind the base counts as played out.
            if base > 0 {
                prop_assert!(bm.has(base - 1));
            }
        }
    }

    #[test]
    fn missing_in_is_complement_of_has(window in 1usize..24, marks in prop::collection::vec(0u64..24, 0..24)) {
        let mut bm = BufferMap::new(window);
        for c in marks {
            bm.mark(c);
        }
        let missing = bm.missing_in(0, bm.len() as u64);
        for c in 0..bm.len() as u64 {
            prop_assert_eq!(missing.contains(&c), !bm.has(c));
        }
    }

    #[test]
    fn scheduler_only_requests_servable_missing_chunks(
        window in 2usize..16,
        my_marks in prop::collection::vec(0u64..16, 0..10),
        neighbor_marks in prop::collection::vec(prop::collection::vec(0u64..16, 0..10), 1..4),
        playback in 0u64..8,
        horizon in 0u64..6,
        pending in prop::collection::vec(0u64..16, 0..4),
    ) {
        let mut mine = BufferMap::new(window);
        for c in my_marks {
            mine.mark(c);
        }
        let neighbors: Vec<BufferMap> = neighbor_marks
            .iter()
            .map(|marks| {
                let mut bm = BufferMap::new(window);
                for &c in marks {
                    bm.mark(c);
                }
                bm
            })
            .collect();
        if let Some((chunk, provider)) =
            pick_request(&mine, playback, horizon, &neighbors, &pending)
        {
            prop_assert!(!mine.has(chunk), "requested a chunk we hold");
            prop_assert!(!pending.contains(&chunk), "requested an in-flight chunk");
            prop_assert!(provider < neighbors.len());
            prop_assert!(neighbors[provider].has(chunk), "provider lacks the chunk");
        }
    }
}
