//! Mesh live-streaming overlay — the application the paper motivates.
//!
//! §1 of the paper: in mesh-based live streaming (PULSE-style), a newcomer
//! experiences a *setup delay* before video becomes visible, and "the
//! playback delay of a peer should ideally be the same than the ones of its
//! neighbors because chunk exchanges are easier to manage when neighbors
//! focus simultaneously on the same set of chunks". Closer neighbors →
//! lower exchange latency → faster setup and tighter playback alignment.
//!
//! This crate provides the minimal honest version of such a system, enough
//! to measure that end-to-end effect (experiment A2):
//!
//! * [`BufferMap`] — the sliding chunk window peers advertise;
//! * [`pick_request`] — the request scheduler (rarest-first within the
//!   window, playback-urgent first at the deadline);
//! * [`SourceActor`] / [`StreamPeer`] — `nearpeer-sim` actors implementing
//!   announce/request/deliver mesh-pull streaming;
//! * [`StreamStats`] — per-peer startup delay, playback delay, continuity.
//!
//! Deliberately not modeled: video codecs, TCP dynamics, upload capacity
//! auctions — the experiments compare neighbor *selection* policies, which
//! only needs chunk exchange over realistic latencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actors;
mod buffer;
mod schedule;

pub use actors::{OverlayMsg, SourceActor, StreamPeer, StreamStats};
pub use buffer::BufferMap;
pub use schedule::pick_request;
