//! Streaming actors for `nearpeer-sim`: a chunk source and mesh peers.

use crate::buffer::BufferMap;
use crate::schedule::pick_request;
use nearpeer_sim::{Actor, Context, NodeId, SimTime, TimerId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

const TIMER_SOURCE_TICK: TimerId = TimerId(10);
const TIMER_SCHEDULE: TimerId = TimerId(11);
const TIMER_PLAYBACK: TimerId = TimerId(12);

/// Mesh-pull streaming messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayMsg {
    /// Sender advertises the chunks it holds (window base + held ids).
    Announce {
        /// Window base of the sender.
        base: u64,
        /// Chunk ids the sender holds.
        have: Vec<u64>,
    },
    /// Ask the receiver for one chunk.
    Request {
        /// The wanted chunk.
        chunk: u64,
    },
    /// Chunk delivery.
    Chunk {
        /// The delivered chunk.
        chunk: u64,
    },
}

/// The streaming source: produces one chunk per interval and announces it
/// to its direct neighbors; serves requests for anything it has produced.
pub struct SourceActor {
    neighbors: Vec<NodeId>,
    chunk_interval_us: u64,
    total_chunks: u64,
    produced: u64,
}

impl SourceActor {
    /// Creates a source streaming `total_chunks` chunks to `neighbors`.
    pub fn new(neighbors: Vec<NodeId>, chunk_interval_us: u64, total_chunks: u64) -> Self {
        Self {
            neighbors,
            chunk_interval_us,
            total_chunks,
            produced: 0,
        }
    }
}

impl Actor<OverlayMsg> for SourceActor {
    fn on_start(&mut self, ctx: &mut Context<'_, OverlayMsg>) {
        ctx.set_timer(self.chunk_interval_us, TIMER_SOURCE_TICK);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, OverlayMsg>, from: NodeId, msg: OverlayMsg) {
        if let OverlayMsg::Request { chunk } = msg {
            if chunk < self.produced {
                ctx.send(from, OverlayMsg::Chunk { chunk });
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, OverlayMsg>, id: TimerId) {
        if id != TIMER_SOURCE_TICK || self.produced >= self.total_chunks {
            return;
        }
        let chunk = self.produced;
        self.produced += 1;
        // The announced base must advance with production, or receivers'
        // fixed-size view of the source never slides past its window and
        // chunks beyond it become invisible. Keep a generous tail so slow
        // peers can still fetch recent history from the source.
        let base = chunk.saturating_sub(31);
        for &n in &self.neighbors {
            ctx.send(
                n,
                OverlayMsg::Announce {
                    base,
                    have: vec![chunk],
                },
            );
        }
        if self.produced < self.total_chunks {
            ctx.set_timer(self.chunk_interval_us, TIMER_SOURCE_TICK);
        }
    }
}

/// Per-peer streaming outcome, shared with the experiment.
#[derive(Debug, Default, Clone)]
pub struct StreamStats {
    /// When the peer entered the mesh.
    pub started_at: Option<SimTime>,
    /// When the first chunk arrived.
    pub first_chunk_at: Option<SimTime>,
    /// When playback began (buffer filled to the startup threshold) — the
    /// paper's *setup delay* endpoint.
    pub playback_started_at: Option<SimTime>,
    /// Chunks received.
    pub chunks_received: u64,
    /// Chunks played on schedule.
    pub chunks_played: u64,
    /// Playback ticks that stalled on a missing chunk.
    pub stalls: u64,
    /// Chunks given up on after a stall streak (skipped, like a real
    /// player dropping frames rather than freezing forever).
    pub chunks_skipped: u64,
    /// Requests sent.
    pub requests_sent: u64,
}

impl StreamStats {
    /// Setup delay (join → playback start), if playback started.
    pub fn setup_delay_us(&self) -> Option<u64> {
        match (self.started_at, self.playback_started_at) {
            (Some(s), Some(p)) => Some(p.saturating_since(s)),
            _ => None,
        }
    }

    /// Playback continuity in `[0, 1]`: the fraction of the chunks the
    /// player consumed (played or skipped) that were actually shown.
    pub fn continuity(&self) -> f64 {
        let total = self.chunks_played + self.chunks_skipped;
        if total == 0 {
            0.0
        } else {
            self.chunks_played as f64 / total as f64
        }
    }
}

/// A mesh peer: announces what it has, requests what it misses
/// (deadline-first near playback, rarest-first otherwise), plays back once
/// `startup_chunks` are buffered.
pub struct StreamPeer {
    neighbors: Vec<NodeId>,
    buffer: BufferMap,
    neighbor_maps: HashMap<NodeId, BufferMap>,
    pending: Vec<(u64, SimTime)>,
    max_pending: usize,
    request_timeout_us: u64,
    chunk_interval_us: u64,
    startup_chunks: usize,
    urgent_horizon: u64,
    playing: bool,
    playback_pos: u64,
    /// The stream's known length; playback stops at this chunk instead of
    /// stalling forever past the end.
    stream_end: u64,
    /// Consecutive stalls at the current position; at
    /// `max_stall_streak` the player skips the chunk (real players drop
    /// frames instead of freezing until the horizon).
    stall_streak: u32,
    max_stall_streak: u32,
    stats: Rc<RefCell<StreamStats>>,
}

impl StreamPeer {
    /// Creates a peer with the given mesh neighbors (the source may be one
    /// of them). `stream_end` is the stream length in chunks (playback
    /// stops there; use `u64::MAX` for an open-ended stream).
    pub fn new(
        neighbors: Vec<NodeId>,
        window: usize,
        chunk_interval_us: u64,
        startup_chunks: usize,
        stream_end: u64,
        stats: Rc<RefCell<StreamStats>>,
    ) -> Self {
        Self {
            neighbors,
            buffer: BufferMap::new(window),
            neighbor_maps: HashMap::new(),
            pending: Vec::new(),
            max_pending: 4,
            request_timeout_us: chunk_interval_us * 4,
            chunk_interval_us,
            startup_chunks: startup_chunks.max(1),
            urgent_horizon: 3,
            playing: false,
            playback_pos: 0,
            stream_end,
            stall_streak: 0,
            max_stall_streak: 8,
            stats,
        }
    }

    fn announce_to_neighbors(&self, ctx: &mut Context<'_, OverlayMsg>) {
        let msg = OverlayMsg::Announce {
            base: self.buffer.base(),
            have: self.buffer.held(),
        };
        for &n in &self.neighbors {
            ctx.send(n, msg.clone());
        }
    }

    fn schedule_requests(&mut self, ctx: &mut Context<'_, OverlayMsg>) {
        // Expire stale requests.
        let now = ctx.now();
        let timeout = self.request_timeout_us;
        self.pending
            .retain(|&(_, sent)| now.saturating_since(sent) < timeout);

        while self.pending.len() < self.max_pending {
            let pending_ids: Vec<u64> = self.pending.iter().map(|&(c, _)| c).collect();
            let maps: Vec<BufferMap> = self
                .neighbors
                .iter()
                .map(|n| {
                    self.neighbor_maps
                        .get(n)
                        .cloned()
                        .unwrap_or_else(|| BufferMap::new(1))
                })
                .collect();
            let Some((chunk, provider)) = pick_request(
                &self.buffer,
                self.playback_pos,
                self.urgent_horizon,
                &maps,
                &pending_ids,
            ) else {
                break;
            };
            let target = self.neighbors[provider];
            ctx.send(target, OverlayMsg::Request { chunk });
            self.pending.push((chunk, now));
            self.stats.borrow_mut().requests_sent += 1;
        }
    }
}

impl Actor<OverlayMsg> for StreamPeer {
    fn on_start(&mut self, ctx: &mut Context<'_, OverlayMsg>) {
        self.stats.borrow_mut().started_at = Some(ctx.now());
        self.announce_to_neighbors(ctx);
        ctx.set_timer(self.chunk_interval_us / 2, TIMER_SCHEDULE);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, OverlayMsg>, from: NodeId, msg: OverlayMsg) {
        match msg {
            OverlayMsg::Announce { base, have } => {
                let entry = self
                    .neighbor_maps
                    .entry(from)
                    .or_insert_with(|| BufferMap::new(self.buffer.len().max(64)));
                entry.advance(base);
                for c in have {
                    entry.mark(c);
                }
                self.schedule_requests(ctx);
            }
            OverlayMsg::Request { chunk } => {
                if self.buffer.has(chunk) && self.buffer.base() <= chunk {
                    ctx.send(from, OverlayMsg::Chunk { chunk });
                }
            }
            OverlayMsg::Chunk { chunk } => {
                self.pending.retain(|&(c, _)| c != chunk);
                if self.buffer.mark(chunk) {
                    let mut stats = self.stats.borrow_mut();
                    stats.chunks_received += 1;
                    if stats.first_chunk_at.is_none() {
                        stats.first_chunk_at = Some(ctx.now());
                    }
                    let buffered = self.buffer.count();
                    let start = !self.playing && buffered >= self.startup_chunks;
                    if start {
                        stats.playback_started_at = Some(ctx.now());
                    }
                    drop(stats);
                    if start {
                        self.playing = true;
                        self.playback_pos = self.buffer.base();
                        ctx.set_timer(self.chunk_interval_us, TIMER_PLAYBACK);
                    }
                    self.announce_to_neighbors(ctx);
                }
                self.schedule_requests(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, OverlayMsg>, id: TimerId) {
        match id {
            TIMER_SCHEDULE => {
                self.schedule_requests(ctx);
                ctx.set_timer(self.chunk_interval_us / 2, TIMER_SCHEDULE);
            }
            TIMER_PLAYBACK => {
                if self.playback_pos >= self.stream_end {
                    return; // stream over: stop the playback clock
                }
                if self.buffer.has(self.playback_pos) {
                    self.stats.borrow_mut().chunks_played += 1;
                    self.playback_pos += 1;
                    self.buffer.advance(self.playback_pos);
                    self.stall_streak = 0;
                } else {
                    let mut stats = self.stats.borrow_mut();
                    stats.stalls += 1;
                    self.stall_streak += 1;
                    if self.stall_streak >= self.max_stall_streak {
                        // Give the chunk up and move on.
                        stats.chunks_skipped += 1;
                        self.playback_pos += 1;
                        self.buffer.advance(self.playback_pos);
                        self.stall_streak = 0;
                    }
                }
                ctx.set_timer(self.chunk_interval_us, TIMER_PLAYBACK);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_sim::links::Fixed;
    use nearpeer_sim::Simulator;

    const INTERVAL: u64 = 10_000; // 10 ms chunks

    /// source → peer1 → peer2 chain; all chunks must flow through.
    #[test]
    fn chunks_propagate_through_the_mesh() {
        let mut sim: Simulator<OverlayMsg, Fixed> = Simulator::new(Fixed(1_000), 1);
        let s1 = Rc::new(RefCell::new(StreamStats::default()));
        let s2 = Rc::new(RefCell::new(StreamStats::default()));

        // Ids are assigned in insertion order; wire them up accordingly.
        let source = NodeId(0);
        let p1 = NodeId(1);
        let p2 = NodeId(2);
        sim.add_actor(Box::new(SourceActor::new(vec![p1], INTERVAL, 20)));
        sim.add_actor(Box::new(StreamPeer::new(
            vec![source, p2],
            32,
            INTERVAL,
            2,
            20,
            s1.clone(),
        )));
        sim.add_actor(Box::new(StreamPeer::new(
            vec![p1],
            32,
            INTERVAL,
            2,
            20,
            s2.clone(),
        )));

        sim.run_until(SimTime::from_secs(2));
        let s1 = s1.borrow();
        let s2 = s2.borrow();
        assert_eq!(s1.chunks_received, 20, "direct peer gets everything");
        assert_eq!(s2.chunks_received, 20, "second-hop peer gets everything");
        assert!(s1.playback_started_at.is_some());
        assert!(s2.playback_started_at.is_some());
        assert!(
            s1.setup_delay_us().unwrap() <= s2.setup_delay_us().unwrap(),
            "the peer next to the source starts no later"
        );
    }

    #[test]
    fn continuity_high_on_clean_links() {
        let mut sim: Simulator<OverlayMsg, Fixed> = Simulator::new(Fixed(500), 2);
        let stats = Rc::new(RefCell::new(StreamStats::default()));
        let source = NodeId(0);
        sim.add_actor(Box::new(SourceActor::new(vec![NodeId(1)], INTERVAL, 50)));
        sim.add_actor(Box::new(StreamPeer::new(
            vec![source],
            32,
            INTERVAL,
            3,
            50,
            stats.clone(),
        )));
        sim.run_until(SimTime::from_secs(3));
        let stats = stats.borrow();
        assert_eq!(stats.chunks_received, 50);
        assert!(
            stats.continuity() > 0.9,
            "continuity {} too low",
            stats.continuity()
        );
        assert!(stats.stalls <= 3, "stalls = {}", stats.stalls);
    }

    #[test]
    fn farther_peer_has_larger_setup_delay() {
        // Two independent meshes with different link latencies.
        let run = |latency_us: u64| -> u64 {
            let mut sim: Simulator<OverlayMsg, Fixed> = Simulator::new(Fixed(latency_us), 3);
            let stats = Rc::new(RefCell::new(StreamStats::default()));
            let source = NodeId(0);
            sim.add_actor(Box::new(SourceActor::new(vec![NodeId(1)], INTERVAL, 30)));
            sim.add_actor(Box::new(StreamPeer::new(
                vec![source],
                32,
                INTERVAL,
                3,
                30,
                stats.clone(),
            )));
            sim.run_until(SimTime::from_secs(2));
            let delay = stats.borrow().setup_delay_us().expect("playback started");
            delay
        };
        let near = run(500);
        let far = run(20_000);
        assert!(near < far, "near {near} >= far {far}");
    }

    #[test]
    fn long_streams_outlive_the_announce_window() {
        // Regression: streams longer than the 64-chunk buffer window must
        // still deliver — the source's announce base has to slide.
        let mut sim: Simulator<OverlayMsg, Fixed> = Simulator::new(Fixed(500), 5);
        let stats = Rc::new(RefCell::new(StreamStats::default()));
        let source = NodeId(0);
        sim.add_actor(Box::new(SourceActor::new(vec![NodeId(1)], INTERVAL, 120)));
        sim.add_actor(Box::new(StreamPeer::new(
            vec![source],
            64,
            INTERVAL,
            3,
            120,
            stats.clone(),
        )));
        sim.run_until(SimTime::from_secs(4));
        let s = stats.borrow();
        assert!(
            s.chunks_received >= 115,
            "only {} of 120 chunks delivered",
            s.chunks_received
        );
        assert!(s.continuity() > 0.9, "continuity {}", s.continuity());
    }

    #[test]
    fn player_skips_unrecoverable_chunks() {
        let mut sim: Simulator<OverlayMsg, Fixed> = Simulator::new(Fixed(100), 9);
        let stats = Rc::new(RefCell::new(StreamStats::default()));
        // No neighbors: the peer can only play what we inject.
        sim.add_actor(Box::new(StreamPeer::new(
            vec![],
            8,
            INTERVAL,
            1,
            3, // stream of 3 chunks
            stats.clone(),
        )));
        // Chunks 0 and 2 arrive; chunk 1 never does.
        sim.inject_at(
            SimTime(500),
            NodeId(0),
            NodeId(0),
            OverlayMsg::Chunk { chunk: 0 },
        );
        sim.inject_at(
            SimTime(600),
            NodeId(0),
            NodeId(0),
            OverlayMsg::Chunk { chunk: 2 },
        );
        sim.run_until(SimTime::from_secs(2));
        let s = stats.borrow();
        assert_eq!(s.chunks_played, 2, "chunks 0 and 2 play");
        assert_eq!(s.chunks_skipped, 1, "chunk 1 is given up on");
        assert_eq!(s.stalls, 8, "one full stall streak before the skip");
        assert!((s.continuity() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn requests_answered_only_for_held_chunks() {
        // A peer with an empty buffer must not answer requests.
        let mut sim: Simulator<OverlayMsg, Fixed> = Simulator::new(Fixed(100), 4);
        let stats = Rc::new(RefCell::new(StreamStats::default()));
        sim.add_actor(Box::new(StreamPeer::new(
            vec![],
            8,
            INTERVAL,
            1,
            10,
            stats.clone(),
        )));
        sim.inject_at(
            SimTime(50),
            NodeId(0),
            NodeId(0),
            OverlayMsg::Request { chunk: 3 },
        );
        sim.run_until(SimTime::from_millis(100));
        // No chunk was sent anywhere (messages_sent counts only the
        // initial announces, which go nowhere with no neighbors).
        assert_eq!(sim.stats().messages_sent, 0);
    }
}
