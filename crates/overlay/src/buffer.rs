//! The sliding chunk-availability window.

/// A peer's buffer map: which chunks in the sliding window it holds.
///
/// Chunks are numbered from 0. The window `[base, base + len)` slides
/// forward as playback progresses; chunks behind `base` are considered
/// played out (and implicitly "had").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferMap {
    base: u64,
    have: Vec<bool>,
}

impl BufferMap {
    /// An empty window of `len` chunks starting at chunk 0.
    pub fn new(len: usize) -> Self {
        Self {
            base: 0,
            have: vec![false; len.max(1)],
        }
    }

    /// First chunk of the window.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Window length in chunks.
    pub fn len(&self) -> usize {
        self.have.len()
    }

    /// Always false (the window has at least one slot).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `chunk` is held (chunks behind the window count as held —
    /// they were played out).
    pub fn has(&self, chunk: u64) -> bool {
        if chunk < self.base {
            return true;
        }
        let off = (chunk - self.base) as usize;
        off < self.have.len() && self.have[off]
    }

    /// Marks a chunk received. Chunks outside the window are ignored (too
    /// old: already played; too new: the window will slide to them).
    /// Returns whether the mark took effect.
    pub fn mark(&mut self, chunk: u64) -> bool {
        if chunk < self.base {
            return false;
        }
        let off = (chunk - self.base) as usize;
        if off >= self.have.len() {
            return false;
        }
        let was = self.have[off];
        self.have[off] = true;
        !was
    }

    /// Slides the window forward so that `new_base` is the first chunk,
    /// dropping state for played-out chunks. Sliding backwards is a no-op.
    pub fn advance(&mut self, new_base: u64) {
        if new_base <= self.base {
            return;
        }
        let shift = (new_base - self.base) as usize;
        if shift >= self.have.len() {
            self.have.iter_mut().for_each(|b| *b = false);
        } else {
            self.have.rotate_left(shift);
            let len = self.have.len();
            self.have[len - shift..].iter_mut().for_each(|b| *b = false);
        }
        self.base = new_base;
    }

    /// Chunks missing in `[from, to)` clamped to the window, ascending.
    pub fn missing_in(&self, from: u64, to: u64) -> Vec<u64> {
        let lo = from.max(self.base);
        let hi = to.min(self.base + self.have.len() as u64);
        (lo..hi).filter(|&c| !self.has(c)).collect()
    }

    /// Number of chunks held inside the window.
    pub fn count(&self) -> usize {
        self.have.iter().filter(|&&b| b).count()
    }

    /// Snapshot of the held chunk ids inside the window.
    pub fn held(&self) -> Vec<u64> {
        (self.base..self.base + self.have.len() as u64)
            .filter(|&c| self.has(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut bm = BufferMap::new(8);
        assert!(!bm.has(3));
        assert!(bm.mark(3));
        assert!(!bm.mark(3), "second mark is a no-op");
        assert!(bm.has(3));
        assert_eq!(bm.count(), 1);
        assert_eq!(bm.held(), vec![3]);
    }

    #[test]
    fn out_of_window_marks_ignored() {
        let mut bm = BufferMap::new(4);
        assert!(!bm.mark(10), "beyond the window");
        bm.advance(5);
        assert!(!bm.mark(2), "behind the window");
        assert!(bm.has(2), "played-out chunks count as held");
        assert_eq!(bm.count(), 0);
    }

    #[test]
    fn advance_slides_and_clears() {
        let mut bm = BufferMap::new(4); // window 0..4
        bm.mark(1);
        bm.mark(2);
        bm.advance(2); // window 2..6
        assert_eq!(bm.base(), 2);
        assert!(bm.has(1), "played out");
        assert!(bm.has(2), "still in window, kept");
        assert!(!bm.has(3));
        assert!(bm.mark(5));
        // Advancing past everything clears the window.
        bm.advance(100);
        assert_eq!(bm.count(), 0);
        // Backwards advance is a no-op.
        bm.advance(50);
        assert_eq!(bm.base(), 100);
    }

    #[test]
    fn missing_in_range() {
        let mut bm = BufferMap::new(6); // 0..6
        bm.mark(0);
        bm.mark(2);
        bm.mark(5);
        assert_eq!(bm.missing_in(0, 6), vec![1, 3, 4]);
        // Clamped to the window.
        assert_eq!(bm.missing_in(4, 100), vec![4]);
        bm.advance(3);
        assert_eq!(bm.missing_in(0, 9), vec![3, 4, 6, 7, 8]);
    }

    #[test]
    fn degenerate_window() {
        let mut bm = BufferMap::new(0); // clamped to 1 slot
        assert_eq!(bm.len(), 1);
        assert!(bm.mark(0));
        assert!(bm.has(0));
    }
}
