//! Chunk-request scheduling.

use crate::buffer::BufferMap;

/// Chooses the next chunk to request from the neighbors' advertised buffer
/// maps — the standard mesh-pull hybrid:
///
/// 1. chunks within `urgent_horizon` of the playback position are fetched
///    earliest-deadline-first (continuity beats rarity at the deadline);
/// 2. otherwise, the rarest chunk among the neighbors is fetched
///    (rarest-first spreads fresh chunks through the mesh).
///
/// `pending` chunks (already requested and in flight) are skipped. Returns
/// `(chunk, index of a neighbor that has it)`; ties on rarity resolve to
/// the earliest chunk, ties on provider to the lowest index (deterministic).
pub fn pick_request(
    mine: &BufferMap,
    playback_pos: u64,
    urgent_horizon: u64,
    neighbors: &[BufferMap],
    pending: &[u64],
) -> Option<(u64, usize)> {
    let window_end = mine.base() + mine.len() as u64;
    let wanted: Vec<u64> = mine
        .missing_in(mine.base(), window_end)
        .into_iter()
        .filter(|c| !pending.contains(c))
        .collect();
    if wanted.is_empty() {
        return None;
    }
    let provider_of = |chunk: u64| {
        neighbors
            .iter()
            .position(|n| n.has(chunk) && n.base() <= chunk)
    };

    // Deadline pass: earliest missing chunk in the urgent horizon.
    for &chunk in &wanted {
        if chunk < playback_pos.saturating_add(urgent_horizon) {
            if let Some(idx) = provider_of(chunk) {
                return Some((chunk, idx));
            }
        }
    }

    // Rarity pass.
    let mut best: Option<(usize, u64, usize)> = None; // (copies, chunk, provider)
    for &chunk in &wanted {
        let copies = neighbors
            .iter()
            .filter(|n| n.has(chunk) && n.base() <= chunk)
            .count();
        if copies == 0 {
            continue;
        }
        let provider = provider_of(chunk).expect("copies > 0");
        if best.is_none_or(|(c, ch, _)| (copies, chunk) < (c, ch)) {
            best = Some((copies, chunk, provider));
        }
    }
    best.map(|(_, chunk, provider)| (chunk, provider))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with(len: usize, held: &[u64]) -> BufferMap {
        let mut bm = BufferMap::new(len);
        for &c in held {
            bm.mark(c);
        }
        bm
    }

    #[test]
    fn urgent_chunk_first() {
        let mine = map_with(10, &[0]);
        let n1 = map_with(10, &[1, 7]);
        // Chunk 1 is within the urgent horizon of playback 0; chunk 7 is
        // rarer? Same rarity — deadline wins anyway.
        let pick = pick_request(&mine, 0, 3, &[n1], &[]);
        assert_eq!(pick, Some((1, 0)));
    }

    #[test]
    fn rarest_first_outside_horizon() {
        let mine = map_with(10, &[]);
        let n1 = map_with(10, &[5, 8]);
        let n2 = map_with(10, &[5]);
        // Playback far behind, horizon 0: pure rarity. Chunk 8 has one
        // copy, chunk 5 has two.
        let pick = pick_request(&mine, 0, 0, &[n1, n2], &[]);
        assert_eq!(pick, Some((8, 0)));
    }

    #[test]
    fn pending_chunks_skipped() {
        let mine = map_with(10, &[]);
        let n1 = map_with(10, &[2, 3]);
        let pick = pick_request(&mine, 0, 10, &[n1], &[2]);
        assert_eq!(pick, Some((3, 0)));
    }

    #[test]
    fn nothing_available() {
        let mine = map_with(4, &[]);
        let empty = map_with(4, &[]);
        assert_eq!(pick_request(&mine, 0, 2, &[empty], &[]), None);
        // Full buffer: nothing wanted.
        let full = map_with(2, &[0, 1]);
        let n = map_with(2, &[0, 1]);
        assert_eq!(pick_request(&full, 0, 2, &[n], &[]), None);
    }

    #[test]
    fn provider_tie_breaks_to_lowest_index() {
        let mine = map_with(4, &[]);
        let a = map_with(4, &[1]);
        let b = map_with(4, &[1]);
        let pick = pick_request(&mine, 0, 4, &[a, b], &[]);
        assert_eq!(pick, Some((1, 0)));
    }

    #[test]
    fn neighbor_behind_the_chunk_does_not_count() {
        // A neighbor whose window already slid past a chunk reports has()
        // = true for played-out chunks but cannot serve them; provider_of
        // requires base() <= chunk.
        let mine = map_with(8, &[]);
        let mut stale = map_with(4, &[]);
        stale.advance(6); // base 6; chunks < 6 are "played out"
        let pick = pick_request(&mine, 0, 8, &[stale], &[]);
        assert_eq!(pick, None, "played-out chunks are not servable");
    }
}
