//! Property tests for the discrete-event engine: causality, determinism
//! and conservation of messages under arbitrary gossip workloads.

use nearpeer_sim::links::{Faulty, UniformDelay};
use nearpeer_sim::{Actor, Context, NodeId, SimTime, Simulator, TimerId};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// A gossip actor: forwards each received token to a pseudo-random next
/// node until the token's TTL runs out; records local event times.
struct Gossip {
    nodes: u32,
    log: Rc<RefCell<Vec<(u32, u64, u8)>>>, // (node, time, ttl)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Token {
    ttl: u8,
    salt: u64,
}

impl Actor<Token> for Gossip {
    fn on_message(&mut self, ctx: &mut Context<'_, Token>, _from: NodeId, msg: Token) {
        self.log
            .borrow_mut()
            .push((ctx.me().0, ctx.now().as_micros(), msg.ttl));
        if msg.ttl > 0 {
            let next = NodeId(
                ((msg.salt.wrapping_mul(31) ^ ctx.me().0 as u64) % self.nodes as u64) as u32,
            );
            ctx.send(
                next,
                Token {
                    ttl: msg.ttl - 1,
                    salt: msg.salt.wrapping_add(1),
                },
            );
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, Token>, _id: TimerId) {}
}

fn run_gossip(
    nodes: u32,
    tokens: &[(u32, u8, u64)],
    seed: u64,
    drop_prob: f64,
) -> (Vec<(u32, u64, u8)>, nearpeer_sim::SimStats) {
    let log = Rc::new(RefCell::new(Vec::new()));
    let links = Faulty::new(UniformDelay { lo: 10, hi: 5_000 }, drop_prob, 100);
    let mut sim: Simulator<Token, _> = Simulator::new(links, seed);
    for _ in 0..nodes {
        sim.add_actor(Box::new(Gossip {
            nodes,
            log: log.clone(),
        }));
    }
    for &(to, ttl, salt) in tokens {
        sim.inject_at(
            SimTime((salt % 1_000) + 1),
            NodeId(0),
            NodeId(to % nodes),
            Token { ttl, salt },
        );
    }
    sim.run_to_completion();
    let out = log.borrow().clone();
    (out, sim.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn identical_seeds_identical_histories(
        nodes in 2u32..12,
        tokens in prop::collection::vec((any::<u32>(), 1u8..12, any::<u64>()), 1..8),
        seed in any::<u64>(),
    ) {
        let (log_a, stats_a) = run_gossip(nodes, &tokens, seed, 0.2);
        let (log_b, stats_b) = run_gossip(nodes, &tokens, seed, 0.2);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn event_times_are_monotone(
        nodes in 2u32..12,
        tokens in prop::collection::vec((any::<u32>(), 1u8..12, any::<u64>()), 1..8),
        seed in any::<u64>(),
    ) {
        let (log, _) = run_gossip(nodes, &tokens, seed, 0.0);
        // The log is appended in processing order; times must never go
        // backwards (the calendar is a priority queue).
        prop_assert!(log.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn message_conservation(
        nodes in 2u32..12,
        tokens in prop::collection::vec((any::<u32>(), 1u8..12, any::<u64>()), 1..8),
        seed in any::<u64>(),
        drop in 0.0f64..0.9,
    ) {
        let (log, stats) = run_gossip(nodes, &tokens, seed, drop);
        // Every delivery was logged (injections included).
        prop_assert_eq!(stats.messages_delivered, log.len() as u64);
        // Sent messages either got delivered or dropped; injections bypass
        // the link model so delivered >= log of injected tokens only.
        prop_assert_eq!(
            stats.messages_sent,
            // Every logged event with ttl > 0 sent exactly one message.
            log.iter().filter(|&&(_, _, ttl)| ttl > 0).count() as u64
        );
        prop_assert!(stats.messages_dropped <= stats.messages_sent);
    }

    #[test]
    fn lossless_links_deliver_everything(
        nodes in 2u32..12,
        tokens in prop::collection::vec((any::<u32>(), 1u8..10, any::<u64>()), 1..6),
        seed in any::<u64>(),
    ) {
        let (log, stats) = run_gossip(nodes, &tokens, seed, 0.0);
        prop_assert_eq!(stats.messages_dropped, 0);
        // Each token generates exactly ttl+1 log entries (inject + hops).
        let expected: u64 = tokens.iter().map(|&(_, ttl, _)| ttl as u64 + 1).sum();
        prop_assert_eq!(log.len() as u64, expected);
    }
}
