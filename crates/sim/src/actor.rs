//! Actors and the command-collecting context.

use crate::time::SimTime;
use rand::rngs::StdRng;

/// Identifier of an actor inside one [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Application-chosen timer label, echoed back in
/// [`Actor::on_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// Side effects an actor requests during one callback. Collected rather
/// than applied re-entrantly, which keeps the engine free of interior
/// mutability tricks.
#[derive(Debug)]
pub(crate) enum Command<M> {
    Send { to: NodeId, msg: M },
    Timer { delay_us: u64, id: TimerId },
    Halt,
}

/// The actor's window into the simulation during a callback.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) me: NodeId,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) commands: Vec<Command<M>>,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's own id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The simulation RNG (one stream shared by the whole run, so actor
    /// callbacks remain deterministic in event order).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` to another actor; delivery time and loss are decided by
    /// the simulator's [`crate::LinkModel`]. Sending to a dead or unknown
    /// node silently drops (counted in [`crate::SimStats`]).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.commands.push(Command::Send { to, msg });
    }

    /// Schedules [`Actor::on_timer`] for this actor after `delay_us`.
    pub fn set_timer(&mut self, delay_us: u64, id: TimerId) {
        self.commands.push(Command::Timer { delay_us, id });
    }

    /// Requests the whole simulation to stop after this callback.
    pub fn halt(&mut self) {
        self.commands.push(Command::Halt);
    }
}

/// A protocol endpoint driven by the simulator.
///
/// All callbacks receive a [`Context`] for sending messages and arming
/// timers. Implementations should be deterministic given the context RNG.
pub trait Actor<M> {
    /// Called once when the actor enters the simulation.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message addressed to this actor is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _id: TimerId) {}

    /// Called when the actor is removed (churn); last chance to account
    /// state. No commands can be issued from the grave: the context still
    /// works but sends from a removed actor are dropped by the engine.
    fn on_stop(&mut self, _ctx: &mut Context<'_, M>) {}
}
