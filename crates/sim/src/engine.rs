//! The event loop.

use crate::actor::{Actor, Command, Context, NodeId, TimerId};
use crate::links::LinkModel;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Counters the engine maintains while running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the link model.
    pub messages_sent: u64,
    /// Messages delivered to a live actor.
    pub messages_delivered: u64,
    /// Messages dropped by the link model (loss) or addressed to dead nodes.
    pub messages_dropped: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// Events processed in total.
    pub events_processed: u64,
}

enum Pending<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    Timer {
        node: NodeId,
        id: TimerId,
    },
    Spawn {
        node: NodeId,
        actor: Box<dyn Actor<M>>,
    },
    Kill {
        node: NodeId,
    },
}

/// The deterministic discrete-event simulator.
///
/// Events at equal timestamps fire in insertion order (a monotonically
/// increasing sequence number breaks ties), so runs are reproducible for a
/// given seed regardless of actor behaviour.
pub struct Simulator<M, L: LinkModel> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    queue: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    payloads: Vec<Option<Pending<M>>>,
    free_payload_slots: Vec<u64>,
    seq: u64,
    now: SimTime,
    rng: StdRng,
    links: L,
    stats: SimStats,
    halted: bool,
}

impl<M, L: LinkModel> Simulator<M, L> {
    /// Creates a simulator over the given link model, seeded for
    /// reproducibility.
    pub fn new(links: L, seed: u64) -> Self {
        Self {
            actors: Vec::new(),
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            free_payload_slots: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            links,
            stats: SimStats::default(),
            halted: false,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine counters so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The link model (e.g. to adjust fault injection mid-run).
    pub fn links_mut(&mut self) -> &mut L {
        &mut self.links
    }

    /// Adds an actor immediately; its `on_start` runs at the current time.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        // Run on_start synchronously at `now`.
        self.run_callback(id, |actor, ctx| actor.on_start(ctx));
        id
    }

    /// Schedules an actor to join at a future time (churn arrivals). The
    /// returned id is reserved now.
    pub fn spawn_at(&mut self, at: SimTime, actor: Box<dyn Actor<M>>) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(None);
        self.enqueue(at, Pending::Spawn { node: id, actor });
        id
    }

    /// Schedules an actor's removal (churn departures / failures). Messages
    /// in flight towards it at that point are dropped on delivery.
    pub fn kill_at(&mut self, at: SimTime, node: NodeId) {
        self.enqueue(at, Pending::Kill { node });
    }

    /// Whether the actor is currently live.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.actors.get(node.index()).is_some_and(Option::is_some)
    }

    /// Immutable access to a live actor (for extracting results after the
    /// run). Returns `None` for dead or unknown nodes.
    pub fn actor(&self, node: NodeId) -> Option<&dyn Actor<M>> {
        self.actors.get(node.index())?.as_deref()
    }

    /// Injects a message from "outside" (no sending actor) to be delivered
    /// at the given absolute time.
    pub fn inject_at(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        self.enqueue(at, Pending::Deliver { from, to, msg });
    }

    fn enqueue(&mut self, at: SimTime, pending: Pending<M>) {
        let at = at.max(self.now);
        let slot = if let Some(s) = self.free_payload_slots.pop() {
            self.payloads[s as usize] = Some(pending);
            s
        } else {
            self.payloads.push(Some(pending));
            (self.payloads.len() - 1) as u64
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((at, seq, slot)));
    }

    fn run_callback(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>),
    ) {
        // Take the actor out so the engine and actor never alias.
        let Some(slot) = self.actors.get_mut(node.index()) else {
            return;
        };
        let Some(mut actor) = slot.take() else {
            return;
        };
        let mut ctx = Context {
            now: self.now,
            me: node,
            rng: &mut self.rng,
            commands: Vec::new(),
        };
        f(actor.as_mut(), &mut ctx);
        let commands = ctx.commands;
        self.actors[node.index()] = Some(actor);
        self.apply_commands(node, commands);
    }

    fn apply_commands(&mut self, from: NodeId, commands: Vec<Command<M>>) {
        for cmd in commands {
            match cmd {
                Command::Send { to, msg } => {
                    self.stats.messages_sent += 1;
                    match self.links.transit_us(from, to, &mut self.rng) {
                        Some(latency) => {
                            let at = self.now + latency;
                            self.enqueue(at, Pending::Deliver { from, to, msg });
                        }
                        None => self.stats.messages_dropped += 1,
                    }
                }
                Command::Timer { delay_us, id } => {
                    let at = self.now + delay_us;
                    self.enqueue(at, Pending::Timer { node: from, id });
                }
                Command::Halt => self.halted = true,
            }
        }
    }

    /// Processes the next event; returns `false` when the calendar is empty
    /// or the simulation was halted.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(Reverse((at, _seq, slot))) = self.queue.pop() else {
            return false;
        };
        let pending = self.payloads[slot as usize]
            .take()
            .expect("payload slot set when enqueued");
        self.free_payload_slots.push(slot);
        self.now = at;
        self.stats.events_processed += 1;
        match pending {
            Pending::Deliver { from, to, msg } => {
                if self.is_live(to) {
                    self.stats.messages_delivered += 1;
                    self.run_callback(to, |actor, ctx| actor.on_message(ctx, from, msg));
                } else {
                    self.stats.messages_dropped += 1;
                }
            }
            Pending::Timer { node, id } => {
                if self.is_live(node) {
                    self.stats.timers_fired += 1;
                    self.run_callback(node, |actor, ctx| actor.on_timer(ctx, id));
                }
            }
            Pending::Spawn { node, actor } => {
                self.actors[node.index()] = Some(actor);
                self.run_callback(node, |actor, ctx| actor.on_start(ctx));
            }
            Pending::Kill { node } => {
                if self.is_live(node) {
                    self.run_callback(node, |actor, ctx| actor.on_stop(ctx));
                    // Drop post-stop commands implicitly: on_stop ran above
                    // with full powers; now remove the actor.
                    self.actors[node.index()] = None;
                }
            }
        }
        true
    }

    /// Runs until the calendar empties, `halt()` is called, or `deadline`
    /// passes (events strictly after the deadline stay queued). Returns the
    /// number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        loop {
            match self.queue.peek() {
                Some(Reverse((at, _, _))) if *at <= deadline => {
                    if !self.step() {
                        break;
                    }
                    processed += 1;
                }
                _ => break,
            }
        }
        // Advance the clock to the deadline even if the calendar ran dry.
        if self.now < deadline {
            self.now = deadline;
        }
        processed
    }

    /// Runs until the calendar is empty or `halt()` was requested.
    pub fn run_to_completion(&mut self) -> u64 {
        let mut processed = 0;
        while self.step() {
            processed += 1;
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::Fixed;

    /// Test actor: pings its peer on start and answers pings with pongs.
    /// Assertions below go through [`SimStats`], keeping the trait surface
    /// minimal.
    #[derive(Default)]
    struct Ping {
        peer: Option<NodeId>,
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Actor<Msg> for Ping {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, Msg::Ping);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            if msg == Msg::Ping {
                ctx.send(from, Msg::Pong);
            }
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim: Simulator<Msg, Fixed> = Simulator::new(Fixed(1_000), 1);
        let b = sim.add_actor(Box::new(Ping::default()));
        let a = sim.add_actor(Box::new(Ping { peer: Some(b) }));
        let _ = a;
        let processed = sim.run_to_completion();
        assert_eq!(processed, 2); // ping delivery + pong delivery
        let stats = sim.stats();
        assert_eq!(stats.messages_sent, 2);
        assert_eq!(stats.messages_delivered, 2);
        assert_eq!(stats.messages_dropped, 0);
        assert_eq!(sim.now(), SimTime(2_000));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim: Simulator<Msg, Fixed> = Simulator::new(Fixed(10_000), 1);
        let b = sim.add_actor(Box::new(Ping::default()));
        let _a = sim.add_actor(Box::new(Ping { peer: Some(b) }));
        // Ping lands at t=10ms, pong at t=20ms; deadline at 15ms sees one.
        let n = sim.run_until(SimTime::from_millis(15));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_millis(15));
        let n = sim.run_until(SimTime::from_millis(30));
        assert_eq!(n, 1);
    }

    #[test]
    fn messages_to_dead_nodes_drop() {
        let mut sim: Simulator<Msg, Fixed> = Simulator::new(Fixed(5_000), 1);
        let b = sim.add_actor(Box::new(Ping::default()));
        let _a = sim.add_actor(Box::new(Ping { peer: Some(b) }));
        sim.kill_at(SimTime(1_000), b); // dies before the ping lands
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_delivered, 0);
        assert!(!sim.is_live(b));
    }

    #[test]
    fn spawn_at_joins_later() {
        let mut sim: Simulator<Msg, Fixed> = Simulator::new(Fixed(100), 1);
        let b = sim.spawn_at(SimTime::from_millis(5), Box::new(Ping::default()));
        assert!(!sim.is_live(b));
        sim.run_to_completion();
        assert!(sim.is_live(b));
        assert_eq!(sim.now(), SimTime::from_millis(5));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerActor {
            fired: Vec<u64>,
        }
        impl Actor<Msg> for TimerActor {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(3_000, TimerId(3));
                ctx.set_timer(1_000, TimerId(1));
                ctx.set_timer(2_000, TimerId(2));
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, id: TimerId) {
                self.fired.push(id.0);
                if id.0 == 3 {
                    ctx.halt();
                }
            }
        }
        let mut sim: Simulator<Msg, Fixed> = Simulator::new(Fixed(1), 1);
        sim.add_actor(Box::new(TimerActor { fired: Vec::new() }));
        sim.run_to_completion();
        assert_eq!(sim.stats().timers_fired, 3);
        assert_eq!(sim.now(), SimTime(3_000));
    }

    #[test]
    fn halt_stops_everything() {
        struct Halter;
        impl Actor<Msg> for Halter {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(1, TimerId(0));
                ctx.set_timer(2, TimerId(1));
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: TimerId) {
                ctx.halt();
            }
        }
        let mut sim: Simulator<Msg, Fixed> = Simulator::new(Fixed(1), 1);
        sim.add_actor(Box::new(Halter));
        sim.run_to_completion();
        assert_eq!(sim.stats().timers_fired, 1, "second timer must not fire");
    }

    #[test]
    fn injection_delivers_at_time() {
        let mut sim: Simulator<Msg, Fixed> = Simulator::new(Fixed(1), 1);
        let a = sim.add_actor(Box::new(Ping::default()));
        sim.inject_at(SimTime::from_millis(7), a, a, Msg::Pong);
        sim.run_to_completion();
        assert_eq!(sim.stats().messages_delivered, 1);
        assert_eq!(sim.now(), SimTime::from_millis(7));
    }
}
