//! Logical simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// The value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The value in (truncated) milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference (`self - earlier`, 0 if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, us: u64) {
        self.0 += us;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + 500;
        assert_eq!(t.as_micros(), 500);
        let u = t + 1_500;
        assert_eq!(u - t, 1_500);
        assert_eq!(t.saturating_since(u), 0);
        assert_eq!(u.saturating_since(t), 1_500);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime(12).to_string(), "12us");
        assert_eq!(SimTime(2_500).to_string(), "2.5ms");
        assert_eq!(SimTime(1_250_000).to_string(), "1.250s");
    }
}
