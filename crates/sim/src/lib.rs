//! Deterministic discrete-event simulation — the PeerSim substitute.
//!
//! The paper runs its evaluation inside PeerSim. This crate provides the
//! same capability as a seeded, single-threaded discrete-event engine in the
//! spirit of the networking guides: event-driven, no async runtime, no
//! surprises, bit-identical reruns for a given seed.
//!
//! Architecture:
//!
//! * [`SimTime`] — logical microseconds;
//! * [`Actor`] — protocol endpoints (peers, landmarks, the management
//!   server) handle messages and timers through a command-collecting
//!   [`Context`] (no re-entrant borrows, in the spirit of simple poll-based
//!   designs);
//! * [`Simulator`] — the event loop: a binary-heap calendar of message
//!   deliveries and timer firings, with FIFO tie-breaking by sequence
//!   number;
//! * [`LinkModel`] — pluggable message latency/loss: fixed, uniform, or
//!   derived from a topology (half the oracle RTT between attachment
//!   routers), with a fault-injection wrapper ([`links::Faulty`]).
//!
//! Churn (paper future-work W3) is exercised by scheduling
//! [`Simulator::spawn_at`] / [`Simulator::kill_at`] events from a workload
//! trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod engine;
pub mod links;
mod time;

pub use actor::{Actor, Context, NodeId, TimerId};
pub use engine::{SimStats, Simulator};
pub use links::LinkModel;
pub use time::SimTime;
