//! Link models: who reaches whom, how fast, and how unreliably.

use crate::actor::NodeId;
use nearpeer_routing::RouteOracle;
use nearpeer_topology::{RouterId, Topology};
use rand::rngs::StdRng;
use rand::Rng;

/// Decides per message whether it arrives and after how long.
pub trait LinkModel {
    /// One-way transit time in microseconds for a message `from → to`, or
    /// `None` if the message is lost.
    fn transit_us(&mut self, from: NodeId, to: NodeId, rng: &mut StdRng) -> Option<u64>;
}

/// Every message takes exactly this many microseconds.
#[derive(Debug, Clone, Copy)]
pub struct Fixed(pub u64);

impl LinkModel for Fixed {
    fn transit_us(&mut self, _from: NodeId, _to: NodeId, _rng: &mut StdRng) -> Option<u64> {
        Some(self.0)
    }
}

/// Uniformly random transit time in `[lo, hi]` microseconds.
#[derive(Debug, Clone, Copy)]
pub struct UniformDelay {
    /// Lower bound (inclusive).
    pub lo: u64,
    /// Upper bound (inclusive).
    pub hi: u64,
}

impl LinkModel for UniformDelay {
    fn transit_us(&mut self, _from: NodeId, _to: NodeId, rng: &mut StdRng) -> Option<u64> {
        let (lo, hi) = (self.lo.min(self.hi), self.lo.max(self.hi));
        Some(rng.gen_range(lo..=hi))
    }
}

/// Transit time derived from a topology: half the oracle RTT between the
/// attachment routers of the two endpoints (one-way latency along the
/// hop-shortest route). Messages between unattached or disconnected nodes
/// are lost.
pub struct TopologyLinks<'t> {
    oracle: RouteOracle<'t>,
    attachment: Vec<Option<RouterId>>,
}

impl<'t> TopologyLinks<'t> {
    /// Creates the model over a topology; attach nodes before running.
    pub fn new(topo: &'t Topology) -> Self {
        Self {
            oracle: RouteOracle::new(topo),
            attachment: Vec::new(),
        }
    }

    /// Declares that simulator node `node` sits behind access router
    /// `router`.
    pub fn attach(&mut self, node: NodeId, router: RouterId) {
        if self.attachment.len() <= node.index() {
            self.attachment.resize(node.index() + 1, None);
        }
        self.attachment[node.index()] = Some(router);
    }

    /// The attachment router of a node, if declared.
    pub fn attachment(&self, node: NodeId) -> Option<RouterId> {
        self.attachment.get(node.index()).copied().flatten()
    }

    /// The underlying route oracle (shared with application code that wants
    /// consistent RTT estimates).
    pub fn oracle(&self) -> &RouteOracle<'t> {
        &self.oracle
    }
}

impl LinkModel for TopologyLinks<'_> {
    fn transit_us(&mut self, from: NodeId, to: NodeId, _rng: &mut StdRng) -> Option<u64> {
        let a = self.attachment(from)?;
        let b = self.attachment(to)?;
        self.oracle.rtt_us(a, b).map(|rtt| rtt / 2)
    }
}

/// Fault-injection wrapper: drops messages with a fixed probability and adds
/// uniform jitter — the smoltcp-style `--drop-chance` knob for examples.
pub struct Faulty<L> {
    inner: L,
    /// Probability in `[0, 1]` that a message is lost.
    pub drop_probability: f64,
    /// Maximum extra delay in microseconds, drawn uniformly.
    pub max_jitter_us: u64,
}

impl<L> Faulty<L> {
    /// Wraps an inner model with loss and jitter.
    pub fn new(inner: L, drop_probability: f64, max_jitter_us: u64) -> Self {
        Self {
            inner,
            drop_probability,
            max_jitter_us,
        }
    }

    /// The wrapped model.
    pub fn inner_mut(&mut self) -> &mut L {
        &mut self.inner
    }
}

impl<L: LinkModel> LinkModel for Faulty<L> {
    fn transit_us(&mut self, from: NodeId, to: NodeId, rng: &mut StdRng) -> Option<u64> {
        if self.drop_probability > 0.0 && rng.gen::<f64>() < self.drop_probability {
            return None;
        }
        let base = self.inner.transit_us(from, to, rng)?;
        let jitter = if self.max_jitter_us == 0 {
            0
        } else {
            rng.gen_range(0..=self.max_jitter_us)
        };
        Some(base + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn fixed_and_uniform() {
        let mut r = rng();
        assert_eq!(Fixed(5).transit_us(NodeId(0), NodeId(1), &mut r), Some(5));
        let mut u = UniformDelay { lo: 10, hi: 20 };
        for _ in 0..50 {
            let d = u.transit_us(NodeId(0), NodeId(1), &mut r).unwrap();
            assert!((10..=20).contains(&d));
        }
    }

    #[test]
    fn topology_links_use_half_rtt() {
        let topo = nearpeer_topology::generators::regular::line(3); // 1000us links
        let mut links = TopologyLinks::new(&topo);
        links.attach(NodeId(0), RouterId(0));
        links.attach(NodeId(1), RouterId(2));
        let mut r = rng();
        // RTT 0↔2 is 4000us, so one-way transit is 2000us.
        assert_eq!(links.transit_us(NodeId(0), NodeId(1), &mut r), Some(2_000));
        // Unattached node: lost.
        assert_eq!(links.transit_us(NodeId(0), NodeId(9), &mut r), None);
        assert_eq!(links.attachment(NodeId(1)), Some(RouterId(2)));
    }

    #[test]
    fn faulty_drops_and_jitters() {
        let mut r = rng();
        let mut always_drop = Faulty::new(Fixed(100), 1.0, 0);
        assert_eq!(always_drop.transit_us(NodeId(0), NodeId(1), &mut r), None);

        let mut jittery = Faulty::new(Fixed(100), 0.0, 50);
        let mut seen_extra = false;
        for _ in 0..100 {
            let d = jittery.transit_us(NodeId(0), NodeId(1), &mut r).unwrap();
            assert!((100..=150).contains(&d));
            if d > 100 {
                seen_extra = true;
            }
        }
        assert!(seen_extra, "jitter never applied");
    }

    #[test]
    fn faulty_partial_drop_rate() {
        let mut r = rng();
        let mut half = Faulty::new(Fixed(1), 0.5, 0);
        let delivered = (0..1000)
            .filter(|_| half.transit_us(NodeId(0), NodeId(1), &mut r).is_some())
            .count();
        assert!(
            (300..700).contains(&delivered),
            "delivered {delivered}/1000"
        );
    }
}
