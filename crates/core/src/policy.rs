//! Neighbor-selection policies — the paper's scheme and every baseline the
//! evaluation compares against.
//!
//! | policy | role in the paper |
//! |--------|-------------------|
//! | [`PathTreeSelector`]  | the contribution (`D` in Figure 2) |
//! | [`RandomSelector`]    | "a newcomer randomly choosing its neighbors" (`Drandom`) |
//! | [`OracleSelector`]    | "the best set of neighbors obtained by a brute-force algorithm" (`Dclosest`) |
//! | [`VivaldiSelector`]   | coordinate-based selection (the slow alternative of §1) |
//! | [`BinningSelector`]   | Ratnasamy-style landmark binning (the classic cited by [10]) |

use crate::ids::PeerId;
use crate::server::ManagementServer;
use nearpeer_coord::Coord;
use nearpeer_routing::bfs_distances;
use nearpeer_topology::{RouterId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// A neighbor-selection strategy: given a newcomer, propose `k` peers.
pub trait Selector {
    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;

    /// Proposes up to `k` neighbors for `newcomer` (never including it).
    fn select(&mut self, newcomer: PeerId, k: usize) -> Vec<PeerId>;
}

/// The paper's scheme, answering from a [`ManagementServer`].
pub struct PathTreeSelector<'s> {
    server: &'s mut ManagementServer,
}

impl<'s> PathTreeSelector<'s> {
    /// Wraps a server on which every candidate peer is registered.
    pub fn new(server: &'s mut ManagementServer) -> Self {
        Self { server }
    }
}

impl Selector for PathTreeSelector<'_> {
    fn name(&self) -> &'static str {
        "path-tree"
    }

    fn select(&mut self, newcomer: PeerId, k: usize) -> Vec<PeerId> {
        self.server
            .neighbors_of(newcomer, k)
            .map(|ns| ns.into_iter().map(|n| n.peer).collect())
            .unwrap_or_default()
    }
}

/// The paper's baseline: uniformly random peers.
pub struct RandomSelector {
    population: Vec<PeerId>,
    rng: StdRng,
}

impl RandomSelector {
    /// Creates the selector over the current population.
    pub fn new(population: Vec<PeerId>, seed: u64) -> Self {
        Self {
            population,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Selector for RandomSelector {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&mut self, newcomer: PeerId, k: usize) -> Vec<PeerId> {
        let mut pool: Vec<PeerId> = self
            .population
            .iter()
            .copied()
            .filter(|&p| p != newcomer)
            .collect();
        pool.shuffle(&mut self.rng);
        pool.truncate(k);
        pool
    }
}

/// Brute force over true hop distances — `Dclosest`. One BFS per query from
/// the newcomer's attachment router (this is the expensive reference the
/// paper's scheme approximates).
pub struct OracleSelector<'t> {
    topo: &'t Topology,
    attachment: HashMap<PeerId, RouterId>,
}

impl<'t> OracleSelector<'t> {
    /// Creates the oracle over peers and their attachment routers.
    pub fn new(topo: &'t Topology, attachment: HashMap<PeerId, RouterId>) -> Self {
        Self { topo, attachment }
    }
}

impl Selector for OracleSelector<'_> {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn select(&mut self, newcomer: PeerId, k: usize) -> Vec<PeerId> {
        let Some(&src) = self.attachment.get(&newcomer) else {
            return Vec::new();
        };
        let dist = bfs_distances(self.topo, src);
        let mut ranked: Vec<(u32, PeerId)> = self
            .attachment
            .iter()
            .filter(|&(&p, _)| p != newcomer)
            .map(|(&p, &r)| (dist[r.index()], p))
            .filter(|&(d, _)| d != u32::MAX)
            .collect();
        ranked.sort();
        ranked.truncate(k);
        ranked.into_iter().map(|(_, p)| p).collect()
    }
}

/// Coordinate-based selection: nearest peers by predicted RTT from a (fully
/// or partially converged) coordinate table.
pub struct VivaldiSelector {
    coords: HashMap<PeerId, Coord>,
}

impl VivaldiSelector {
    /// Creates the selector from a coordinate snapshot.
    pub fn new(coords: HashMap<PeerId, Coord>) -> Self {
        Self { coords }
    }
}

impl Selector for VivaldiSelector {
    fn name(&self) -> &'static str {
        "vivaldi"
    }

    fn select(&mut self, newcomer: PeerId, k: usize) -> Vec<PeerId> {
        let Some(me) = self.coords.get(&newcomer) else {
            return Vec::new();
        };
        let mut ranked: Vec<(f64, PeerId)> = self
            .coords
            .iter()
            .filter(|&(&p, _)| p != newcomer)
            .map(|(&p, c)| (me.distance(c), p))
            .collect();
        ranked.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite distances")
                .then(a.1.cmp(&b.1))
        });
        ranked.truncate(k);
        ranked.into_iter().map(|(_, p)| p).collect()
    }
}

/// Landmark binning (Ratnasamy et al.): each peer is described by the
/// *order* in which it sees the landmarks by RTT; peers whose bins share
/// the longest prefix are preferred, ties broken by RTT-vector distance.
pub struct BinningSelector {
    bins: HashMap<PeerId, Vec<u32>>, // landmark ids sorted by RTT
    rtts: HashMap<PeerId, Vec<u64>>, // raw RTT vector (landmark order)
}

impl BinningSelector {
    /// Creates the selector from per-peer landmark RTT vectors (all the
    /// same length, one slot per landmark).
    pub fn new(rtts: HashMap<PeerId, Vec<u64>>) -> Self {
        let bins = rtts
            .iter()
            .map(|(&p, v)| {
                let mut order: Vec<u32> = (0..v.len() as u32).collect();
                order.sort_by_key(|&i| (v[i as usize], i));
                (p, order)
            })
            .collect();
        Self { bins, rtts }
    }

    fn prefix_len(a: &[u32], b: &[u32]) -> usize {
        a.iter().zip(b).take_while(|(x, y)| x == y).count()
    }

    fn vector_gap(a: &[u64], b: &[u64]) -> u64 {
        a.iter().zip(b).map(|(&x, &y)| x.abs_diff(y)).sum()
    }
}

impl Selector for BinningSelector {
    fn name(&self) -> &'static str {
        "binning"
    }

    fn select(&mut self, newcomer: PeerId, k: usize) -> Vec<PeerId> {
        let (Some(my_bin), Some(my_rtts)) = (self.bins.get(&newcomer), self.rtts.get(&newcomer))
        else {
            return Vec::new();
        };
        let mut ranked: Vec<(std::cmp::Reverse<usize>, u64, PeerId)> = self
            .bins
            .iter()
            .filter(|&(&p, _)| p != newcomer)
            .map(|(&p, bin)| {
                let shared = Self::prefix_len(my_bin, bin);
                let gap = Self::vector_gap(my_rtts, &self.rtts[&p]);
                (std::cmp::Reverse(shared), gap, p)
            })
            .collect();
        ranked.sort();
        ranked.truncate(k);
        ranked.into_iter().map(|(_, _, p)| p).collect()
    }
}

/// The total hop distance `D` of a neighbor set — the paper's Figure 2
/// metric: `Σ hop-distance(newcomer, neighbor)` over the selected peers.
/// Returns `None` if any neighbor is unreachable or unknown.
pub fn neighbor_set_cost(
    topo: &Topology,
    attachment: &HashMap<PeerId, RouterId>,
    newcomer: PeerId,
    neighbors: &[PeerId],
) -> Option<u64> {
    let &src = attachment.get(&newcomer)?;
    let dist = bfs_distances(topo, src);
    let mut total = 0u64;
    for p in neighbors {
        let &r = attachment.get(p)?;
        let d = dist[r.index()];
        if d == u32::MAX {
            return None;
        }
        total += d as u64;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PeerPath;
    use crate::server::ServerConfig;
    use nearpeer_topology::generators::regular;

    fn attachments(pairs: &[(u64, u32)]) -> HashMap<PeerId, RouterId> {
        pairs
            .iter()
            .map(|&(p, r)| (PeerId(p), RouterId(r)))
            .collect()
    }

    #[test]
    fn oracle_picks_true_closest() {
        let topo = regular::line(10);
        let att = attachments(&[(1, 0), (2, 3), (3, 5), (4, 9)]);
        let mut sel = OracleSelector::new(&topo, att);
        assert_eq!(sel.select(PeerId(1), 2), vec![PeerId(2), PeerId(3)]);
        assert_eq!(sel.select(PeerId(4), 1), vec![PeerId(3)]);
        assert!(sel.select(PeerId(99), 2).is_empty());
        assert_eq!(sel.name(), "oracle");
    }

    #[test]
    fn random_never_returns_self_and_respects_k() {
        let pop: Vec<PeerId> = (0..20).map(PeerId).collect();
        let mut sel = RandomSelector::new(pop, 7);
        for _ in 0..10 {
            let picks = sel.select(PeerId(3), 5);
            assert_eq!(picks.len(), 5);
            assert!(!picks.contains(&PeerId(3)));
        }
        // k larger than the population.
        let mut small = RandomSelector::new(vec![PeerId(1), PeerId(2)], 1);
        assert_eq!(small.select(PeerId(1), 10), vec![PeerId(2)]);
    }

    #[test]
    fn vivaldi_ranks_by_coordinate_distance() {
        let mut coords = HashMap::new();
        coords.insert(
            PeerId(1),
            Coord {
                v: vec![0.0, 0.0],
                height: 0.0,
            },
        );
        coords.insert(
            PeerId(2),
            Coord {
                v: vec![1.0, 0.0],
                height: 0.0,
            },
        );
        coords.insert(
            PeerId(3),
            Coord {
                v: vec![5.0, 0.0],
                height: 0.0,
            },
        );
        coords.insert(
            PeerId(4),
            Coord {
                v: vec![2.0, 0.0],
                height: 0.0,
            },
        );
        let mut sel = VivaldiSelector::new(coords);
        assert_eq!(sel.select(PeerId(1), 2), vec![PeerId(2), PeerId(4)]);
        assert!(sel.select(PeerId(9), 1).is_empty());
    }

    #[test]
    fn binning_prefers_same_bin() {
        let mut rtts = HashMap::new();
        rtts.insert(PeerId(1), vec![10, 50, 90]); // bin 0,1,2
        rtts.insert(PeerId(2), vec![12, 55, 80]); // bin 0,1,2 (same)
        rtts.insert(PeerId(3), vec![90, 50, 10]); // bin 2,1,0
        let mut sel = BinningSelector::new(rtts);
        let picks = sel.select(PeerId(1), 2);
        assert_eq!(picks[0], PeerId(2), "same-bin peer first");
        assert_eq!(picks[1], PeerId(3));
    }

    #[test]
    fn path_tree_selector_round_trips_server() {
        let mut srv =
            ManagementServer::new(vec![RouterId(0)], vec![vec![0]], ServerConfig::default());
        let mk = |ids: &[u32]| PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap();
        srv.register(PeerId(1), mk(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), mk(&[5, 2, 1, 0])).unwrap();
        srv.register(PeerId(3), mk(&[6, 3, 1, 0])).unwrap();
        let mut sel = PathTreeSelector::new(&mut srv);
        assert_eq!(sel.select(PeerId(1), 2), vec![PeerId(2), PeerId(3)]);
        assert!(sel.select(PeerId(99), 2).is_empty());
    }

    #[test]
    fn neighbor_set_cost_sums_hops() {
        let topo = regular::line(10);
        let att = attachments(&[(1, 0), (2, 3), (3, 5)]);
        let d = neighbor_set_cost(&topo, &att, PeerId(1), &[PeerId(2), PeerId(3)]);
        assert_eq!(d, Some(3 + 5));
        assert_eq!(neighbor_set_cost(&topo, &att, PeerId(9), &[]), None);
        assert_eq!(
            neighbor_set_cost(&topo, &att, PeerId(1), &[PeerId(9)]),
            None
        );
    }

    #[test]
    fn oracle_beats_or_ties_everyone_by_construction() {
        // On a ring with scattered peers, the oracle's neighbor cost must
        // lower-bound the random policy's.
        let topo = regular::ring(24);
        let att: HashMap<PeerId, RouterId> = (0..12)
            .map(|i| (PeerId(i), RouterId((i * 2) as u32)))
            .collect();
        let mut oracle = OracleSelector::new(&topo, att.clone());
        let mut random = RandomSelector::new(att.keys().copied().collect(), 3);
        for p in 0..12 {
            let p = PeerId(p);
            let d_oracle = neighbor_set_cost(&topo, &att, p, &oracle.select(p, 3)).unwrap();
            let d_random = neighbor_set_cost(&topo, &att, p, &random.select(p, 3)).unwrap();
            assert!(d_oracle <= d_random, "{p}: {d_oracle} > {d_random}");
        }
    }
}
