//! Error type of the core crate.

use crate::ids::PeerId;
use std::fmt;

/// Errors surfaced by the management server and its data structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The peer is already registered (insertions must be preceded by
    /// deregistration or use handover).
    DuplicatePeer(PeerId),
    /// The peer is not registered.
    UnknownPeer(PeerId),
    /// A peer path failed validation (empty, or contains a routing loop).
    InvalidPath(String),
    /// The server has no landmark matching the path's terminal router.
    UnknownLandmark(String),
    /// A federation was configured inconsistently (no regions, more
    /// regions than landmarks, super-peers enabled per region, …).
    InvalidFederation(String),
    /// Wire-format decoding failed.
    Codec(crate::codec::CodecError),
    /// A server or federation configuration is degenerate (zero shards,
    /// zero neighbor count, adaptive `min_age > max_age`, …).
    InvalidConfig(String),
    /// Snapshot or journal persistence failed (corrupt bytes, bad
    /// checksum, unsupported version, I/O error).
    Persist(crate::directory::persist::PersistError),
    /// The addressed region is crashed/down; callers should fall back to
    /// fanout (reads) or retry after rejoin (writes).
    RegionUnavailable(u32),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicatePeer(p) => write!(f, "{p} is already registered"),
            CoreError::UnknownPeer(p) => write!(f, "{p} is not registered"),
            CoreError::InvalidPath(msg) => write!(f, "invalid peer path: {msg}"),
            CoreError::UnknownLandmark(msg) => write!(f, "unknown landmark: {msg}"),
            CoreError::InvalidFederation(msg) => write!(f, "invalid federation: {msg}"),
            CoreError::Codec(e) => write!(f, "codec error: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            CoreError::Persist(e) => write!(f, "persistence error: {e}"),
            CoreError::RegionUnavailable(r) => write!(f, "region {r} is unavailable"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<crate::codec::CodecError> for CoreError {
    fn from(e: crate::codec::CodecError) -> Self {
        CoreError::Codec(e)
    }
}

impl From<crate::directory::persist::PersistError> for CoreError {
    fn from(e: crate::directory::persist::PersistError) -> Self {
        CoreError::Persist(e)
    }
}
