//! Super-peer promotion (future-work study W2).
//!
//! The paper is "investigating the opportunity to use some super-peers".
//! The natural reading in the path-tree architecture: the tree region below
//! a router close to the landmark (a branch of the landmark tree) elects one
//! member peer as its *super-peer*, which can then absorb closest-peer
//! queries for newcomers landing in the same region — offloading the
//! management server.

use crate::ids::PeerId;
use crate::path::PeerPath;
use nearpeer_topology::RouterId;
use std::collections::HashMap;

/// Super-peer tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperPeerConfig {
    /// A peer's region is the router on its path `region_depth` hops below
    /// its landmark (clamped to the access router on short paths).
    pub region_depth: u32,
    /// Minimum region population before a super-peer is appointed.
    pub promote_threshold: usize,
}

impl Default for SuperPeerConfig {
    fn default() -> Self {
        Self {
            region_depth: 2,
            promote_threshold: 4,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct Region {
    super_peer: Option<PeerId>,
    members: Vec<PeerId>, // insertion order; the eldest member is promoted
}

/// Tracks regions, memberships, and the elected super-peer per region.
#[derive(Debug, Clone)]
pub struct SuperPeerDirectory {
    config: SuperPeerConfig,
    regions: HashMap<RouterId, Region>,
    peer_region: HashMap<PeerId, RouterId>,
}

impl SuperPeerDirectory {
    /// Creates an empty directory.
    pub fn new(config: SuperPeerConfig) -> Self {
        Self {
            config,
            regions: HashMap::new(),
            peer_region: HashMap::new(),
        }
    }

    /// The region router of a path under this config.
    pub fn region_of_path(&self, path: &PeerPath) -> RouterId {
        let routers = path.routers();
        let from_landmark = self.config.region_depth.min(path.depth()) as usize;
        routers[routers.len() - 1 - from_landmark]
    }

    /// Registers a peer; may promote it if its region just crossed the
    /// threshold.
    pub fn on_register(&mut self, peer: PeerId, path: &PeerPath) {
        let region_router = self.region_of_path(path);
        let region = self.regions.entry(region_router).or_default();
        region.members.push(peer);
        self.peer_region.insert(peer, region_router);
        if region.super_peer.is_none() && region.members.len() >= self.config.promote_threshold {
            region.super_peer = Some(region.members[0]);
        }
    }

    /// Removes a peer; if it was its region's super-peer, the eldest
    /// remaining member takes over (or the office stays vacant below the
    /// threshold).
    pub fn on_deregister(&mut self, peer: PeerId) {
        let Some(region_router) = self.peer_region.remove(&peer) else {
            return;
        };
        let Some(region) = self.regions.get_mut(&region_router) else {
            return;
        };
        region.members.retain(|&p| p != peer);
        if region.super_peer == Some(peer) {
            region.super_peer = if region.members.len() >= self.config.promote_threshold {
                region.members.first().copied()
            } else {
                None
            };
        }
        if region.members.is_empty() {
            self.regions.remove(&region_router);
        }
    }

    /// Registers a whole batch in arrival order — the directory's batched
    /// join path. Order matters: membership order decides promotion (the
    /// eldest member takes the office), so this must see newcomers exactly
    /// as the sequential protocol would have.
    pub fn on_register_batch<'a, I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (PeerId, &'a PeerPath)>,
    {
        for (peer, path) in items {
            self.on_register(peer, path);
        }
    }

    /// The super-peer a newcomer with this path could delegate to, if its
    /// region has one.
    pub fn super_peer_for(&self, path: &PeerPath) -> Option<PeerId> {
        self.regions
            .get(&self.region_of_path(path))
            .and_then(|r| r.super_peer)
    }

    /// Whether the peer currently holds a super-peer office.
    pub fn is_super_peer(&self, peer: PeerId) -> bool {
        self.peer_region
            .get(&peer)
            .and_then(|r| self.regions.get(r))
            .is_some_and(|region| region.super_peer == Some(peer))
    }

    /// Number of non-empty regions.
    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }

    /// Number of regions with an elected super-peer.
    pub fn n_super_peers(&self) -> usize {
        self.regions
            .values()
            .filter(|r| r.super_peer.is_some())
            .count()
    }

    /// Fraction of members whose region has a super-peer — the share of
    /// future joins the server could delegate (W2's headline metric).
    pub fn delegation_coverage(&self) -> f64 {
        let total: usize = self.regions.values().map(|r| r.members.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let covered: usize = self
            .regions
            .values()
            .filter(|r| r.super_peer.is_some())
            .map(|r| r.members.len())
            .sum();
        covered as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    fn dir() -> SuperPeerDirectory {
        SuperPeerDirectory::new(SuperPeerConfig {
            region_depth: 1,
            promote_threshold: 2,
        })
    }

    #[test]
    fn region_is_counted_from_landmark() {
        let d = dir();
        // Path a -> b -> c -> L with region_depth 1: region router = c.
        assert_eq!(d.region_of_path(&path(&[10, 11, 12, 0])), RouterId(12));
        // Short path: clamps to the access router.
        assert_eq!(d.region_of_path(&path(&[7])), RouterId(7));
    }

    #[test]
    fn promotion_at_threshold() {
        let mut d = dir();
        d.on_register(PeerId(1), &path(&[10, 12, 0]));
        assert_eq!(d.n_super_peers(), 0);
        assert_eq!(d.super_peer_for(&path(&[11, 12, 0])), None);
        d.on_register(PeerId(2), &path(&[11, 12, 0]));
        // Threshold 2 reached: the eldest member is promoted.
        assert_eq!(d.super_peer_for(&path(&[13, 12, 0])), Some(PeerId(1)));
        assert!(d.is_super_peer(PeerId(1)));
        assert!(!d.is_super_peer(PeerId(2)));
    }

    #[test]
    fn different_regions_do_not_mix() {
        let mut d = dir();
        d.on_register(PeerId(1), &path(&[10, 12, 0]));
        d.on_register(PeerId(2), &path(&[20, 22, 0]));
        assert_eq!(d.n_regions(), 2);
        assert_eq!(d.n_super_peers(), 0);
        assert_eq!(d.delegation_coverage(), 0.0);
    }

    #[test]
    fn succession_on_departure() {
        let mut d = dir();
        for (i, access) in [(1u64, 10u32), (2, 11), (3, 13)] {
            d.on_register(PeerId(i), &path(&[access, 12, 0]));
        }
        assert!(d.is_super_peer(PeerId(1)));
        d.on_deregister(PeerId(1));
        assert!(d.is_super_peer(PeerId(2)), "eldest survivor succeeds");
        d.on_deregister(PeerId(2));
        // Only one member left, below threshold: office vacant.
        assert_eq!(d.n_super_peers(), 0);
        d.on_deregister(PeerId(3));
        assert_eq!(d.n_regions(), 0);
        // Removing an unknown peer is a no-op.
        d.on_deregister(PeerId(42));
    }

    #[test]
    fn batch_registration_promotes_in_arrival_order() {
        let mut seq = dir();
        let mut bat = dir();
        let paths = [path(&[10, 12, 0]), path(&[11, 12, 0]), path(&[13, 12, 0])];
        for (i, p) in paths.iter().enumerate() {
            seq.on_register(PeerId(i as u64), p);
        }
        bat.on_register_batch(paths.iter().enumerate().map(|(i, p)| (PeerId(i as u64), p)));
        assert!(bat.is_super_peer(PeerId(0)), "eldest batch member promoted");
        assert_eq!(bat.n_super_peers(), seq.n_super_peers());
        assert_eq!(bat.n_regions(), seq.n_regions());
        assert_eq!(bat.delegation_coverage(), seq.delegation_coverage());
    }

    #[test]
    fn coverage_fraction() {
        let mut d = dir();
        d.on_register(PeerId(1), &path(&[10, 12, 0]));
        d.on_register(PeerId(2), &path(&[11, 12, 0]));
        d.on_register(PeerId(3), &path(&[30, 31, 0]));
        // Region 12 (2 members, covered), region 31 (1 member, uncovered).
        assert!((d.delegation_coverage() - 2.0 / 3.0).abs() < 1e-12);
    }
}
