//! The paper's contribution: landmark path trees and the management server.
//!
//! This crate implements §2 of *A Quicker Way to Discover Nearby Peers*
//! (Simon, Chen, Boudani, Straub — CoNEXT 2007) as a reusable library:
//!
//! * [`PeerPath`] — the router path a newcomer discovers with its
//!   traceroute-like tool (round 1 of the protocol);
//! * [`RouterIndex`] — the paper's data structure: a hash table keyed by
//!   router whose entries are ordered lists of peers, giving `O(d·log n)`
//!   insertion (`d` = path length, bounded by the topology diameter — the
//!   paper's "`O(log n)`, the cost of inserting a new element in an ordered
//!   list") and queries that never touch more than the answer (`O(1)` in
//!   `n` — "accessing a data in a hash table");
//! * [`PathTree`] — the per-landmark trie view used for analytics, branch
//!   points (`dtree`) and super-peer regions;
//! * [`ManagementServer`] — round 2: registry, neighbor selection, churn
//!   removal, mobility handover and super-peer promotion — a facade over
//!   the sharded [`directory`];
//! * [`directory`] — the scalability layer: one [`DirectoryShard`] per
//!   landmark (path tree + index slice + leases) with arena-interned
//!   paths ([`PathStore`]), batched joins, adaptive lease lengths and a
//!   concurrent `&self` read path;
//! * [`federation`] — the multi-region layer above the shards: one
//!   [`ManagementServer`] per landmark partition behind a routing front
//!   door ([`Federation`]) with bridge-matrix query fan-out and
//!   cross-region handover leaving forwarding tombstones;
//! * [`runtime`] — the actorized serving plane: every shard and region
//!   behind its own mailbox worker, query fan-out carried as codec
//!   frames, and the [`WireService`] trait the `nearpeerd` TCP server
//!   drives;
//! * [`subscription`] — standing "watch my `k` nearest" queries: churn
//!   entry points push [`subscription::NeighborDelta`]s computed
//!   incrementally from the touched subtrees, through bounded
//!   priority-ordered per-client delivery queues with rate limiting and
//!   coalescing;
//! * [`policy`] — the selection baselines the evaluation compares against:
//!   random (the paper's baseline), brute-force closest (`Dclosest`),
//!   Vivaldi-distance and landmark-binning;
//! * [`landmarks`] — placement policies for the W1 study (the paper places
//!   landmarks at "medium-size degree" routers);
//! * [`protocol`] / [`codec`] — the join protocol messages and their
//!   length-prefixed wire format (`bytes`-based, property-tested);
//! * [`actors`] — adapters running the protocol inside `nearpeer-sim` for
//!   the end-to-end setup-delay experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actors;
pub mod codec;
pub mod directory;
mod error;
pub mod federation;
mod ids;
pub mod landmarks;
mod path;
mod path_tree;
pub mod policy;
pub mod protocol;
mod router_index;
pub mod runtime;
mod server;
pub mod subscription;
mod superpeer;
pub mod telemetry;

pub use directory::persist::fault::FaultPlan;
pub use directory::persist::journal::{JournalOp, JournalReader};
pub use directory::persist::writer::{
    DurabilityWriter, DurableBytes, DurableMedium, FileMedium, MemoryMedium, WriterConfig,
    WriterStats,
};
pub use directory::persist::{PersistError, RecoveryReport};
pub use directory::{
    AdaptiveLeaseConfig, DirectoryShard, LeaseArena, PathRef, PathStore, PeerSlot, ShardAbsorb,
    ShardSweep, SweepStats,
};
pub use error::CoreError;
pub use federation::{
    FederatedBatchOutcome, FederatedJoin, Federation, FederationConfig, FederationStats,
    FederationSweep, Region, RegionId,
};
pub use ids::{LandmarkId, PeerId};
pub use path::PeerPath;
pub use path_tree::PathTree;
pub use router_index::{Neighbor, RouterIndex};
pub use runtime::{ActorFederation, ActorServer, WireService};
pub use server::{ChurnBatchOutcome, DirectoryView, JoinOutcome, ManagementServer, ServerConfig};
pub use subscription::{
    DeltaClass, NeighborDelta, Subscription, SubscriptionHost, SubscriptionRegistry,
    SubscriptionStats,
};
pub use superpeer::{SuperPeerConfig, SuperPeerDirectory};
pub use telemetry::{
    Counter, Gauge, Histogram, HistogramSnapshot, SlowQueryLog, SlowQueryRecord, TelemetryRegistry,
    TelemetrySnapshot, TimerGuard,
};
