//! The router path a peer reports to the management server.

use crate::error::CoreError;
use nearpeer_topology::RouterId;
use serde::{Deserialize, Serialize};

/// The validated router path from a peer's access router to its landmark —
/// the payload of the paper's round 1.
///
/// Invariants: non-empty and loop-free (each router appears once). The path
/// may have *holes* (anonymous traceroute hops are simply absent), which
/// costs branch resolution but never correctness.
///
/// Position 0 is the peer's attachment (access) router; the last position is
/// the landmark's router. A single-router path is legal: the peer sits on
/// the landmark's own router.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeerPath {
    routers: Vec<RouterId>,
}

impl PeerPath {
    /// Validates and wraps a router sequence.
    pub fn new(routers: Vec<RouterId>) -> Result<Self, CoreError> {
        if routers.is_empty() {
            return Err(CoreError::InvalidPath("empty path".into()));
        }
        let mut seen = std::collections::HashSet::with_capacity(routers.len());
        for r in &routers {
            if !seen.insert(*r) {
                return Err(CoreError::InvalidPath(format!("router {r} repeats (loop)")));
            }
        }
        Ok(Self { routers })
    }

    /// The peer's access router (position 0).
    pub fn attach(&self) -> RouterId {
        self.routers[0]
    }

    /// The landmark's router (last position).
    pub fn landmark_router(&self) -> RouterId {
        *self.routers.last().expect("paths are non-empty")
    }

    /// Number of hops from the access router to the landmark.
    pub fn depth(&self) -> u32 {
        (self.routers.len() - 1) as u32
    }

    /// The routers, access-first.
    pub fn routers(&self) -> &[RouterId] {
        &self.routers
    }

    /// Iterator of `(router, hops_from_peer)` pairs, access-first.
    pub fn with_depths(&self) -> impl Iterator<Item = (RouterId, u32)> + '_ {
        self.routers.iter().enumerate().map(|(i, &r)| (r, i as u32))
    }

    /// Hops from the peer to `router`, if the router is on the path.
    pub fn depth_of(&self, router: RouterId) -> Option<u32> {
        self.routers
            .iter()
            .position(|&r| r == router)
            .map(|i| i as u32)
    }

    /// The deepest (closest-to-both-peers) router shared with `other`, and
    /// the resulting `dtree` hop estimate — the paper's inferred distance
    /// through the first common router.
    ///
    /// Paths are bounded by the topology diameter (a dozen-odd routers),
    /// so the quadratic scan beats building a hash map per comparison —
    /// this is the inner loop of every brute-force baseline and accuracy
    /// study, called `O(n²)` times per experiment.
    pub fn dtree(&self, other: &PeerPath) -> Option<(RouterId, u32)> {
        self.with_depths()
            .filter_map(|(r, d_self)| other.depth_of(r).map(|d_other| (r, d_self + d_other)))
            .min_by_key(|&(_, d)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    #[test]
    fn accessors() {
        let p = path(&[5, 3, 1, 0]);
        assert_eq!(p.attach(), RouterId(5));
        assert_eq!(p.landmark_router(), RouterId(0));
        assert_eq!(p.depth(), 3);
        assert_eq!(p.depth_of(RouterId(1)), Some(2));
        assert_eq!(p.depth_of(RouterId(9)), None);
    }

    #[test]
    fn rejects_empty_and_loops() {
        assert!(matches!(
            PeerPath::new(vec![]),
            Err(CoreError::InvalidPath(_))
        ));
        assert!(matches!(
            PeerPath::new(vec![RouterId(1), RouterId(2), RouterId(1)]),
            Err(CoreError::InvalidPath(_))
        ));
    }

    #[test]
    fn single_router_path() {
        let p = path(&[7]);
        assert_eq!(p.attach(), RouterId(7));
        assert_eq!(p.landmark_router(), RouterId(7));
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn dtree_through_first_common_router() {
        // Figure-1 shape: p1 = [p1, r2, r1, rc, ra, lmk] as ids
        // and p2 = [p2, r4, r3, rc, ra, lmk]; common suffix rc, ra, lmk.
        let p1 = path(&[100, 2, 1, 50, 51, 0]);
        let p2 = path(&[101, 4, 3, 50, 51, 0]);
        let (meet, d) = p1.dtree(&p2).unwrap();
        assert_eq!(meet, RouterId(50)); // rc: deepest common router
        assert_eq!(d, 6); // 3 + 3 hops
    }

    #[test]
    fn dtree_same_access_router_is_zero() {
        let p1 = path(&[9, 4, 0]);
        let p2 = path(&[9, 4, 0]);
        assert_eq!(p1.dtree(&p2), Some((RouterId(9), 0)));
    }

    #[test]
    fn dtree_disjoint_paths_is_none() {
        let p1 = path(&[1, 2, 3]);
        let p2 = path(&[4, 5, 6]);
        assert_eq!(p1.dtree(&p2), None);
    }

    #[test]
    fn dtree_on_shared_branch() {
        // q sits on p's own path: p = [a, b, c, L]; q = [b, c, L].
        let p = path(&[10, 11, 12, 0]);
        let q = path(&[11, 12, 0]);
        let (meet, d) = p.dtree(&q).unwrap();
        assert_eq!(meet, RouterId(11));
        assert_eq!(d, 1);
    }
}
